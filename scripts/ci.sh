#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace has no external
# dependencies by design (DESIGN.md §6), so a hermetic builder must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "CI green."
