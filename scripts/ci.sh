#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace has no external
# dependencies by design (DESIGN.md §6), so a hermetic builder must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

# Fault-injection smoke matrix: each fault class alone, small rates, small
# scale. A run fails (panics) on any invariant violation, so this gates
# the recovery layer end to end.
echo "==> fault-injection smoke (drop / dup / reorder)"
for spec in drop=0.02 dup=0.02 reorder=3; do
  echo "    --faults $spec"
  cargo run -q --release --offline -p bench-suite --bin repro -- \
    --small --faults "$spec" --faults-seed 7 > /dev/null
done

echo "CI green."
