#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace has no external
# dependencies by design (DESIGN.md §6), so a hermetic builder must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

# Fault-injection smoke matrix: each fault class alone, small rates, small
# scale. A run fails (panics) on any invariant violation, so this gates
# the recovery layer end to end.
echo "==> fault-injection smoke (drop / dup / reorder)"
for spec in drop=0.02 dup=0.02 reorder=3; do
  echo "    --faults $spec"
  cargo run -q --release --offline -p bench-suite --bin repro -- \
    --small --faults "$spec" --faults-seed 7 > /dev/null
done

# Timed release smoke: regenerate the small-scale tables with the bench
# harness on, emit the timing snapshot, and diff the Table 5 CSV against
# the golden copy captured before the packed-core optimisation — speed
# work must never move a result.
echo "==> timed table smoke (--bench-json + golden Table 5 diff)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" --bench-json "$SMOKE_DIR/BENCH_smoke.json" \
  table5 > /dev/null
diff -u crates/bench-suite/tests/golden/table5_small.csv "$SMOKE_DIR/table5.csv"
grep -q '"bench.total_ns"' "$SMOKE_DIR/BENCH_smoke.json"
grep -q '"bench.phase.table5_ns"' "$SMOKE_DIR/BENCH_smoke.json"
echo "    table5 CSV matches golden; bench JSON emitted"

# Model-checker smoke: exhaustively explore the 2-node configurations and
# require the simcheck.* obs artefact. The repro target exits non-zero if
# any exploration finds an invariant violation.
echo "==> simcheck smoke (bounded schedule exploration, 2 nodes)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" simcheck > /dev/null
grep -q '"simcheck.states_visited"' "$SMOKE_DIR/simcheck_obs.json"
grep -q '"simcheck.exhausted":1' "$SMOKE_DIR/simcheck_obs.json"
echo "    2-node state spaces exhausted; simcheck obs JSON emitted"

# Tracing smoke: emit the latency-attribution tables and the Chrome
# trace JSON on the small suite, check the export parses (python3 when
# available, structural checks otherwise) and contains at least one
# complete span tree (a metadata record plus closed "X" slices), and
# diff the attribution CSV against its golden — spans are derived purely
# from simulated timestamps, so the table must be deterministic.
echo "==> tracing smoke (tracespans table + Chrome trace export)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" --trace-out "$SMOKE_DIR/trace.json" \
  tracespans > /dev/null
diff -u crates/bench-suite/tests/golden/tracespans_small.csv "$SMOKE_DIR/tracespans.csv"
if command -v python3 > /dev/null; then
  python3 - "$SMOKE_DIR/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
complete = [e for e in events if e.get("ph") == "X"]
meta = [e for e in events if e.get("ph") == "M"]
assert meta, "no process-name metadata records"
assert complete, "no complete span events"
# At least one span tree: a Txn root with a child sharing its track.
roots = {(e["pid"], e["tid"]) for e in complete if e.get("cat") == "txn"}
children = {(e["pid"], e["tid"]) for e in complete if e.get("cat") != "txn"}
assert roots & children, "no root span has an attributed child"
print(f"    trace.json parses: {len(complete)} spans, "
      f"{len(roots)} transaction tracks")
PY
else
  grep -q '"ph":"M"' "$SMOKE_DIR/trace.json"
  grep -q '"ph":"X"' "$SMOKE_DIR/trace.json"
  grep -q '"cat":"txn"' "$SMOKE_DIR/trace.json"
  grep -q '"cat":"network"' "$SMOKE_DIR/trace.json"
  echo "    trace.json structural checks pass (python3 unavailable)"
fi
echo "    tracespans CSV matches golden; trace export valid"

# Tournament smoke: race every predictor family over the small suite and
# diff the accuracy-vs-bits frontier against its golden — both the
# accuracies and the storage-bit accounting must stay deterministic and
# byte-identical across runs and build profiles.
echo "==> tournament smoke (predictor competition + golden frontier diff)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" tournament > /dev/null
diff -u crates/bench-suite/tests/golden/tournament_frontier_small.csv \
  "$SMOKE_DIR/tournament_frontier.csv"
grep -q '"tournament.cells"' "$SMOKE_DIR/tournament_obs.json"
grep -q '"tournament.pareto_count"' "$SMOKE_DIR/tournament_obs.json"
echo "    frontier CSV matches golden; tournament obs JSON emitted"

# Scale smoke: run the sharded-engine sweep at small scale and diff the
# deterministic CSV against its golden. The CSV carries only
# simulation-defined columns, and the sharded engine is byte-identical
# for every shard count, so the diff must hold on any machine. The
# throughput side lands in BENCH_scale.json (recorded, never diffed).
echo "==> scale smoke (sharded sweep + golden CSV diff)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" scale > /dev/null
diff -u crates/bench-suite/tests/golden/scale_small.csv "$SMOKE_DIR/scale.csv"
grep -q '"sim.throughput.msgs_per_sec_per_core"' "$SMOKE_DIR/BENCH_scale.json"
echo "    scale CSV matches golden; throughput JSON emitted"

# Speculation smoke: regenerate the measured-speedup report — every cell
# runs the speculative machine clean *and* under the default fault plan
# (drop=0.01,dup=0.005,reorder=3), so this exercises prediction-actioned
# grants, self-invalidations, early acks, forwarding pushes, and the
# rollback/recovery paths end to end — and diff the CSV against its
# golden byte for byte.
echo "==> speculation smoke (speedup report + golden CSV diff)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" speedup > /dev/null
diff -u crates/bench-suite/tests/golden/speedup_small.csv "$SMOKE_DIR/speedup.csv"
grep -q '"stache.rollback.pushes"' "$SMOKE_DIR/speedup_obs.json"
grep -q '"stache.rollback.early_acks"' "$SMOKE_DIR/speedup_obs.json"
echo "    speedup CSV matches golden; rollback obs JSON emitted"

# Packed-trace smoke: run the streaming pack/sample pipeline at small
# scale and diff the deterministic CSV against its golden. The CSV pins
# the codec byte totals, compression ratios, SimPoint-sampled vs full
# accuracy, and the streamed cell's record totals; the wall-clock side
# lands in BENCH_trace.json (recorded, never diffed). The committed
# repo-root BENCH_trace.json is the paper-scale counterpart.
echo "==> tracepack smoke (packed pipeline + golden CSV diff)"
cargo run -q --release --offline -p bench-suite --bin repro -- \
  --small --csv "$SMOKE_DIR" tracepack > /dev/null
diff -u crates/bench-suite/tests/golden/tracepack_small.csv \
  "$SMOKE_DIR/tracepack.csv"
grep -q '"bench.tracepack.stream.encode_recs_per_sec"' \
  "$SMOKE_DIR/BENCH_trace.json"
grep -q '"bench.tracepack.sample.worst_error_pp"' "$SMOKE_DIR/BENCH_trace.json"
test -s BENCH_trace.json
echo "    tracepack CSV matches golden; trace bench JSON emitted"

# Proptest seed promotion: every saved counterexample hash in a
# *.proptest-regressions file must have a matching `promoted: <hash>`
# marker in a checked-in test, so the seeds keep running even in builds
# without the (feature-gated) proptest dependency.
echo "==> proptest-regressions promotion check"
while read -r file; do
  while read -r hash; do
    if ! grep -rq "promoted: $hash" crates/*/tests/*.rs; then
      echo "    seed $hash in $file has no promoted unit test" >&2
      exit 1
    fi
  done < <(sed -n 's/^cc \([0-9a-f]\{64\}\).*/\1/p' "$file")
done < <(find crates -name '*.proptest-regressions')
echo "    every saved seed has a promoted unit test"

echo "CI green."
