//! Integration: the paper's §8 next step, live — Cosmos predictors wired
//! into the running protocol, issuing speculative exclusive grants and
//! self-invalidations, compared against the unmodified machine and the
//! directed-predictor pairing.
//!
//! ```text
//! cargo run --release --example integration
//! ```

use accel::directed_policy::DirectedPolicy;
use accel::{compare, CosmosPolicy};
use workloads::{small_suite, Workload};

fn fresh(name: &str) -> Box<dyn Workload> {
    small_suite()
        .into_iter()
        .find(|w| w.name() == name)
        .expect("known benchmark")
}

fn main() {
    println!(
        "{:<14} {:>22} {:>22}",
        "benchmark", "cosmos (msg- / time)", "directed (msg- / time)"
    );
    for name in ["appbt", "barnes", "dsmc", "moldyn", "unstructured"] {
        let cosmos = compare(fresh(name).as_mut(), fresh(name).as_mut(), || {
            Box::new(CosmosPolicy::new(2))
        })
        .expect("coherent run");
        let directed = compare(fresh(name).as_mut(), fresh(name).as_mut(), || {
            Box::new(DirectedPolicy::new())
        })
        .expect("coherent run");
        println!(
            "{:<14} {:>12.1}% {:>7.2}x {:>13.1}% {:>7.2}x",
            name,
            100.0 * cosmos.message_saving(),
            cosmos.speedup(),
            100.0 * directed.message_saving(),
            directed.speedup(),
        );
    }
    println!(
        "\nCosmos speculates only on learned per-block patterns, so it never\n\
         fires blind; the directed pairing (Origin-style RMW grants + dynamic\n\
         self-invalidation) bets unconditionally — bigger wins on its own\n\
         patterns, and real slowdowns where they do not hold (barnes). Run\n\
         `repro integration` for the full-scale study."
    );
}
