//! Adaptation: how long each benchmark's Cosmos fleet takes to reach
//! steady-state accuracy (§6.2), drawn as per-iteration accuracy bars.
//!
//! ```text
//! cargo run --release --example adaptation
//! ```

use cosmos::eval::evaluate_cosmos;
use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite};

/// One character per bucket: ' ' for 0% up to '#' for 100%.
fn bar(rate: f64) -> char {
    const LEVELS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '%', '#'];
    LEVELS[((rate * 8.0).round() as usize).min(8)]
}

fn main() {
    println!("per-iteration depth-1 accuracy (one char per iteration, '#'=100%)\n");
    for mut w in small_suite() {
        let trace = run_to_trace(&mut *w, ProtocolConfig::paper(), SystemConfig::paper())
            .expect("benchmark runs clean");
        let report = evaluate_cosmos(&trace, 1, 0);
        let curve: String = report
            .per_iteration
            .values()
            .map(|c| bar(c.rate()))
            .collect();
        let adapt = report
            .time_to_adapt(3, 0.95)
            .map(|i| format!("iteration {i}"))
            .unwrap_or_else(|| "never".into());
        println!("{:<14} |{curve}|", w.name());
        println!("{:<14}  reaches 95% of steady state at {adapt}\n", "");
    }
    println!(
        "(the paper reports <20 iterations for unstructured/barnes, ~30 for\n\
         appbt/moldyn, and ~300 for dsmc — dsmc's contended buffers settle\n\
         one by one; run `repro adaptation` for the full-scale measurement)"
    );
}
