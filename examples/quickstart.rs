//! Quickstart: the paper's Figure 2/3 walkthrough, end to end.
//!
//! Builds a 16-node Stache machine, runs the `shared_counter`
//! producer-consumer microbenchmark on it, then replays the directory's
//! incoming-message stream through a Cosmos predictor and prints each
//! prediction next to what actually arrived.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use simx::SystemConfig;
use stache::{NodeId, ProtocolConfig, Role};
use workloads::micro::ProducerConsumer;
use workloads::run_to_trace;

fn main() {
    // One producer (P1), one consumer (P2), blocks homed on P0 — exactly
    // the configuration of the paper's Figure 2.
    let mut workload = ProducerConsumer {
        blocks: 1,
        iterations: 6,
        ..ProducerConsumer::default()
    };
    let trace = run_to_trace(
        &mut workload,
        ProtocolConfig::paper(),
        SystemConfig::paper(),
    )
    .expect("microbenchmark runs clean");

    println!("== trace: {} coherence messages ==", trace.len());

    // The directory predictor at the home node (P0), depth 1, no filter.
    let mut predictor = CosmosPredictor::new(1, 0);
    let mut hits = 0u32;
    let mut scored = 0u32;

    println!("\n== directory (P0) predictor, MHR depth 1 ==");
    println!(
        "{:<4} {:<38} {:<38}",
        "it", "predicted next", "actually arrived"
    );
    for r in trace.for_receiver(NodeId::new(0), Role::Directory) {
        let observed = PredTuple::new(r.sender, r.mtype);
        let predicted = predictor.predict(r.block);
        let mark = match predicted {
            Some(p) if p == observed => {
                hits += 1;
                "hit "
            }
            Some(_) => "MISS",
            None => "cold",
        };
        scored += 1;
        println!(
            "{:<4} {:<38} {:<38} {mark}",
            r.iteration,
            predicted
                .map(|p| p.to_string())
                .unwrap_or_else(|| "(no prediction)".into()),
            observed.to_string(),
        );
        predictor.observe(r.block, observed);
    }
    println!(
        "\ndirectory accuracy: {hits}/{scored} = {:.0}%  (cold-start misses included)",
        100.0 * f64::from(hits) / f64::from(scored)
    );
    println!(
        "tables learned: {} MHR entries, {} PHT entries",
        predictor.mhr_entries(),
        predictor.pht_entries()
    );
}
