//! Introspection: a tour of the predictor's analysis APIs — chain
//! (multi-step) prediction, confidence, per-agent accuracy breakdowns,
//! and memory histograms — over a real workload trace.
//!
//! ```text
//! cargo run --release --example introspection
//! ```

use cosmos_repro::cosmos::eval::evaluate_cosmos;
use cosmos_repro::cosmos::{
    evaluate_lookahead, ConfidenceCosmos, CosmosPredictor, MessagePredictor, PredTuple,
};
use cosmos_repro::simx::SystemConfig;
use cosmos_repro::stache::{ProtocolConfig, Role};
use cosmos_repro::workloads::{run_to_trace, Unstructured};

fn main() {
    let mut w = Unstructured::small();
    let trace = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper())
        .expect("benchmark runs clean");
    println!("unstructured (small): {} messages\n", trace.len());

    // 1. The standard report, with the per-agent breakdown.
    let report = evaluate_cosmos(&trace, 2, 0);
    println!("== accuracy report ==");
    print!("{}", report.render_summary());
    let mut agents: Vec<_> = report.per_agent.iter().collect();
    agents.sort_by(|a, b| a.1.rate().partial_cmp(&b.1.rate()).expect("finite rates"));
    if let (Some(worst), Some(best)) = (agents.first(), agents.last()) {
        println!(
            "worst agent: {} {} at {:.1}%; best: {} {} at {:.1}%\n",
            worst.0 .1,
            worst.0 .0,
            worst.1.percent(),
            best.0 .1,
            best.0 .0,
            best.1.percent(),
        );
    }

    // 2. Chain prediction: unroll a block's learned future.
    println!("== chain prediction ==");
    let mut p = CosmosPredictor::new(2, 0);
    let sample_block = trace.blocks()[0];
    for r in trace.for_block(sample_block).take(60) {
        if r.role == Role::Directory {
            p.observe(r.block, PredTuple::new(r.sender, r.mtype));
        }
    }
    let chain = p.predict_chain(sample_block, 5);
    println!(
        "block {sample_block}: the directory's next {} predicted messages:",
        chain.len()
    );
    for (i, t) in chain.iter().enumerate() {
        println!("  +{} {t}", i + 1);
    }

    // 3. Lookahead accuracy: how trustworthy those chains are in bulk.
    let look = evaluate_lookahead(&trace, 2, 4);
    println!("\n== lookahead accuracy (among issued chains) ==");
    for d in 1..=4 {
        println!("  {d} step(s) ahead: {:>5.1}%", look.percent_at(d));
    }

    // 4. Confidence: the precision/coverage dial.
    println!("\n== confidence gating ==");
    for threshold in [0u8, 1, 2, 3] {
        let r = cosmos_repro::cosmos::eval::evaluate(&trace, &Default::default(), |_, _| {
            Box::new(ConfidenceCosmos::new(2, threshold))
        });
        let offered = r.coverage.hits.max(1);
        println!(
            "  threshold {threshold}: answers {:>5.1}% of messages, right {:>5.1}% of the time",
            r.coverage.percent(),
            100.0 * r.overall.hits as f64 / offered as f64,
        );
    }
}
