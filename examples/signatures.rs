//! Message signatures: runs the five benchmarks (reduced scale) and prints
//! each one's dominant incoming-message signatures with the paper's `X/Y`
//! arc labels — a fast rendition of Figures 6 and 7.
//!
//! ```text
//! cargo run --release --example signatures
//! ```

use cosmos::eval::evaluate_cosmos;
use simx::SystemConfig;
use stache::{ProtocolConfig, Role};
use trace::TraceStats;
use workloads::{run_to_trace, small_suite};

fn main() {
    for mut w in small_suite() {
        let trace = run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
            .expect("benchmark runs clean");
        let stats = TraceStats::compute(&trace);
        let report = evaluate_cosmos(&trace, 1, 0);

        println!("\n======== {} ========", w.name());
        println!(
            "{} messages ({} at caches, {} at directories), {} blocks",
            stats.total, stats.at_cache, stats.at_directory, stats.distinct_blocks
        );
        println!(
            "depth-1 Cosmos: cache {:.0}%, directory {:.0}%, overall {:.0}%",
            report.cache.percent(),
            report.directory.percent(),
            report.overall.percent()
        );
        for role in [Role::Cache, Role::Directory] {
            println!("  dominant signatures at the {role} (accuracy%/share%):");
            for (arc, acc, share) in report.dominant_arcs(role, 4) {
                println!(
                    "    {:<22} -> {:<22} {:>3.0}/{:<3.0}",
                    arc.prev.paper_name(),
                    arc.next.paper_name(),
                    acc,
                    share
                );
            }
        }
    }
}
