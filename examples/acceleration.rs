//! Acceleration: the §4 pipeline — predict the next incoming message, map
//! it to a speculative protocol action (Table 2 / Figure 4), and estimate
//! the runtime effect with the §4.4 model (Figure 5).
//!
//! ```text
//! cargo run --release --example acceleration
//! ```

use cosmos::actions::simulate_speculation;
use cosmos::CosmosPredictor;
use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite};

fn main() {
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "msgs", "accel'd", "wasted", "speedup f=.3", "speedup f=.5"
    );
    for mut w in small_suite() {
        let trace = run_to_trace(&mut *w, ProtocolConfig::paper(), SystemConfig::paper())
            .expect("benchmark runs clean");
        let report = simulate_speculation(&trace, |_, _| Box::new(CosmosPredictor::new(2, 0)));
        println!(
            "{:<14} {:>8} {:>9.1}% {:>9.1}% {:>11.2}x {:>11.2}x",
            w.name(),
            report.total_messages,
            100.0 * report.acceleration_rate(),
            100.0 * report.wasted_speculations as f64 / report.total_messages.max(1) as f64,
            report.estimated_speedup(0.3, 1.0),
            report.estimated_speedup(0.5, 0.5),
        );
    }

    println!("\nper-action breakdown for unstructured (depth-2 Cosmos):");
    let mut w = workloads::Unstructured::small();
    let trace = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper())
        .expect("benchmark runs clean");
    let report = simulate_speculation(&trace, |_, _| Box::new(CosmosPredictor::new(2, 0)));
    let mut actions: Vec<_> = report.per_action.iter().collect();
    actions.sort_by_key(|(name, _)| *name);
    for (name, counts) in actions {
        println!(
            "  {:<20} fired {:>6} times, {:>5.1}% of them usefully",
            name,
            counts.total,
            counts.percent()
        );
    }
    println!(
        "\n(the paper's model: speedup = 1 / (p*f + (1-p)*(1+r)); at p=0.8,\n\
         f=0.3, r=1 it reports 'as high as 56%' — our measured p feeds the\n\
         same formula above)"
    );
}
