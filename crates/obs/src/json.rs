//! Minimal hand-rolled JSON emission.
//!
//! The snapshot layer needs exactly three things — escaped strings,
//! integers, and finite floats — so this module provides them and nothing
//! else. No parsing: reports are write-only artefacts consumed by
//! external tooling.

use std::fmt::Write as _;

/// Appends a JSON string literal (with quotes) for `s`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`. Non-finite values become `null` (JSON
/// has no NaN/Inf); finite values use Rust's shortest-roundtrip `{}`
/// formatting, which is deterministic.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b"), "\"a\\\"b\"");
        assert_eq!(lit("a\\b"), "\"a\\\\b\"");
        assert_eq!(lit("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_f64(&mut out, 2.5);
        assert_eq!(out, "null,null,2.5");
    }
}
