//! Cross-thread counters.
//!
//! The rest of the crate is deliberately single-threaded (`Rc`-backed
//! handles); this module is the one concession to parallel drivers like
//! the bench-suite trace generator, which tally work across worker
//! threads. Keep per-thread [`crate::Registry`] instances for anything
//! hot and merge snapshots at the end; use [`SharedCounter`] only for
//! coarse cross-thread totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An atomically shared counter (`Relaxed` ordering — totals only, no
/// synchronisation guarantees beyond the count itself).
#[derive(Debug, Clone, Default)]
pub struct SharedCounter(Arc<AtomicU64>);

impl SharedCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        SharedCounter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state_across_threads() {
        let c = SharedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
