//! Causal transaction tracing — span trees over simulated time.
//!
//! A coherence transaction is not one latency number but a tree of causally
//! ordered phases: the request hop, the wait for a busy directory, the
//! invalidation fan-out, retries after dropped packets, the grant hop. A
//! [`SpanLog`] records that tree: each transaction opens a *root* span
//! identified by a [`TraceId`] (carried on every message the transaction
//! sends), and every phase attaches a child span stamped with exact
//! simulated start/end nanoseconds.
//!
//! Three properties make the layer safe to thread through the simulator
//! hot path:
//!
//! * **Off by default, zero residue.** A disabled log turns every call
//!   into an early-return no-op and allocates nothing, so runs with
//!   tracing off are byte-identical to runs built before the layer
//!   existed.
//! * **Purely observational.** Spans are derived from timestamps the
//!   engines already computed; recording one never changes timing,
//!   message order, or protocol state.
//! * **Deterministic.** Span ids are allocation order, times are simulated
//!   nanoseconds, and all strings are static, so two runs of the same
//!   workload produce identical logs and identical exports.
//!
//! [`chrome_trace_json`] renders one or more logs as Chrome trace-event
//! JSON (the `about:tracing` / Perfetto format) for interactive
//! inspection.

use crate::json::push_str_literal;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Identifies one transaction's span tree. Carried on every message the
/// transaction sends so far-end agents can attach child spans.
///
/// `TraceId::NONE` (the default) means "not traced"; protocol code treats
/// it as an opaque passenger and never branches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(u32);

impl TraceId {
    /// The null id: no trace attached.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id names a real trace.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The raw id (0 = none). Stable within one log.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Identifies one span within a [`SpanLog`]. `0` is reserved for "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// The null span id.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id names a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    fn index(self) -> usize {
        self.0 as usize - 1
    }
}

/// The latency-attribution category a span belongs to. Every simulated
/// nanosecond of a transaction lands in exactly one category, so summing
/// child spans by kind partitions the end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole transaction (root spans only).
    Txn,
    /// Waiting for a busy directory or in its pending queue.
    Queue,
    /// A message in flight on the interconnect.
    Network,
    /// Directory or cache handler occupancy (protocol work).
    Directory,
    /// Lost time: timeouts, NAK bounces, retransmissions.
    Retry,
    /// A speculative action taken on a prediction.
    Speculation,
}

/// All attribution categories, in display order.
pub const ALL_SPAN_KINDS: [SpanKind; 6] = [
    SpanKind::Txn,
    SpanKind::Queue,
    SpanKind::Network,
    SpanKind::Directory,
    SpanKind::Retry,
    SpanKind::Speculation,
];

impl SpanKind {
    /// Short lowercase label (Chrome trace `cat`, CSV column stem).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::Queue => "queue",
            SpanKind::Network => "network",
            SpanKind::Directory => "directory",
            SpanKind::Retry => "retry",
            SpanKind::Speculation => "speculation",
        }
    }
}

/// One recorded span: a named interval of simulated time within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The trace (transaction) this span belongs to.
    pub trace: TraceId,
    /// The enclosing span, or [`SpanId::NONE`] for a root.
    pub parent: SpanId,
    /// Attribution category.
    pub kind: SpanKind,
    /// Static phase name, e.g. `"net.request"`, `"dir.service"`.
    pub name: &'static str,
    /// Simulated start time (ns).
    pub start_ns: u64,
    /// Simulated end time (ns); meaningless while `open`.
    pub end_ns: u64,
    /// Whether the span is still open (no end recorded yet).
    pub open: bool,
    /// The node the span is attributed to.
    pub node: u16,
    /// The block the transaction concerns (root spans; 0 elsewhere).
    pub block: u64,
    /// Optional static annotation (`"speculative_grant"`, `"orphaned"`).
    pub note: Option<&'static str>,
}

impl Span {
    /// Span duration in ns (0 while open or if clocks ran backwards).
    pub fn duration_ns(&self) -> u64 {
        if self.open {
            0
        } else {
            self.end_ns.saturating_sub(self.start_ns)
        }
    }
}

/// An append-only log of spans for one simulation run.
///
/// Disabled by default: every recording method early-returns until
/// [`SpanLog::enable`] is called, and a disabled log never allocates.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    enabled: bool,
    spans: Vec<Span>,
    /// trace raw id -> root span, for attaching children by trace alone.
    roots: HashMap<u32, SpanId>,
    next_trace: u32,
    /// `(trace, trace-record index)` links, in record order — maps spans
    /// onto the `MsgRecord` stream without widening the codec'd record.
    links: Vec<(TraceId, u64)>,
    orphans: u64,
}

impl SpanLog {
    /// Creates a disabled log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a root span for a new transaction and returns its trace id
    /// ([`TraceId::NONE`] when disabled).
    pub fn begin_trace(
        &mut self,
        name: &'static str,
        start_ns: u64,
        node: u16,
        block: u64,
    ) -> TraceId {
        if !self.enabled {
            return TraceId::NONE;
        }
        self.next_trace += 1;
        let trace = TraceId(self.next_trace);
        let id = self.push(Span {
            id: SpanId::NONE,
            trace,
            parent: SpanId::NONE,
            kind: SpanKind::Txn,
            name,
            start_ns,
            end_ns: start_ns,
            open: true,
            node,
            block,
            note: None,
        });
        self.roots.insert(trace.0, id);
        trace
    }

    /// Closes a trace's root span.
    pub fn end_trace(&mut self, trace: TraceId, end_ns: u64) {
        if !self.enabled || !trace.is_some() {
            return;
        }
        if let Some(&root) = self.roots.get(&trace.0) {
            let s = &mut self.spans[root.index()];
            s.end_ns = end_ns;
            s.open = false;
        }
    }

    /// Records a complete child span, attached to the trace's root.
    /// No-op when disabled or when `trace` is [`TraceId::NONE`], so call
    /// sites need no guards.
    pub fn child(
        &mut self,
        trace: TraceId,
        name: &'static str,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        node: u16,
    ) {
        if !self.enabled || !trace.is_some() {
            return;
        }
        let parent = self.roots.get(&trace.0).copied().unwrap_or(SpanId::NONE);
        self.push(Span {
            id: SpanId::NONE,
            trace,
            parent,
            kind,
            name,
            start_ns,
            end_ns,
            open: false,
            node,
            block: 0,
            note: None,
        });
    }

    /// Annotates a trace's root span (last writer wins).
    pub fn annotate(&mut self, trace: TraceId, note: &'static str) {
        if !self.enabled || !trace.is_some() {
            return;
        }
        if let Some(&root) = self.roots.get(&trace.0) {
            self.spans[root.index()].note = Some(note);
        }
    }

    /// Associates the trace with index `record_idx` of the run's
    /// `MsgRecord` stream (how prediction verdicts find their spans).
    pub fn link_record(&mut self, trace: TraceId, record_idx: u64) {
        if !self.enabled || !trace.is_some() {
            return;
        }
        self.links.push((trace, record_idx));
    }

    /// The recorded `(trace, record index)` links, in record order.
    pub fn links(&self) -> &[(TraceId, u64)] {
        &self.links
    }

    /// Number of root spans still open.
    pub fn open_traces(&self) -> usize {
        self.spans.iter().filter(|s| s.open).count()
    }

    /// Closes every still-open span at `at_ns`, marking it `"orphaned"`.
    /// A quiescent machine should have none; a non-zero return is a
    /// protocol bug worth a flight-recorder dump. Returns how many were
    /// flagged this call.
    pub fn flag_orphans(&mut self, at_ns: u64) -> u64 {
        let mut flagged = 0;
        for s in &mut self.spans {
            if s.open {
                s.open = false;
                s.end_ns = at_ns.max(s.start_ns);
                s.note = Some("orphaned");
                flagged += 1;
            }
        }
        self.orphans += flagged;
        flagged
    }

    /// Total spans ever flagged as orphaned.
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    /// All spans, in allocation (causal) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root span of `trace`, if any.
    pub fn root_of(&self, trace: TraceId) -> Option<&Span> {
        self.roots.get(&trace.0).map(|id| &self.spans[id.index()])
    }

    /// Exports summary gauges into a snapshot under `prefix`.
    pub fn export_obs(&self, prefix: &str, snap: &mut crate::Snapshot) {
        snap.counter(&format!("{prefix}.spans"), self.spans.len() as u64);
        snap.counter(&format!("{prefix}.traces"), u64::from(self.next_trace));
        snap.counter(&format!("{prefix}.orphans"), self.orphans);
    }

    fn push(&mut self, mut span: Span) -> SpanId {
        let id = SpanId(self.spans.len() as u32 + 1);
        span.id = id;
        self.spans.push(span);
        id
    }
}

/// Writes `ns` nanoseconds as a microsecond decimal (`123.456`) — the
/// trace-event time unit — without going through floats.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Renders one or more span logs as Chrome trace-event JSON, loadable in
/// Perfetto or `chrome://tracing`.
///
/// Each `(name, log)` pair becomes one "process" (`pid` = position in the
/// slice, named by a metadata event); within a process, each trace's span
/// tree lands on its own thread track (`tid` = trace id) so concurrent
/// transactions stack vertically and children nest inside their root by
/// time. Output is deterministic: spans appear in allocation order.
pub fn chrome_trace_json(parts: &[(&str, &SpanLog)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    };
    for (pid, (name, _)) in parts.iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        );
        push_str_literal(&mut out, name);
        out.push_str("}}");
    }
    for (pid, (_, log)) in parts.iter().enumerate() {
        for s in log.spans() {
            sep(&mut out, &mut first);
            out.push_str("{\"name\":");
            push_str_literal(&mut out, s.name);
            let _ = write!(out, ",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":", s.kind.label());
            push_us(&mut out, s.start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, s.duration_ns());
            let _ = write!(
                out,
                ",\"pid\":{pid},\"tid\":{},\"args\":{{\"trace\":{},\"node\":{}",
                s.trace.raw(),
                s.trace.raw(),
                s.node
            );
            if s.block != 0 {
                let _ = write!(out, ",\"block\":\"{:#x}\"", s.block);
            }
            if let Some(note) = s.note {
                out.push_str(",\"note\":");
                push_str_literal(&mut out, note);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_inert_and_allocation_free() {
        let mut log = SpanLog::new();
        let t = log.begin_trace("txn", 0, 1, 0x40);
        assert_eq!(t, TraceId::NONE);
        log.child(t, "net", SpanKind::Network, 0, 10, 1);
        log.annotate(t, "x");
        log.link_record(t, 0);
        log.end_trace(t, 10);
        assert!(log.spans().is_empty());
        assert!(log.links().is_empty());
        assert_eq!(log.flag_orphans(99), 0);
        assert_eq!(log.spans.capacity(), 0, "disabled log never allocates");
    }

    #[test]
    fn children_attach_to_their_trace_root() {
        let mut log = SpanLog::new();
        log.enable();
        let a = log.begin_trace("get_rw_request", 0, 1, 0x40);
        let b = log.begin_trace("get_ro_request", 5, 2, 0x80);
        log.child(a, "net.request", SpanKind::Network, 0, 100, 1);
        log.child(b, "net.request", SpanKind::Network, 5, 105, 2);
        log.end_trace(a, 400);
        log.end_trace(b, 300);
        assert_ne!(a, b);
        let spans = log.spans();
        assert_eq!(spans.len(), 4);
        let root_a = log.root_of(a).unwrap();
        assert_eq!(root_a.duration_ns(), 400);
        assert!(!root_a.open);
        let child_a = spans.iter().find(|s| s.trace == a && s.parent.is_some());
        assert_eq!(child_a.unwrap().parent, root_a.id);
        assert_eq!(log.open_traces(), 0);
    }

    #[test]
    fn orphans_are_flagged_not_lost() {
        let mut log = SpanLog::new();
        log.enable();
        let t = log.begin_trace("get_ro_request", 10, 0, 0x1);
        let _done = log.begin_trace("get_rw_request", 10, 1, 0x2);
        log.end_trace(_done, 50);
        assert_eq!(log.open_traces(), 1);
        assert_eq!(log.flag_orphans(90), 1);
        assert_eq!(log.orphans(), 1);
        assert_eq!(log.open_traces(), 0);
        let root = log.root_of(t).unwrap();
        assert_eq!(root.note, Some("orphaned"));
        assert_eq!(root.end_ns, 90);
        // Idempotent: nothing left to flag.
        assert_eq!(log.flag_orphans(95), 0);
        assert_eq!(log.orphans(), 1);
    }

    #[test]
    fn record_links_and_annotations_round_trip() {
        let mut log = SpanLog::new();
        log.enable();
        let t = log.begin_trace("upgrade_request", 0, 3, 0x9);
        log.link_record(t, 7);
        log.link_record(t, 8);
        log.annotate(t, "speculative_grant");
        log.end_trace(t, 20);
        assert_eq!(log.links(), &[(t, 7), (t, 8)]);
        assert_eq!(log.root_of(t).unwrap().note, Some("speculative_grant"));
    }

    #[test]
    fn chrome_json_has_metadata_and_complete_events() {
        let mut log = SpanLog::new();
        log.enable();
        let t = log.begin_trace("get_rw_request", 1500, 1, 0x40);
        log.child(t, "dir.service", SpanKind::Directory, 1600, 1850, 0);
        log.end_trace(t, 2000);
        let json = chrome_trace_json(&[("serial", &log)]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"directory\""));
        // 1500 ns = 1.500 us; duration 500 ns = 0.500 us.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":0.500"), "{json}");
        assert!(json.contains("\"block\":\"0x40\""));
        // Deterministic: same input, same bytes.
        assert_eq!(json, chrome_trace_json(&[("serial", &log)]));
    }

    #[test]
    fn export_obs_reports_span_and_orphan_counts() {
        let mut log = SpanLog::new();
        log.enable();
        let t = log.begin_trace("txn", 0, 0, 1);
        log.child(t, "net", SpanKind::Network, 0, 5, 0);
        log.flag_orphans(10);
        let mut snap = crate::Snapshot::new();
        log.export_obs("simx.span", &mut snap);
        let json = snap.to_json();
        assert!(json.contains("\"simx.span.spans\":2"));
        assert!(json.contains("\"simx.span.traces\":1"));
        assert!(json.contains("\"simx.span.orphans\":1"));
    }
}
