#![warn(missing_docs)]

//! # obs — workspace-wide observability substrate
//!
//! The paper's entire evaluation is counting — prediction accuracy,
//! message mixes, predictor memory — and a production coherence system
//! needs the same visibility at run time. This crate is the common,
//! dependency-free substrate every other crate reports through:
//!
//! * a **metrics registry** ([`Registry`]) of counters, gauges, and
//!   power-of-two-bucket latency [`Histogram`]s, cheap enough for the
//!   simulator hot path (plain integer cells behind clonable handles;
//!   atomics only in [`sync`] for cross-thread tallies);
//! * a **bounded ring-buffer event trace** ([`EventRing`]) — message
//!   sends/receives, state transitions, predictor and policy actions —
//!   with severity levels, dumpable on invariant failure so protocol bugs
//!   come with a flight recorder;
//! * a **causal tracing layer** ([`SpanLog`]) — per-transaction span
//!   trees over simulated time with latency-attribution categories and a
//!   Chrome trace-event / Perfetto exporter ([`span::chrome_trace_json`]),
//!   off by default so untraced runs stay byte-identical;
//! * machine-readable **snapshot exporters** ([`Snapshot::to_json`],
//!   [`Snapshot::to_csv`]) and a shared text/CSV [`Table`] formatter. No
//!   serde: the snapshot *is* the serialisation layer.
//!
//! ## Metric naming
//!
//! Names are lowercase, dot-separated: `<crate>.<subsystem>.<metric>`,
//! with a unit suffix where one applies (`simx.access.latency_ns`).
//! Snapshots keep names sorted, so exports are deterministic byte-for-byte
//! for deterministic workloads.
//!
//! ## Example
//!
//! ```
//! use obs::{Registry, Snapshot};
//!
//! let mut reg = Registry::new();
//! let hits = reg.counter("cache.hits");
//! let lat = reg.histogram("cache.latency_ns");
//! hits.inc();
//! lat.record(120);
//! let snap = reg.snapshot();
//! assert!(snap.to_json().contains("\"cache.hits\""));
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod span;
pub mod sync;
pub mod table;

pub use hist::Histogram;
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use ring::{Event, EventRing, Severity};
pub use snapshot::{MetricValue, Snapshot};
pub use span::{Span, SpanId, SpanKind, SpanLog, TraceId};
pub use sync::SharedCounter;
pub use table::{Align, Table};
