//! Point-in-time metric snapshots and their JSON/CSV exports.
//!
//! A [`Snapshot`] is a sorted map from metric name to [`MetricValue`],
//! assembled either by [`crate::Registry::snapshot`] or directly by
//! subsystems that keep their own tallies. Because the map is a
//! `BTreeMap` and all formatting is deterministic, exporting the same
//! run twice yields byte-identical output — which is what golden tests
//! and diff-based regression tooling need.
//!
//! ## JSON schema (`obs.v1`)
//!
//! ```json
//! {
//!   "schema": "obs.v1",
//!   "metrics": {
//!     "<name>": <u64>,                      // counter
//!     "<name>": <f64|null>,                 // gauge (null if non-finite)
//!     "<name>": {"count":u64,"sum":u64,"min":u64,"max":u64,
//!                 "mean":f64,"p50":u64,"p95":u64}   // histogram
//!   }
//! }
//! ```
//!
//! Metric names appear in sorted order. The CSV export flattens each
//! metric to `name,kind,value` rows (histograms become one row per
//! summary statistic: `name.count`, `name.p50`, …).

use crate::hist::Histogram;
use crate::json;
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One exported metric value.
// Snapshots are built once per run at export time; the histogram variant's
// size is irrelevant there, and boxing it would force every consumer match
// through an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// A point-in-time floating value.
    Gauge(f64),
    /// A full histogram (summarised on export).
    Histogram(Histogram),
}

/// A sorted, deterministic snapshot of named metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Records a counter value.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Records a gauge value.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.metrics.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Records a histogram.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.metrics
            .insert(name.to_string(), MetricValue::Histogram(*h));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.keys().cloned().collect()
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`. Same-named counters add, gauges take
    /// the incoming value, histograms merge bucket-wise; a kind mismatch
    /// takes the incoming value (last writer wins).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.metrics {
            match (self.metrics.get_mut(name), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    // Saturate: merging near-full counters must peg at
                    // u64::MAX, not wrap to a small value.
                    *a = a.saturating_add(*b);
                }
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => {
                    a.merge(b);
                }
                (Some(slot), incoming) => *slot = *incoming,
                (None, incoming) => {
                    self.metrics.insert(name.clone(), *incoming);
                }
            }
        }
    }

    /// Serialises to `obs.v1` JSON (see the module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"obs.v1\",\"metrics\":{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push(':');
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => json::push_f64(&mut out, *g),
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                    json::push_f64(&mut out, h.mean());
                    let _ = write!(out, ",\"p50\":{},\"p95\":{}}}", h.p50(), h.p95());
                }
            }
        }
        out.push_str("}}\n");
        out
    }

    /// Flattens into a `name,kind,value` [`Table`] (histograms expand to
    /// one row per summary statistic).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "kind", "value"]);
        for (name, v) in &self.metrics {
            match v {
                MetricValue::Counter(c) => {
                    t.push_row(vec![name.clone(), "counter".into(), c.to_string()]);
                }
                MetricValue::Gauge(g) => {
                    t.push_row(vec![name.clone(), "gauge".into(), format!("{g}")]);
                }
                MetricValue::Histogram(h) => {
                    let stats: [(&str, String); 7] = [
                        ("count", h.count().to_string()),
                        ("sum", h.sum().to_string()),
                        ("min", h.min().to_string()),
                        ("max", h.max().to_string()),
                        ("mean", format!("{}", h.mean())),
                        ("p50", h.p50().to_string()),
                        ("p95", h.p95().to_string()),
                    ];
                    for (stat, value) in stats {
                        t.push_row(vec![format!("{name}.{stat}"), "histogram".into(), value]);
                    }
                }
            }
        }
        t
    }

    /// Serialises to CSV via [`Snapshot::to_table`].
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.counter("b.count", 7);
        s.gauge("a.rate", 0.5);
        let mut h = Histogram::new();
        h.record(10);
        h.record(1000);
        s.histogram("c.lat_ns", &h);
        s
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let s = sample();
        let json = s.to_json();
        assert_eq!(json, s.to_json());
        let a = json.find("\"a.rate\"").unwrap();
        let b = json.find("\"b.count\"").unwrap();
        let c = json.find("\"c.lat_ns\"").unwrap();
        assert!(a < b && b < c);
        assert!(json.starts_with("{\"schema\":\"obs.v1\""));
        assert!(json.contains("\"b.count\":7"));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.get("b.count"), Some(&MetricValue::Counter(14)));
        match a.get("c.lat_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 4),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Gauges take the incoming value.
        assert_eq!(a.get("a.rate"), Some(&MetricValue::Gauge(0.5)));
    }

    #[test]
    fn merge_saturates_counters_at_the_top_of_the_range() {
        // Regression: merge used `wrapping_add`, so combining two
        // near-full counters produced a small wrapped value.
        let mut a = Snapshot::new();
        a.counter("edge", u64::MAX - 1);
        let mut b = Snapshot::new();
        b.counter("edge", 5);
        a.merge(&b);
        assert_eq!(a.get("edge"), Some(&MetricValue::Counter(u64::MAX)));
        a.merge(&b);
        assert_eq!(
            a.get("edge"),
            Some(&MetricValue::Counter(u64::MAX)),
            "repeated merges must stay pegged"
        );
    }

    #[test]
    fn csv_flattens_histograms() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("metric,kind,value\n"));
        assert!(csv.contains("b.count,counter,7\n"));
        assert!(csv.contains("c.lat_ns.count,histogram,2\n"));
        assert!(csv.contains("c.lat_ns.p95,histogram,1000\n"));
    }

    #[test]
    fn nan_gauge_exports_null_json() {
        let mut s = Snapshot::new();
        s.gauge("x", f64::NAN);
        assert!(s.to_json().contains("\"x\":null"));
    }
}
