//! Bounded ring-buffer event tracing — a flight recorder.
//!
//! Subsystems push small, `Copy`, allocation-free [`Event`]s (static
//! strings, packed ids) as they run; the ring keeps only the last `cap`
//! of them. When an invariant trips, [`EventRing::dump`] reconstructs the
//! recent history — which messages arrived, which transitions fired, what
//! the predictor and policy did — so protocol bugs come with context
//! instead of a bare assertion message.

use std::fmt;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume detail (per-transition).
    Debug,
    /// Normal operational events (message receipt, policy actions).
    Info,
    /// Suspicious but recoverable (fault injection, overflow evictions).
    Warn,
    /// Invariant failures and protocol errors.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One traced event. `Copy` and allocation-free: `kind` and `msg` are
/// static strings, everything else is packed integers, so pushing on the
/// simulator hot path is a couple of stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time of the event in nanoseconds.
    pub time_ns: u64,
    /// Severity level.
    pub severity: Severity,
    /// What happened, e.g. `"msg.recv"`, `"cache.transition"`.
    pub kind: &'static str,
    /// Node involved, if any.
    pub node: Option<u16>,
    /// Memory block involved, if any.
    pub block: Option<u64>,
    /// Extra static detail (message type name, state names), if any.
    pub msg: Option<&'static str>,
    /// A free numeric payload (sender id, depth, count — kind-dependent).
    pub value: u64,
}

impl Event {
    /// Creates an event with the given time, severity, and kind; ids and
    /// detail attach via the builder methods.
    pub fn new(time_ns: u64, severity: Severity, kind: &'static str) -> Self {
        Event {
            time_ns,
            severity,
            kind,
            node: None,
            block: None,
            msg: None,
            value: 0,
        }
    }

    /// Attaches the node id.
    pub fn node(mut self, node: u16) -> Self {
        self.node = Some(node);
        self
    }

    /// Attaches the block address.
    pub fn block(mut self, block: u64) -> Self {
        self.block = Some(block);
        self
    }

    /// Attaches static detail text.
    pub fn msg(mut self, msg: &'static str) -> Self {
        self.msg = Some(msg);
        self
    }

    /// Attaches the numeric payload.
    pub fn value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ns] {:5} {}",
            self.time_ns, self.severity, self.kind
        )?;
        if let Some(node) = self.node {
            write!(f, " node={node}")?;
        }
        if let Some(block) = self.block {
            write!(f, " block={block:#x}")?;
        }
        if let Some(msg) = self.msg {
            write!(f, " {msg}")?;
        }
        if self.value != 0 {
            write!(f, " value={}", self.value)?;
        }
        Ok(())
    }
}

/// Default ring capacity: enough history to see the message exchange
/// leading up to a failure without holding a whole run.
pub const DEFAULT_CAPACITY: usize = 256;

/// A bounded ring buffer of [`Event`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index the next event will be written to.
    next: usize,
    /// Total events ever pushed (including dropped and filtered-out).
    total: u64,
    enabled: bool,
    min_severity: Severity,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(DEFAULT_CAPACITY)
    }
}

impl EventRing {
    /// Creates an enabled ring holding the last `cap` events at
    /// [`Severity::Info`] and above. A `cap` of 0 is bumped to 1.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
            enabled: true,
            min_severity: Severity::Info,
        }
    }

    /// Enables or disables recording (pushes become no-ops when off).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the minimum severity recorded.
    pub fn set_min_severity(&mut self, min: Severity) {
        self.min_severity = min;
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered over the ring's lifetime, including ones that
    /// were dropped by overwrite or filtered by severity.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Records an event (a couple of stores; no allocation once the ring
    /// is full).
    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.total += 1;
        if !self.enabled || ev.severity < self.min_severity {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Visits the held events, oldest first, without allocating.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(&Event)) {
        if self.buf.len() < self.cap {
            self.buf.iter().for_each(&mut f);
        } else {
            self.buf[self.next..].iter().for_each(&mut f);
            self.buf[..self.next].iter().for_each(&mut f);
        }
    }

    /// Appends the held events, oldest first, to a caller-owned buffer —
    /// lets hot paths reuse one scratch `Vec` across reads.
    pub fn events_into(&self, out: &mut Vec<Event>) {
        out.reserve(self.buf.len());
        if self.buf.len() < self.cap {
            out.extend_from_slice(&self.buf);
        } else {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        }
    }

    /// The held events, oldest first, as a fresh allocation.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.events_into(&mut out);
        out
    }

    /// Discards all held events (counters and settings survive).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }

    /// Renders the held events, oldest first, as a multi-line report —
    /// the flight-recorder dump printed on invariant failure.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "=== flight recorder: last {} of {} events ===\n",
            self.len(),
            self.total
        );
        self.for_each(|ev| {
            let _ = writeln!(out, "{ev}");
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event::new(t, Severity::Info, "test")
    }

    #[test]
    fn keeps_only_the_last_cap_events_oldest_first() {
        let mut ring = EventRing::new(3);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let times: Vec<u64> = ring.events().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 5);
    }

    #[test]
    fn severity_filter_and_disable() {
        let mut ring = EventRing::new(8);
        ring.push(Event::new(1, Severity::Debug, "noise"));
        assert!(ring.is_empty(), "Debug is below the default Info floor");
        ring.set_min_severity(Severity::Debug);
        ring.push(Event::new(2, Severity::Debug, "detail"));
        assert_eq!(ring.len(), 1);
        ring.set_enabled(false);
        ring.push(ev(3));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.total_pushed(), 3);
    }

    #[test]
    fn min_severity_floor_is_inclusive_at_every_level() {
        // Each floor admits exactly its own level and above.
        let all = [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ];
        for (i, floor) in all.iter().enumerate() {
            let mut ring = EventRing::new(8);
            ring.set_min_severity(*floor);
            for s in all {
                ring.push(Event::new(0, s, "x"));
            }
            assert_eq!(ring.len(), all.len() - i, "floor {floor}");
            assert!(ring.events().iter().all(|e| e.severity >= *floor));
        }
    }

    #[test]
    fn raising_the_floor_keeps_already_recorded_events() {
        let mut ring = EventRing::new(8);
        ring.push(Event::new(1, Severity::Info, "kept"));
        ring.set_min_severity(Severity::Error);
        ring.push(Event::new(2, Severity::Warn, "dropped"));
        ring.push(Event::new(3, Severity::Error, "kept"));
        let kinds: Vec<_> = ring.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["kept", "kept"], "filter is at push time only");
    }

    #[test]
    fn dump_includes_node_block_and_msg_context() {
        let mut ring = EventRing::new(4);
        ring.push(
            Event::new(100, Severity::Error, "invariant.failure")
                .node(3)
                .block(0x40)
                .msg("multiple writers")
                .value(2),
        );
        let dump = ring.dump();
        assert!(dump.contains("invariant.failure"));
        assert!(dump.contains("node=3"));
        assert!(dump.contains("block=0x40"));
        assert!(dump.contains("multiple writers"));
        assert!(dump.contains("ERROR"));
    }

    #[test]
    fn for_each_and_events_into_match_events() {
        // Both before and after the ring wraps, the allocation-free
        // accessors must agree with the copying one, oldest first.
        let mut ring = EventRing::new(3);
        for n in [2usize, 5] {
            for t in 0..n as u64 {
                ring.push(ev(t));
            }
            let copied = ring.events();
            let mut visited = Vec::new();
            ring.for_each(|e| visited.push(*e));
            assert_eq!(visited, copied);
            let mut reused = vec![ev(99)];
            ring.events_into(&mut reused);
            assert_eq!(reused[1..], copied[..], "events_into appends");
            ring.clear();
        }
    }

    #[test]
    fn clear_resets_contents_but_not_total() {
        let mut ring = EventRing::new(2);
        ring.push(ev(1));
        ring.push(ev(2));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 2);
        ring.push(ev(3));
        assert_eq!(ring.events()[0].time_ns, 3);
    }
}
