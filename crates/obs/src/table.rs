//! A small shared table formatter.
//!
//! `trace::stats` and `bench-suite::tables` both need "headers + rows →
//! aligned text or CSV"; this type is the single implementation. Rendered
//! text pads columns to their widest cell; CSV quotes only cells that need
//! it, so output is stable and diff-friendly.

/// Column alignment for rendered text output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (the default).
    #[default]
    Left,
    /// Right-aligned — use for numeric columns.
    Right,
}

/// An owned table of string cells with optional title and per-column
/// alignment.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers, all left-aligned.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title line printed above the rendered table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Sets per-column alignment (pads with [`Align::Left`] if short).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        self.aligns = aligns;
        self.aligns.resize(self.headers.len(), Align::Left);
        self
    }

    /// Appends one row; it is padded or truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text with a header separator line.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        // No trailing padding on the last column.
                        if i + 1 < ncols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting: cells containing `,`, `"`, or a
    /// newline are quoted, embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_and_aligns() {
        let mut t = Table::new(vec!["name", "value"]).with_aligns(vec![Align::Left, Align::Right]);
        t.push_row(vec!["alpha", "1"]);
        t.push_row(vec!["b", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert_eq!(lines[1], "------------");
        assert_eq!(lines[2], "alpha      1");
        assert_eq!(lines[3], "b      12345");
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["plain", "has,comma"]);
        t.push_row(vec!["has\"quote", "x"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
    }

    #[test]
    fn short_rows_are_padded_to_header_width() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["1"]);
        assert_eq!(t.to_csv(), "a,b,c\n1,,\n");
    }
}
