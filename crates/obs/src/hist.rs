//! Power-of-two-bucket histograms.
//!
//! A [`Histogram`] is a fixed-size value type — 65 buckets, one per
//! power-of-two magnitude, plus exact count/sum/min/max — so recording is
//! a handful of integer operations with no allocation, merging is
//! bucket-wise addition, and percentile queries walk at most 65 cells.
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i - 1]` (bucket 64 tops out at `u64::MAX`). Reported
//! percentiles are therefore upper bounds within a factor of two, which is
//! the right fidelity for latencies spanning nanoseconds to milliseconds.

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// A power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The bucket a value falls into.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value a bucket can hold.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. A few integer operations; no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`), clamped to
    /// the largest observed sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The median upper bound (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The raw bucket counts (index = power-of-two magnitude).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn u64_max_lands_in_top_bucket_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates rather than wrapping
        assert_eq!(h.buckets()[64], 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.p95(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_are_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        // p50 falls in the bucket of 30 (16..=31), clamped by nothing.
        assert_eq!(h.p50(), 31);
        // p95+ falls in the bucket of 1000 (512..=1023), clamped to max.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.p99(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(700);
        // One sample: every quantile is that sample (clamped to max even
        // though its bucket tops out at 1023).
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 700, "q={q}");
        }
        assert_eq!(h.min(), 700);
        assert_eq!(h.max(), 700);
        assert_eq!(h.mean(), 700.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn out_of_range_q_clamps_to_the_extremes() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(2.0), 1000);
    }

    #[test]
    fn saturating_counts_do_not_wrap_sum_or_quantiles() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.quantile(0.0), u64::MAX);
        // Mean degrades gracefully under a saturated sum.
        assert!(h.mean() <= u64::MAX as f64);
        // Merging saturated histograms stays saturated, never wraps.
        let mut other = h;
        other.merge(&h);
        assert_eq!(other.sum(), u64::MAX);
        assert_eq!(other.count(), 6);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 5, 100] {
            a.record(v);
        }
        for v in [7, u64::MAX] {
            b.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), u64::MAX);
        let mut direct = Histogram::new();
        for v in [0, 5, 100, 7, u64::MAX] {
            direct.record(v);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a;
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
