//! The metrics registry: named counters, gauges, and histograms behind
//! cheap clonable handles.
//!
//! A [`Registry`] is a per-node (per-machine, per-thread) object: handles
//! are `Rc<Cell<_>>`-backed, so an increment is a plain integer add with
//! no locking — the cost profile the simulator hot path needs. Cross-
//! thread tallies use [`crate::sync::SharedCounter`] instead; separate
//! threads keep separate registries and merge [`Snapshot`]s at report
//! time.

use crate::hist::Histogram;
use crate::snapshot::Snapshot;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`. A counter that has been
    /// incremented 2^64 times is pegged, not silently reset to a small
    /// value — wrapping would corrupt rates and diffs downstream.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A histogram handle.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// A copy of the current histogram.
    pub fn get(&self) -> Histogram {
        *self.0.borrow()
    }
}

/// A registry of named metrics. Names are lowercase dot paths
/// (`simx.access.latency_ns`); see the crate docs for the convention.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&mut self, name: &str) -> Counter {
        self.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        self.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramHandle {
        self.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name (deterministic regardless of registration order).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for (name, c) in &self.counters {
            snap.counter(name, c.get());
        }
        for (name, g) in &self.gauges {
            snap.gauge(name, g.get());
        }
        for (name, h) in &self.histograms {
            snap.histogram(name, &h.get());
        }
        snap
    }

    /// Snapshots into an existing snapshot (for multi-registry reports).
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        snap.merge(&self.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_cell() {
        let mut reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.hits").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        // Regression: `add` used `wrapping_add`, so a counter at the top
        // of the range would wrap to a tiny value and silently corrupt
        // every downstream rate computation.
        let mut reg = Registry::new();
        let c = reg.counter("edge.hits");
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "increment past MAX must peg, not wrap");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn snapshot_is_sorted_and_registration_order_independent() {
        let mut fwd = Registry::new();
        fwd.counter("a.one").inc();
        fwd.counter("b.two").add(2);
        fwd.gauge("c.three").set(3.0);
        let mut rev = Registry::new();
        rev.gauge("c.three").set(3.0);
        rev.counter("b.two").add(2);
        rev.counter("a.one").inc();
        assert_eq!(fwd.snapshot().to_json(), rev.snapshot().to_json());
        let names = fwd.snapshot().names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn histograms_snapshot_their_summary() {
        let mut reg = Registry::new();
        let h = reg.histogram("lat_ns");
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"lat_ns\""));
        assert!(json.contains("\"count\":2"));
    }
}
