//! Proptest regression seeds for the speculation layer, promoted to
//! named deterministic tests.
//!
//! `prop_speculation.rs` is gated behind the `proptest-tests` feature
//! (the crate cannot be vendored yet), so the saved counterexamples in
//! `prop_speculation.proptest-regressions` would only re-run in an
//! environment that has proptest. Each saved seed is replayed here
//! verbatim as an always-on unit test with a `promoted:` marker; CI
//! checks that every `cc` line has a matching marker.
//!
//! All three seeds came out of the speculative speedup harness's faulted
//! cells and each one exposed a distinct recovery hole in the concurrent
//! engine — the fixes live in `simx::concurrent` and are documented in
//! DESIGN §6i. The tests pin them in the property's coordinate space:
//! `(app, depth, threshold, drop_bp, dup_bp, reorder, seed)`.

use accel::SpeculatePolicy;
use simx::{ConcurrentMachine, FaultPlan, SystemConfig};
use stache::ProtocolConfig;
use workloads::small_suite;

/// Mirrors `prop_speculation`: one case is `(app, depth, threshold,
/// drop_bp, dup_bp, reorder, seed)` with rates in basis points.
fn replay(app: usize, depth: usize, threshold: Option<u8>, case: (u32, u32, u32, u64)) {
    let (drop_bp, dup_bp, reorder, seed) = case;
    let plan = FaultPlan {
        drop: f64::from(drop_bp) / 10_000.0,
        dup: f64::from(dup_bp) / 10_000.0,
        reorder,
        seed,
        ..FaultPlan::default()
    };
    let mut suite = small_suite();
    let w = suite[app].as_mut();
    let mut m = ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
    m.set_app(w.name(), w.iterations());
    m.set_fault_plan(plan);
    m.set_policy(Box::new(SpeculatePolicy::new(depth, threshold)));
    for it in 0..w.iterations() {
        let p = w.plan(it);
        m.run_plan(&p, it)
            .expect("speculative faulted run must drain");
    }
    m.verify_coherence()
        .expect("SWMR + directory/cache agreement");
}

/// promoted: 606da227586db2fff642e917ff29adcfa264a108e709967ddb6d3db5143d4852
///
/// dsmc, depth 1, threshold 2, `drop=0.01,dup=0.005,reorder=3`, seed 0.
/// A converted upgrade's `inval_rw_request` overtook the previous
/// writer's still-in-flight `upgrade_response` and landed at a cache in
/// `SToE`, which had no arm for it — "cache in state SToE cannot accept
/// inval_rw_request". The fix yields the block from `SToE` (ack, drop
/// the value, fall to `IToE`) and lets the retried upgrade re-convert.
#[test]
fn seed_recall_overtakes_upgrade_grant() {
    replay(2, 1, Some(2), (100, 50, 3, 0));
}

/// promoted: 1280eba7ee06e469f89e1362321594d4751ea190b51291ec76b15b8e851d746c
///
/// moldyn, depth 1, threshold 2, same plan. A requester-level
/// retransmitted `get_ro_request` (fresh sequence number, so not a
/// fabric dup) arrived after the node's voluntary early-ack had already
/// removed it from the sharer set; the directory re-added the node and
/// granted, the node absorbed the grant as stale — directory listing a
/// non-holder. The fix absorbs directory-side requests whose sender is
/// no longer waiting on that block with a matching op.
#[test]
fn seed_stale_retransmission_after_early_ack() {
    replay(3, 1, Some(2), (100, 50, 3, 0));
}

/// promoted: 0cb20525cf62a4fe916d0728d944de0bfe84b27c239ee11c578c0eaaca48d71c
///
/// dsmc, depth 2, threshold 2, same plan. A recall for the *next*
/// transaction overtook the grant for the current one; the waiting node
/// acked the recall via the already-applied arm, the directory granted
/// the next writer, and the node then consumed the older reordered grant
/// — two exclusive owners. The fix poisons grants ordered before an
/// acked recall (per-receiver sequence numbers give the order) so the
/// stale grant is absorbed and the retry fetches a fresh one.
#[test]
fn seed_poisoned_grant_after_acked_recall() {
    replay(2, 2, Some(2), (100, 50, 3, 0));
}
