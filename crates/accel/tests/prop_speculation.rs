//! Property tests for the actioned speculation layer: a learned
//! [`SpeculatePolicy`] with an *arbitrary* confidence threshold, over an
//! *arbitrary* fault plan, must never violate SWMR and must always drain
//! to quiescence. Correctness never depends on the predictor being right
//! — a mispredict costs time (rollback, re-fetch), never coherence.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use accel::SpeculatePolicy;
use proptest::prelude::*;
use simx::{ConcurrentMachine, FaultPlan, SystemConfig};
use stache::ProtocolConfig;
use workloads::small_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random speculation thresholds × random fault plans over the small
    /// suite: every run drains (returning from `run_plan` at all means no
    /// deadlock — the engine's retry watchdog would error first) and the
    /// barrier + final audits hold SWMR and directory/cache agreement.
    ///
    /// `threshold = None` is the ∞ threshold (train, never fire); small
    /// values fire aggressively on barely-warm predictions — far harsher
    /// than the tuned default.
    #[test]
    fn speculation_under_faults_stays_coherent_and_quiescent(
        app in 0usize..5,
        depth in 1usize..5,
        threshold in prop::option::of(0u8..6),
        drop_bp in 0u32..=200,   // basis points: up to 2% drop
        dup_bp in 0u32..=100,    // up to 1% duplication
        reorder in 0u32..=4,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan {
            drop: f64::from(drop_bp) / 10_000.0,
            dup: f64::from(dup_bp) / 10_000.0,
            reorder,
            seed,
            ..FaultPlan::default()
        };
        let mut suite = small_suite();
        let w = suite[app].as_mut();
        let mut m = ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
        m.set_app(w.name(), w.iterations());
        m.set_fault_plan(plan);
        m.set_policy(Box::new(SpeculatePolicy::new(depth, threshold)));
        for it in 0..w.iterations() {
            let p = w.plan(it);
            m.run_plan(&p, it).expect("speculative faulted run must drain");
        }
        m.verify_coherence().expect("SWMR + directory/cache agreement");
    }
}
