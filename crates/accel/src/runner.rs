//! Running workloads with and without speculation and comparing outcomes.

use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use simx::{driver, Machine, SimError, SpeculationPolicy, SystemConfig};
use stache::{BlockAddr, MsgType, NodeId, ProtocolConfig, Role};
use std::collections::{HashMap, HashSet};
use std::fmt;
use trace::TraceBundle;
use workloads::Workload;

/// The outcome of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Total coherence messages exchanged.
    pub messages: u64,
    /// Execution time (latest node clock) in ns.
    pub execution_time_ns: u64,
    /// Memory accesses that hit without coherence action.
    pub hits: u64,
    /// Total memory accesses executed (reads + writes).
    pub accesses: u64,
    /// Speculative exclusive grants the directory issued.
    pub exclusive_grants: u64,
    /// Voluntary replacements the caches issued.
    pub voluntary_replacements: u64,
}

/// Baseline vs. accelerated, on identical access streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparison {
    /// The run without speculation.
    pub baseline: RunSummary,
    /// The run with the policy installed.
    pub accelerated: RunSummary,
}

impl Comparison {
    /// Message reduction as a fraction of the baseline (negative when
    /// speculation *added* traffic).
    pub fn message_saving(&self) -> f64 {
        if self.baseline.messages == 0 {
            return 0.0;
        }
        1.0 - self.accelerated.messages as f64 / self.baseline.messages as f64
    }

    /// Execution-time speedup (baseline / accelerated).
    pub fn speedup(&self) -> f64 {
        if self.accelerated.execution_time_ns == 0 {
            return 1.0;
        }
        self.baseline.execution_time_ns as f64 / self.accelerated.execution_time_ns as f64
    }

    /// Exports the comparison into a metrics snapshot under `accel.` —
    /// message counts for both runs, the speedup and saving headline
    /// figures, and the policy-action counters.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("accel.baseline.messages", self.baseline.messages);
        snap.counter("accel.accelerated.messages", self.accelerated.messages);
        snap.counter(
            "accel.baseline.execution_time_ns",
            self.baseline.execution_time_ns,
        );
        snap.counter(
            "accel.accelerated.execution_time_ns",
            self.accelerated.execution_time_ns,
        );
        snap.gauge("accel.speedup", self.speedup());
        snap.gauge("accel.message_saving_pct", 100.0 * self.message_saving());
        snap.counter(
            "accel.policy.exclusive_grants",
            self.accelerated.exclusive_grants,
        );
        snap.counter(
            "accel.policy.voluntary_replacements",
            self.accelerated.voluntary_replacements,
        );
        // Mispredictions surface as extra coherence misses relative to the
        // baseline's identical access stream (a wrong grant or a premature
        // replacement must be re-fetched).
        let base_misses = self.baseline.accesses - self.baseline.hits;
        let accel_misses = self.accelerated.accesses - self.accelerated.hits;
        snap.counter(
            "accel.speculation.extra_misses",
            accel_misses.saturating_sub(base_misses),
        );
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "messages {} -> {} ({:+.1}%), time {} -> {} ns ({:.2}x), \
             {} grants, {} replacements",
            self.baseline.messages,
            self.accelerated.messages,
            -100.0 * self.message_saving(),
            self.baseline.execution_time_ns,
            self.accelerated.execution_time_ns,
            self.speedup(),
            self.accelerated.exclusive_grants,
            self.accelerated.voluntary_replacements,
        )
    }
}

/// Runs a workload on the paper's machine, optionally with a policy.
///
/// # Errors
///
/// Propagates any [`SimError`]; with a policy installed this additionally
/// verifies that speculation preserved coherence.
pub fn run_with_policy<W: Workload + ?Sized>(
    workload: &mut W,
    policy: Option<Box<dyn SpeculationPolicy>>,
) -> Result<RunSummary, SimError> {
    let mut machine = Machine::new(ProtocolConfig::paper(), SystemConfig::paper());
    machine.set_app(workload.name(), workload.iterations());
    if let Some(p) = policy {
        machine.set_policy(p);
    }
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        driver::run_iteration(&mut machine, &plan, it)?;
    }
    machine.verify_coherence()?;
    let stats = machine.stats();
    Ok(RunSummary {
        messages: stats.messages_total(),
        execution_time_ns: machine.execution_time_ns(),
        hits: stats.hits,
        accesses: stats.accesses(),
        exclusive_grants: stats.exclusive_grants,
        voluntary_replacements: stats.voluntary_replacements,
    })
}

/// Runs the same workload twice — bare, then with `make_policy()` — and
/// returns both summaries. The two workload instances must be
/// identically-constructed (plans are pure functions of parameters, so
/// the access streams match).
///
/// # Errors
///
/// Propagates any [`SimError`] from either run.
pub fn compare<W: Workload + ?Sized>(
    baseline_workload: &mut W,
    accelerated_workload: &mut W,
    make_policy: impl FnOnce() -> Box<dyn SpeculationPolicy>,
) -> Result<Comparison, SimError> {
    let baseline = run_with_policy(baseline_workload, None)?;
    let accelerated = run_with_policy(accelerated_workload, Some(make_policy()))?;
    Ok(Comparison {
        baseline,
        accelerated,
    })
}

/// Runs a workload on the *concurrent* engine, optionally with a policy —
/// the same study at the higher-fidelity execution model, where grants
/// and voluntary replacements contend with real races.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_concurrent_with_policy<W: Workload + ?Sized>(
    workload: &mut W,
    policy: Option<Box<dyn SpeculationPolicy>>,
) -> Result<RunSummary, SimError> {
    let mut machine = simx::ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
    machine.set_app(workload.name(), workload.iterations());
    if let Some(p) = policy {
        machine.set_policy(p);
    }
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        machine.run_plan(&plan, it)?;
    }
    machine.verify_coherence()?;
    let stats = machine.stats();
    Ok(RunSummary {
        messages: stats.messages_total(),
        execution_time_ns: machine.execution_time_ns(),
        hits: stats.hits,
        accesses: stats.accesses(),
        exclusive_grants: stats.exclusive_grants,
        voluntary_replacements: stats.voluntary_replacements,
    })
}

/// The speculative-action counts recovered by replaying a finished run's
/// trace (see [`audit_actions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActionAudit {
    /// Exclusive grants the live policy must have fired.
    pub exclusive_grants: u64,
    /// Voluntary (self-invalidation) replacements it must have fired.
    pub voluntary_replacements: u64,
}

/// Replays a [`CosmosPolicy`](crate::CosmosPolicy)-equivalent fleet over a
/// finished run's trace — the same per-`(node, role)` agent layout
/// [`cosmos::record_verdicts`] uses — and counts the actions the live
/// policy fired, from the recorded messages alone.
///
/// The live policy trains on exactly the receptions the trace records, in
/// record order, so a replayed fleet reaches the same table state at every
/// consult point and reproduces every decision:
///
/// * an **exclusive grant** fired at each directory `get_ro_request`
///   record after which the home's predictor names `(sender,
///   upgrade_request)`;
/// * a **voluntary replacement** fired at each exclusive fill — a
///   `get_rw_response`/`upgrade_response` answering a genuine write, *or*
///   answering a read the audit itself granted exclusively — after which
///   the holder's predictor names an `inval_rw_request`. (A granted read
///   consults self-invalidation at the predicted write, which *hits* in
///   cache and leaves no record; no message reaches that cache while it
///   stays exclusive, so the predictor state at the hit is the fill-time
///   state the audit checks. This assumes the read-modify-write idiom the
///   grant bet on — the write the predictor foresaw does arrive.)
///
/// This only holds on *clean* runs: under fault injection a retry
/// re-delivers a message the dedup layer may absorb after it was already
/// recorded, so the live observe stream and the trace diverge. The
/// regression tests pin the clean-run equality so any such drift in the
/// runner is caught.
pub fn audit_actions(bundle: &TraceBundle, depth: usize, filter_max: u8) -> ActionAudit {
    let mut auditor = ActionAuditor::new(depth, filter_max);
    auditor.push_all(bundle.records());
    auditor.finish()
}

/// [`audit_actions`], fed a chunked record stream — the packed-trace
/// replay form. Identical counts to auditing the concatenated chunks;
/// only one chunk need be in memory at a time.
pub fn audit_actions_chunks<'a>(
    chunks: impl IntoIterator<Item = &'a [trace::MsgRecord]>,
    depth: usize,
    filter_max: u8,
) -> ActionAudit {
    let mut auditor = ActionAuditor::new(depth, filter_max);
    for chunk in chunks {
        auditor.push_all(chunk);
    }
    auditor.finish()
}

/// The push-based core of [`audit_actions`]: feed records in trace order,
/// then [`finish`](ActionAuditor::finish). Lets the streaming replay path
/// audit a trace it never holds whole.
#[derive(Debug, Default)]
pub struct ActionAuditor {
    depth: usize,
    filter_max: u8,
    fleet: HashMap<(NodeId, Role), CosmosPredictor>,
    /// Exclusive fills in flight, keyed (block, holder): genuine write
    /// requests plus reads the audit granted exclusively. Each one's
    /// arrival is a self-invalidation consult point.
    fills: HashSet<(BlockAddr, NodeId)>,
    audit: ActionAudit,
}

impl ActionAuditor {
    /// Starts an audit with a fleet of the given depth and filter.
    pub fn new(depth: usize, filter_max: u8) -> Self {
        ActionAuditor {
            depth,
            filter_max,
            ..Default::default()
        }
    }

    /// Feeds one record in trace order.
    pub fn push(&mut self, r: &trace::MsgRecord) {
        let predictor = self
            .fleet
            .entry((r.node, r.role))
            .or_insert_with(|| CosmosPredictor::new(self.depth, self.filter_max));
        // The machine records a reception (training the policy) before it
        // consults any action for it, so observe first.
        predictor.observe(r.block, PredTuple::new(r.sender, r.mtype));
        match (r.role, r.mtype) {
            (Role::Directory, MsgType::GetRoRequest)
                if predictor.predict(r.block)
                    == Some(PredTuple::new(r.sender, MsgType::UpgradeRequest)) =>
            {
                self.audit.exclusive_grants += 1;
                self.fills.insert((r.block, r.sender));
            }
            (Role::Directory, MsgType::GetRwRequest | MsgType::UpgradeRequest) => {
                self.fills.insert((r.block, r.sender));
            }
            (Role::Cache, MsgType::GetRwResponse | MsgType::UpgradeResponse)
                if self.fills.remove(&(r.block, r.node))
                    && matches!(
                        predictor.predict(r.block),
                        Some(PredTuple {
                            mtype: MsgType::InvalRwRequest,
                            ..
                        })
                    ) =>
            {
                self.audit.voluntary_replacements += 1;
            }
            _ => {}
        }
    }

    /// Feeds a batch (typically one decoded chunk).
    pub fn push_all(&mut self, records: &[trace::MsgRecord]) {
        for r in records {
            self.push(r);
        }
    }

    /// Returns the recovered action counts.
    pub fn finish(self) -> ActionAudit {
        self.audit
    }
}

/// [`compare`], on the concurrent engine.
///
/// # Errors
///
/// Propagates any [`SimError`] from either run.
pub fn compare_concurrent<W: Workload + ?Sized>(
    baseline_workload: &mut W,
    accelerated_workload: &mut W,
    make_policy: impl FnOnce() -> Box<dyn SpeculationPolicy>,
) -> Result<Comparison, SimError> {
    let baseline = run_concurrent_with_policy(baseline_workload, None)?;
    let accelerated = run_concurrent_with_policy(accelerated_workload, Some(make_policy()))?;
    Ok(Comparison {
        baseline,
        accelerated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed_policy::DirectedPolicy;
    use crate::CosmosPolicy;
    use workloads::micro::{Migratory, ProducerConsumer};

    #[test]
    fn producer_consumer_gets_faster_with_cosmos() {
        let make = || ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(2))).unwrap();
        assert!(c.accelerated.voluntary_replacements > 0, "{c}");
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
        assert!(c.speedup() > 1.0, "{c}");
    }

    #[test]
    fn migratory_grants_remove_upgrade_rounds() {
        let make = || Migratory {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(2))).unwrap();
        assert!(c.accelerated.exclusive_grants > 0, "{c}");
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
    }

    #[test]
    fn directed_policy_also_accelerates_its_own_patterns() {
        let make = || ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare(&mut make(), &mut make(), || Box::new(DirectedPolicy::new())).unwrap();
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
    }

    #[test]
    fn concurrent_engine_speculation_stays_coherent_and_saves_messages() {
        let make = || ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare_concurrent(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(2)))
            .unwrap();
        assert!(c.accelerated.voluntary_replacements > 0, "{c}");
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
    }

    #[test]
    fn concurrent_grants_fire_on_migratory() {
        let make = || Migratory {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare_concurrent(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(2)))
            .unwrap();
        assert!(c.accelerated.exclusive_grants > 0, "{c}");
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
    }

    #[test]
    fn export_obs_carries_the_headline_comparison() {
        let make = || ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let c = compare(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(2))).unwrap();
        let mut snap = obs::Snapshot::new();
        c.export_obs(&mut snap);
        assert!(snap.names().iter().all(|n| n.starts_with("accel.")));
        assert_eq!(
            snap.get("accel.baseline.messages"),
            Some(&obs::MetricValue::Counter(c.baseline.messages))
        );
        assert!(matches!(
            snap.get("accel.speedup"),
            Some(obs::MetricValue::Gauge(s)) if *s > 1.0
        ));
    }

    /// Runs `workload` on the serial machine with a policy installed and
    /// returns the live action counts plus the trace they came from.
    fn traced_run<W: workloads::Workload>(
        workload: &mut W,
        policy: Box<dyn SpeculationPolicy>,
    ) -> (u64, u64, trace::TraceBundle) {
        let mut machine = Machine::new(ProtocolConfig::paper(), SystemConfig::paper());
        machine.set_app(workload.name(), workload.iterations());
        machine.set_policy(policy);
        for it in 0..workload.iterations() {
            let plan = workload.plan(it);
            driver::run_iteration(&mut machine, &plan, it).unwrap();
        }
        machine.verify_coherence().unwrap();
        let stats = machine.stats();
        let (grants, repls) = (stats.exclusive_grants, stats.voluntary_replacements);
        (grants, repls, machine.into_trace())
    }

    #[test]
    fn audit_reproduces_live_grant_counts() {
        let mut w = Migratory {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let (grants, repls, bundle) = traced_run(&mut w, Box::new(CosmosPolicy::new(2)));
        assert!(grants > 0, "migratory must drive grants");
        let audit = audit_actions(&bundle, 2, 1);
        assert_eq!(audit.exclusive_grants, grants);
        assert_eq!(audit.voluntary_replacements, repls);
    }

    #[test]
    fn audit_reproduces_live_replacement_counts() {
        let mut w = ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let (grants, repls, bundle) = traced_run(&mut w, Box::new(CosmosPolicy::new(2)));
        assert!(repls > 0, "producer-consumer must drive replacements");
        let audit = audit_actions(&bundle, 2, 1);
        assert_eq!(audit.voluntary_replacements, repls);
        assert_eq!(audit.exclusive_grants, grants);
    }

    #[test]
    fn audit_agrees_with_record_verdicts_on_a_baseline_trace() {
        // On a run with no policy installed, every replacement opportunity
        // the audit counts is a prediction the *actual* next message at
        // that cache confirms or refutes — exactly what record_verdicts
        // tags. Producer-consumer recalls the producer after every write,
        // so each audited opportunity is the recall record tagged Hit, and
        // the two counts must agree exactly.
        let mut w = ProducerConsumer {
            blocks: 2,
            iterations: 20,
            ..Default::default()
        };
        let mut machine = Machine::new(ProtocolConfig::paper(), SystemConfig::paper());
        machine.set_app(w.name(), w.iterations());
        for it in 0..w.iterations() {
            let plan = w.plan(it);
            driver::run_iteration(&mut machine, &plan, it).unwrap();
        }
        let bundle = machine.into_trace();
        let audit = audit_actions(&bundle, 2, 1);
        assert!(audit.voluntary_replacements > 0);
        let verdicts = cosmos::eval::record_verdicts(&bundle, 2, 1);
        let recall_hits = bundle
            .records()
            .iter()
            .zip(&verdicts)
            .filter(|(r, v)| {
                r.role == Role::Cache
                    && r.mtype == MsgType::InvalRwRequest
                    && **v == cosmos::eval::Verdict::Hit
            })
            .count() as u64;
        assert_eq!(audit.voluntary_replacements, recall_hits);
    }

    #[test]
    fn no_policy_compare_is_identity() {
        let mut a = ProducerConsumer {
            blocks: 1,
            iterations: 5,
            ..Default::default()
        };
        let mut b = ProducerConsumer {
            blocks: 1,
            iterations: 5,
            ..Default::default()
        };
        let ra = run_with_policy(&mut a, None).unwrap();
        let rb = run_with_policy(&mut b, None).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(ra.exclusive_grants, 0);
    }
}
