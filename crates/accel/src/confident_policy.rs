//! Confidence-gated speculation.
//!
//! [`CosmosPolicy`](crate::CosmosPolicy) fires on any learned pattern; on
//! noisy blocks that wastes speculations (each one a potential extra
//! miss). This policy speculates only when the predictor's confidence
//! counter has reached a threshold — trading some of the upside for a
//! near-zero misfire rate, the right end of Figure 5's trade-off when the
//! misprediction penalty is high.

use cosmos::{ConfidenceCosmos, MessagePredictor, PredTuple};
use simx::SpeculationPolicy;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;
use trace::MsgRecord;

/// A speculation policy driven by confidence-gated Cosmos predictors.
#[derive(Debug)]
pub struct ConfidentPolicy {
    depth: usize,
    threshold: u8,
    directories: HashMap<NodeId, ConfidenceCosmos>,
    caches: HashMap<NodeId, ConfidenceCosmos>,
}

impl ConfidentPolicy {
    /// Creates a policy whose predictors answer only at the given
    /// confidence (see [`cosmos::confidence::CONFIDENCE_MAX`]).
    pub fn new(depth: usize, threshold: u8) -> Self {
        ConfidentPolicy {
            depth,
            threshold,
            directories: HashMap::new(),
            caches: HashMap::new(),
        }
    }

    fn directory(&mut self, home: NodeId) -> &mut ConfidenceCosmos {
        let (depth, threshold) = (self.depth, self.threshold);
        self.directories
            .entry(home)
            .or_insert_with(|| ConfidenceCosmos::new(depth, threshold))
    }

    fn cache(&mut self, node: NodeId) -> &mut ConfidenceCosmos {
        let (depth, threshold) = (self.depth, self.threshold);
        self.caches
            .entry(node)
            .or_insert_with(|| ConfidenceCosmos::new(depth, threshold))
    }
}

impl SpeculationPolicy for ConfidentPolicy {
    fn grant_exclusive(&mut self, home: NodeId, requester: NodeId, block: BlockAddr) -> bool {
        self.directory(home).predict(block)
            == Some(PredTuple::new(requester, MsgType::UpgradeRequest))
    }

    fn self_invalidate(&mut self, node: NodeId, block: BlockAddr) -> bool {
        matches!(
            self.cache(node).predict(block),
            Some(PredTuple {
                mtype: MsgType::InvalRwRequest,
                ..
            })
        )
    }

    fn observe(&mut self, record: &MsgRecord) {
        let tuple = PredTuple::new(record.sender, record.mtype);
        match record.role {
            Role::Directory => self.directory(record.node).observe(record.block, tuple),
            Role::Cache => self.cache(record.node).observe(record.block, tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::compare;
    use crate::CosmosPolicy;
    use workloads::micro::ProducerConsumer;
    use workloads::Appbt;

    #[test]
    fn needs_confirmations_before_granting() {
        let mut p = ConfidentPolicy::new(1, 2);
        let rec = |mtype| MsgRecord {
            time_ns: 0,
            node: NodeId::new(0),
            role: Role::Directory,
            block: BlockAddr::new(5),
            sender: NodeId::new(1),
            mtype,
            iteration: 0,
        };
        // One sighting of the read->upgrade pattern: not confident yet.
        p.observe(&rec(MsgType::GetRoRequest));
        p.observe(&rec(MsgType::UpgradeRequest));
        p.observe(&rec(MsgType::GetRoRequest));
        assert!(!p.grant_exclusive(NodeId::new(0), NodeId::new(1), BlockAddr::new(5)));
        // Two confirmations later it fires.
        p.observe(&rec(MsgType::UpgradeRequest));
        p.observe(&rec(MsgType::GetRoRequest));
        p.observe(&rec(MsgType::UpgradeRequest));
        p.observe(&rec(MsgType::GetRoRequest));
        assert!(p.grant_exclusive(NodeId::new(0), NodeId::new(1), BlockAddr::new(5)));
    }

    #[test]
    fn gated_policy_still_accelerates_stable_patterns() {
        let make = || ProducerConsumer {
            blocks: 2,
            iterations: 25,
            ..Default::default()
        };
        let c = compare(&mut make(), &mut make(), || {
            Box::new(ConfidentPolicy::new(1, 2))
        })
        .unwrap();
        assert!(c.accelerated.messages < c.baseline.messages, "{c}");
    }

    #[test]
    fn gating_reduces_speculation_volume_on_noisy_workloads() {
        // appbt's false sharing misleads an ungated policy; the gated one
        // fires less (and never blindly).
        let make = || Appbt::small();
        let eager = compare(&mut make(), &mut make(), || Box::new(CosmosPolicy::new(1))).unwrap();
        let gated = compare(&mut make(), &mut make(), || {
            Box::new(ConfidentPolicy::new(1, 2))
        })
        .unwrap();
        let eager_fires =
            eager.accelerated.exclusive_grants + eager.accelerated.voluntary_replacements;
        let gated_fires =
            gated.accelerated.exclusive_grants + gated.accelerated.voluntary_replacements;
        assert!(
            gated_fires < eager_fires,
            "gated {gated_fires} vs eager {eager_fires}"
        );
        // And it still helps.
        assert!(
            gated.accelerated.messages <= gated.baseline.messages,
            "{gated}"
        );
    }
}
