//! The Cosmos-driven speculation policy.

use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use simx::SpeculationPolicy;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;
use trace::MsgRecord;

/// Drives the machine's speculative actions from live Cosmos predictors —
/// one per directory and one per cache, trained on exactly the messages
/// each agent receives, as §3.2 prescribes.
///
/// Speculation is deliberately *conservative*: an action fires only when
/// the agent's predictor has an opinion and that opinion maps to the
/// action. With no opinion the protocol runs unmodified, so the worst
/// case degenerates to the baseline plus mispredicted actions.
#[derive(Debug)]
pub struct CosmosPolicy {
    depth: usize,
    directories: HashMap<NodeId, CosmosPredictor>,
    caches: HashMap<NodeId, CosmosPredictor>,
    /// Exclusive grants issued.
    pub grants: u64,
    /// Voluntary replacements issued.
    pub replacements: u64,
}

impl CosmosPolicy {
    /// Creates a policy whose predictors use the given MHR depth (the
    /// paper's single-bit filter is always on: speculation should not
    /// flip-flop on one noisy message).
    pub fn new(depth: usize) -> Self {
        CosmosPolicy {
            depth,
            directories: HashMap::new(),
            caches: HashMap::new(),
            grants: 0,
            replacements: 0,
        }
    }

    fn directory(&mut self, home: NodeId) -> &mut CosmosPredictor {
        let depth = self.depth;
        self.directories
            .entry(home)
            .or_insert_with(|| CosmosPredictor::new(depth, 1))
    }

    fn cache(&mut self, node: NodeId) -> &mut CosmosPredictor {
        let depth = self.depth;
        self.caches
            .entry(node)
            .or_insert_with(|| CosmosPredictor::new(depth, 1))
    }
}

impl SpeculationPolicy for CosmosPolicy {
    fn grant_exclusive(&mut self, home: NodeId, requester: NodeId, block: BlockAddr) -> bool {
        // The directory predictor has already observed the get_ro_request
        // (observe runs on every reception). If it now expects an
        // upgrade_request from the same requester, grant exclusive.
        let predicted = self.directory(home).predict(block);
        let fire = predicted == Some(PredTuple::new(requester, MsgType::UpgradeRequest));
        self.grants += u64::from(fire);
        fire
    }

    fn self_invalidate(&mut self, node: NodeId, block: BlockAddr) -> bool {
        // After the store, does this cache expect its copy to be recalled?
        let predicted = self.cache(node).predict(block);
        let fire = matches!(
            predicted,
            Some(PredTuple {
                mtype: MsgType::InvalRwRequest,
                ..
            })
        );
        self.replacements += u64::from(fire);
        fire
    }

    fn observe(&mut self, record: &MsgRecord) {
        let tuple = PredTuple::new(record.sender, record.mtype);
        match record.role {
            Role::Directory => self.directory(record.node).observe(record.block, tuple),
            Role::Cache => self.cache(record.node).observe(record.block, tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: usize, role: Role, block: u64, sender: usize, mtype: MsgType) -> MsgRecord {
        MsgRecord {
            time_ns: 0,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(sender),
            mtype,
            iteration: 0,
        }
    }

    #[test]
    fn grants_after_learning_a_rmw_pattern() {
        let mut p = CosmosPolicy::new(1);
        // Train the directory at node 0: reader P1's get_ro is always
        // followed by P1's upgrade.
        for _ in 0..3 {
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::GetRoRequest));
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::UpgradeRequest));
            p.observe(&rec(0, Role::Directory, 5, 2, MsgType::InvalRwResponse));
        }
        // A new get_ro_request arrives (the machine records it first)...
        p.observe(&rec(0, Role::Directory, 5, 1, MsgType::GetRoRequest));
        // ...and the policy grants exclusive.
        assert!(p.grant_exclusive(NodeId::new(0), NodeId::new(1), BlockAddr::new(5)));
        assert_eq!(p.grants, 1);
    }

    #[test]
    fn does_not_grant_for_a_different_requester() {
        let mut p = CosmosPolicy::new(1);
        for _ in 0..3 {
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::GetRoRequest));
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::UpgradeRequest));
            p.observe(&rec(0, Role::Directory, 5, 2, MsgType::InvalRwResponse));
        }
        p.observe(&rec(0, Role::Directory, 5, 1, MsgType::GetRoRequest));
        // Prediction says P1 will upgrade; P3 asking must not be granted.
        assert!(!p.grant_exclusive(NodeId::new(0), NodeId::new(3), BlockAddr::new(5)));
    }

    #[test]
    fn self_invalidates_on_predicted_recall() {
        let mut p = CosmosPolicy::new(1);
        // Train the producer's cache: every exclusive fill is followed by
        // a recall.
        for _ in 0..3 {
            p.observe(&rec(1, Role::Cache, 7, 0, MsgType::GetRwResponse));
            p.observe(&rec(1, Role::Cache, 7, 0, MsgType::InvalRwRequest));
        }
        p.observe(&rec(1, Role::Cache, 7, 0, MsgType::GetRwResponse));
        assert!(p.self_invalidate(NodeId::new(1), BlockAddr::new(7)));
        assert_eq!(p.replacements, 1);
    }

    #[test]
    fn cold_policy_never_speculates() {
        let mut p = CosmosPolicy::new(2);
        assert!(!p.grant_exclusive(NodeId::new(0), NodeId::new(1), BlockAddr::new(1)));
        assert!(!p.self_invalidate(NodeId::new(1), BlockAddr::new(1)));
        assert_eq!(p.grants + p.replacements, 0);
    }

    #[test]
    fn agents_are_isolated() {
        let mut p = CosmosPolicy::new(1);
        // Directory 0 learns the pattern; directory 3 must not inherit it.
        for _ in 0..3 {
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::GetRoRequest));
            p.observe(&rec(0, Role::Directory, 5, 1, MsgType::UpgradeRequest));
            p.observe(&rec(0, Role::Directory, 5, 2, MsgType::InvalRwResponse));
        }
        p.observe(&rec(3, Role::Directory, 5, 1, MsgType::GetRoRequest));
        assert!(!p.grant_exclusive(NodeId::new(3), NodeId::new(1), BlockAddr::new(5)));
    }
}
