#![warn(missing_docs)]

//! # accel — prediction-accelerated coherence
//!
//! The paper measures Cosmos' accuracy *in isolation* and leaves the
//! integration into a protocol as future work ("taking a branch predictor
//! with high prediction rates and integrating it into a
//! micro-architecture to see how much it affects the bottom line", §8).
//! This crate is that next step, on the simulated machine:
//!
//! * [`CosmosPolicy`] installs one Cosmos predictor per directory and per
//!   cache in a [`simx::Machine`] and drives the two speculative actions
//!   of the paper's Table 2 that fit a trace-level protocol:
//!   - **exclusive grants** (read-modify-write prediction): when the
//!     directory predictor says a reader's next message will be an
//!     `upgrade_request`, the `get_ro_request` is answered exclusively —
//!     eliminating the upgrade round trip entirely;
//!   - **self-invalidation** (dynamic self-invalidation): when a cache
//!     predictor says the next incoming message for a freshly-written
//!     block is an `inval_rw_request`, the block is replaced to the
//!     directory immediately — turning the consumer's four-message
//!     owner-recall miss into a two-message idle-directory miss.
//! * [`directed_policy::DirectedPolicy`] does the same with the §7
//!   directed predictors, for comparison;
//! * [`ConfidentPolicy`] gates both actions behind a confidence counter,
//!   for workloads where mispredicted speculation is costly.
//! * [`SpeculatePolicy`] closes the loop on the concurrent engine: the
//!   same confidence-gated fleet additionally drives **early
//!   invalidation acks** and **speculative forwarding pushes** — the two
//!   §4 actions that *do* send extra protocol messages and need the
//!   engine's rollback machinery when wrong.
//! * [`runner`] executes a workload with and without a policy and reports
//!   messages, execution time, and the speculation outcome counters.
//!
//! Mispredictions by the grant/self-invalidate actions need no protocol
//! recovery (both move the protocol between legal states — the first
//! category of §4.3); their *cost* is the extra misses they cause, which
//! the runner's execution-time comparison captures end to end. The
//! push/early-ack actions are the second §4.3 category: a wrong push is
//! rejected by its target and rolled back by the directory (counted in
//! [`stache::RollbackTally`]), so correctness never depends on the
//! predictor being right.
//!
//! ## Example
//!
//! ```
//! use accel::{runner, CosmosPolicy};
//! use workloads::micro::ProducerConsumer;
//!
//! let make = || ProducerConsumer { blocks: 2, iterations: 15, ..Default::default() };
//! let comparison = runner::compare(
//!     &mut make(),
//!     &mut make(),
//!     || Box::new(CosmosPolicy::new(2)),
//! ).unwrap();
//! // Producer-consumer is speculation's best case: fewer messages and a
//! // faster run.
//! assert!(comparison.accelerated.messages < comparison.baseline.messages);
//! ```

pub mod confident_policy;
pub mod directed_policy;
pub mod policy;
pub mod runner;
pub mod speculate;

pub use confident_policy::ConfidentPolicy;
pub use policy::CosmosPolicy;
pub use runner::{
    audit_actions, audit_actions_chunks, compare, compare_concurrent, run_concurrent_with_policy,
    run_with_policy, ActionAudit, ActionAuditor, Comparison, RunSummary,
};
pub use speculate::SpeculatePolicy;
