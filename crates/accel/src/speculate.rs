//! The prediction-actioned policy: every §4 speculation, confidence-gated.
//!
//! [`ConfidentPolicy`](crate::ConfidentPolicy) drives the two speculations
//! the serial engine supports (exclusive grants, self-invalidation). This
//! policy is the full close-the-loop integration: it additionally arms the
//! engine's early-invalidation-ack and speculative-forward hooks, so a
//! trained Cosmos fleet *acts* on its predictions — and the rollback
//! machinery cleans up when it is wrong. The protocol stays correct
//! unconditionally; mispredictions only cost time.
//!
//! The `threshold` is an `Option`: `None` is an infinite threshold — the
//! predictors train on every message but no action ever fires. That mode
//! exists for the differential test that pins the speculative engine,
//! structurally enabled but never speculating, byte-for-byte against the
//! plain one.

use cosmos::{ConfidenceCosmos, MessagePredictor, PredTuple};
use simx::{ForwardKind, SpeculationPolicy};
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;
use trace::MsgRecord;

/// A speculation policy that arms all four protocol actions from one
/// confidence-gated Cosmos fleet (one predictor per directory and per
/// cache, as in the paper's per-node tables).
#[derive(Debug)]
pub struct SpeculatePolicy {
    depth: usize,
    /// Confidence required to act; `None` never acts (observe-only).
    threshold: Option<u8>,
    directories: HashMap<NodeId, ConfidenceCosmos>,
    caches: HashMap<NodeId, ConfidenceCosmos>,
}

impl SpeculatePolicy {
    /// Creates a policy of the given MHR depth that fires any action whose
    /// prediction has confidence ≥ `threshold`. `None` is the infinite
    /// threshold: train, never fire.
    pub fn new(depth: usize, threshold: Option<u8>) -> Self {
        SpeculatePolicy {
            depth,
            threshold,
            directories: HashMap::new(),
            caches: HashMap::new(),
        }
    }

    /// The configured threshold (`None` = observe-only).
    pub fn threshold(&self) -> Option<u8> {
        self.threshold
    }

    fn directory(&mut self, home: NodeId) -> &mut ConfidenceCosmos {
        let depth = self.depth;
        self.directories
            .entry(home)
            .or_insert_with(|| ConfidenceCosmos::new(depth, 0))
    }

    fn cache(&mut self, node: NodeId) -> &mut ConfidenceCosmos {
        let depth = self.depth;
        self.caches
            .entry(node)
            .or_insert_with(|| ConfidenceCosmos::new(depth, 0))
    }

    /// The confident prediction at `agent`, if any. The gate lives here —
    /// not in the predictor — so `threshold: None` can suppress every
    /// action while the tables keep training.
    fn confident(
        cosmos: &ConfidenceCosmos,
        threshold: Option<u8>,
        block: BlockAddr,
    ) -> Option<PredTuple> {
        let need = threshold?;
        cosmos
            .predict_with_confidence(block)
            .and_then(|(p, c)| (c >= need).then_some(p))
    }
}

impl SpeculationPolicy for SpeculatePolicy {
    fn grant_exclusive(&mut self, home: NodeId, requester: NodeId, block: BlockAddr) -> bool {
        let threshold = self.threshold;
        Self::confident(self.directory(home), threshold, block)
            == Some(PredTuple::new(requester, MsgType::UpgradeRequest))
    }

    fn self_invalidate(&mut self, node: NodeId, block: BlockAddr) -> bool {
        let threshold = self.threshold;
        matches!(
            Self::confident(self.cache(node), threshold, block),
            Some(PredTuple {
                mtype: MsgType::InvalRwRequest,
                ..
            })
        )
    }

    fn early_inval_ack(&mut self, node: NodeId, block: BlockAddr) -> bool {
        // The cache's incoming-message predictor says the next thing this
        // node hears about the block is a (read-sharer) invalidation:
        // acknowledge it before it is sent.
        let threshold = self.threshold;
        matches!(
            Self::confident(self.cache(node), threshold, block),
            Some(PredTuple {
                mtype: MsgType::InvalRoRequest,
                ..
            })
        )
    }

    fn forward_candidate(
        &mut self,
        home: NodeId,
        block: BlockAddr,
    ) -> Option<(NodeId, ForwardKind)> {
        // The directory's predictor names the next requester; push it the
        // matching copy. A predicted local re-acquisition is not worth a
        // push (the home's own stache refills without the network).
        let threshold = self.threshold;
        let p = Self::confident(self.directory(home), threshold, block)?;
        if p.sender == home {
            return None;
        }
        match p.mtype {
            MsgType::GetRoRequest => Some((p.sender, ForwardKind::Shared)),
            MsgType::GetRwRequest => Some((p.sender, ForwardKind::Exclusive)),
            _ => None,
        }
    }

    fn observe(&mut self, record: &MsgRecord) {
        let tuple = PredTuple::new(record.sender, record.mtype);
        match record.role {
            Role::Directory => self.directory(record.node).observe(record.block, tuple),
            Role::Cache => self.cache(record.node).observe(record.block, tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: usize, role: Role, block: u64, sender: usize, mtype: MsgType) -> MsgRecord {
        MsgRecord {
            time_ns: 0,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(sender),
            mtype,
            iteration: 0,
        }
    }

    /// Trains the home-0 directory predictor on a stable two-message
    /// cycle ending in `mtype` from node 1.
    fn train_directory(p: &mut SpeculatePolicy, mtype: MsgType) {
        for _ in 0..4 {
            p.observe(&rec(0, Role::Directory, 0, 2, MsgType::GetRoRequest));
            p.observe(&rec(0, Role::Directory, 0, 1, mtype));
        }
        p.observe(&rec(0, Role::Directory, 0, 2, MsgType::GetRoRequest));
    }

    #[test]
    fn forwards_to_the_predicted_reader_and_writer() {
        let mut p = SpeculatePolicy::new(1, Some(2));
        train_directory(&mut p, MsgType::GetRwRequest);
        assert_eq!(
            p.forward_candidate(NodeId::new(0), BlockAddr::new(0)),
            Some((NodeId::new(1), ForwardKind::Exclusive))
        );
        let mut p = SpeculatePolicy::new(1, Some(2));
        train_directory(&mut p, MsgType::GetRoRequest);
        // After GetRoRequest from 2 the PHT predicts GetRoRequest from 1.
        assert_eq!(
            p.forward_candidate(NodeId::new(0), BlockAddr::new(0)),
            Some((NodeId::new(1), ForwardKind::Shared))
        );
    }

    #[test]
    fn never_pushes_to_the_home_itself() {
        let mut p = SpeculatePolicy::new(1, Some(0));
        for _ in 0..3 {
            p.observe(&rec(0, Role::Directory, 0, 1, MsgType::GetRoRequest));
            p.observe(&rec(0, Role::Directory, 0, 0, MsgType::GetRwRequest));
        }
        p.observe(&rec(0, Role::Directory, 0, 1, MsgType::GetRoRequest));
        assert_eq!(p.forward_candidate(NodeId::new(0), BlockAddr::new(0)), None);
    }

    #[test]
    fn early_ack_fires_on_a_predicted_sharer_invalidation() {
        let mut p = SpeculatePolicy::new(1, Some(1));
        for _ in 0..3 {
            p.observe(&rec(2, Role::Cache, 0, 0, MsgType::GetRoResponse));
            p.observe(&rec(2, Role::Cache, 0, 0, MsgType::InvalRoRequest));
        }
        p.observe(&rec(2, Role::Cache, 0, 0, MsgType::GetRoResponse));
        assert!(p.early_inval_ack(NodeId::new(2), BlockAddr::new(0)));
        // A predicted owner-invalidation arms self-invalidate instead.
        assert!(!p.self_invalidate(NodeId::new(2), BlockAddr::new(0)));
    }

    #[test]
    fn infinite_threshold_trains_but_never_acts() {
        let mut p = SpeculatePolicy::new(1, None);
        train_directory(&mut p, MsgType::GetRwRequest);
        for _ in 0..3 {
            p.observe(&rec(2, Role::Cache, 0, 0, MsgType::GetRoResponse));
            p.observe(&rec(2, Role::Cache, 0, 0, MsgType::InvalRoRequest));
        }
        p.observe(&rec(2, Role::Cache, 0, 0, MsgType::GetRoResponse));
        // The tables hold confident predictions...
        assert!(p
            .directory(NodeId::new(0))
            .predict_with_confidence(BlockAddr::new(0))
            .is_some());
        // ...but no action fires.
        assert!(!p.grant_exclusive(NodeId::new(0), NodeId::new(1), BlockAddr::new(0)));
        assert!(!p.early_inval_ack(NodeId::new(2), BlockAddr::new(0)));
        assert!(!p.self_invalidate(NodeId::new(2), BlockAddr::new(0)));
        assert_eq!(p.forward_candidate(NodeId::new(0), BlockAddr::new(0)), None);
    }
}
