//! Speculation driven by the §7 directed predictors, for comparison with
//! [`CosmosPolicy`](crate::CosmosPolicy).

use cosmos::directed::{DsiPredictor, RmwPredictor};
use cosmos::{MessagePredictor, PredTuple};
use simx::SpeculationPolicy;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;
use trace::MsgRecord;

/// The classical pairing: Origin-style read-modify-write prediction at
/// directories, dynamic self-invalidation at caches — each wired to the
/// action it was designed for.
#[derive(Debug)]
pub struct DirectedPolicy {
    directories: HashMap<NodeId, RmwPredictor>,
    caches: HashMap<NodeId, DsiPredictor>,
    /// Exclusive grants issued.
    pub grants: u64,
    /// Voluntary replacements issued.
    pub replacements: u64,
}

impl DirectedPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        DirectedPolicy {
            directories: HashMap::new(),
            caches: HashMap::new(),
            grants: 0,
            replacements: 0,
        }
    }
}

impl Default for DirectedPolicy {
    fn default() -> Self {
        DirectedPolicy::new()
    }
}

impl SpeculationPolicy for DirectedPolicy {
    fn grant_exclusive(&mut self, home: NodeId, requester: NodeId, block: BlockAddr) -> bool {
        let p = self
            .directories
            .entry(home)
            .or_insert_with(|| RmwPredictor::new(Role::Directory));
        let fire = p.predict(block) == Some(PredTuple::new(requester, MsgType::UpgradeRequest));
        self.grants += u64::from(fire);
        fire
    }

    fn self_invalidate(&mut self, node: NodeId, block: BlockAddr) -> bool {
        let p = self
            .caches
            .entry(node)
            .or_insert_with(|| DsiPredictor::new(Role::Cache));
        let fire = matches!(
            p.predict(block),
            Some(PredTuple {
                mtype: MsgType::InvalRwRequest,
                ..
            })
        );
        self.replacements += u64::from(fire);
        fire
    }

    fn observe(&mut self, record: &MsgRecord) {
        let tuple = PredTuple::new(record.sender, record.mtype);
        match record.role {
            Role::Directory => self
                .directories
                .entry(record.node)
                .or_insert_with(|| RmwPredictor::new(Role::Directory))
                .observe(record.block, tuple),
            Role::Cache => self
                .caches
                .entry(record.node)
                .or_insert_with(|| DsiPredictor::new(Role::Cache))
                .observe(record.block, tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_grant_fires_unconditionally_after_any_read() {
        // The directed RMW predictor always expects an upgrade after a
        // read — the Origin's bet, right or wrong.
        let mut p = DirectedPolicy::new();
        p.observe(&MsgRecord {
            time_ns: 0,
            node: NodeId::new(0),
            role: Role::Directory,
            block: BlockAddr::new(1),
            sender: NodeId::new(2),
            mtype: MsgType::GetRoRequest,
            iteration: 0,
        });
        assert!(p.grant_exclusive(NodeId::new(0), NodeId::new(2), BlockAddr::new(1)));
        assert!(!p.grant_exclusive(NodeId::new(0), NodeId::new(3), BlockAddr::new(1)));
    }

    #[test]
    fn dsi_fires_after_learning_the_producer_loop() {
        let mut p = DirectedPolicy::new();
        p.observe(&MsgRecord {
            time_ns: 0,
            node: NodeId::new(1),
            role: Role::Cache,
            block: BlockAddr::new(7),
            sender: NodeId::new(0),
            mtype: MsgType::GetRwResponse,
            iteration: 0,
        });
        assert!(p.self_invalidate(NodeId::new(1), BlockAddr::new(7)));
    }
}
