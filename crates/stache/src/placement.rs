//! Round-robin page placement (paper §5.1).
//!
//! Stache allocates pages round-robin across the nodes: if page `X` is
//! allocated to node 10, page `X + 1` goes to node 11. The owner of a page
//! is its directory, and directory pages double as cache pages for the local
//! node, so local accesses generate no cache↔directory messages.

use crate::config::ProtocolConfig;
use crate::ids::{BlockAddr, NodeId, PageId};

/// The home (directory) node for a page.
///
/// ```
/// use stache::placement::home_of_page;
/// use stache::{NodeId, PageId};
/// assert_eq!(home_of_page(PageId::new(0), 16), NodeId::new(0));
/// assert_eq!(home_of_page(PageId::new(17), 16), NodeId::new(1));
/// ```
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn home_of_page(page: PageId, nodes: usize) -> NodeId {
    assert!(nodes > 0, "a machine needs at least one node");
    NodeId::new((page.number() % nodes as u64) as usize)
}

/// The home (directory) node for a block, under a protocol configuration.
pub fn home_of_block(block: BlockAddr, cfg: &ProtocolConfig) -> NodeId {
    home_of_page(block.page(cfg.blocks_per_page()), cfg.nodes)
}

/// Picks a block address on a page homed at `home`, useful for workload
/// generators that want data placed on a specific node.
///
/// `page_slot` selects which of `home`'s pages to use (0 = first page homed
/// there), and `offset` the block within the page.
///
/// # Panics
///
/// Panics if `offset` is not within the page or `home` is out of range.
pub fn block_homed_at(
    home: NodeId,
    page_slot: u64,
    offset: u64,
    cfg: &ProtocolConfig,
) -> BlockAddr {
    let bpp = cfg.blocks_per_page();
    assert!(offset < bpp, "offset {offset} outside page of {bpp} blocks");
    assert!(home.index() < cfg.nodes, "home node out of range");
    let page = page_slot * cfg.nodes as u64 + home.index() as u64;
    BlockAddr::new(page * bpp + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_consecutive() {
        for p in 0..64u64 {
            let h = home_of_page(PageId::new(p), 16);
            let h_next = home_of_page(PageId::new(p + 1), 16);
            assert_eq!((h.index() + 1) % 16, h_next.index());
        }
    }

    #[test]
    fn block_homed_at_round_trips() {
        let cfg = ProtocolConfig::paper();
        for node in 0..cfg.nodes {
            for slot in 0..4 {
                for offset in [0, 1, 63] {
                    let b = block_homed_at(NodeId::new(node), slot, offset, &cfg);
                    assert_eq!(home_of_block(b, &cfg), NodeId::new(node));
                }
            }
        }
    }

    #[test]
    fn distinct_slots_give_distinct_pages() {
        let cfg = ProtocolConfig::paper();
        let a = block_homed_at(NodeId::new(3), 0, 0, &cfg);
        let b = block_homed_at(NodeId::new(3), 1, 0, &cfg);
        assert_ne!(a.page(cfg.blocks_per_page()), b.page(cfg.blocks_per_page()));
    }

    #[test]
    #[should_panic(expected = "outside page")]
    fn offset_outside_page_rejected() {
        let cfg = ProtocolConfig::paper();
        let _ = block_homed_at(NodeId::new(0), 0, 64, &cfg);
    }
}
