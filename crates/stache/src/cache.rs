//! Cache-side finite state machine.
//!
//! A block in a Stache cache is in one of three quiescent states —
//! invalid, shared, exclusive — plus the transient states the paper's
//! Figure 1 labels "I to S", "I to E", and "S to E" while a request is
//! outstanding at the directory.
//!
//! The two entry points are pure transition functions:
//!
//! * [`on_processor_op`] — the processor issues a load or store;
//! * [`on_message`] — a message from the directory arrives.

use crate::error::ProtocolError;
use crate::msg::{MsgType, ProcOp, Role};
use std::fmt;

/// Per-block cache state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CacheState {
    /// No valid copy.
    #[default]
    Invalid,
    /// Read-only copy.
    Shared,
    /// Read-write copy (sole owner).
    Exclusive,
    /// Read miss outstanding (`get_ro_request` sent).
    IToS,
    /// Write miss outstanding (`get_rw_request` sent).
    IToE,
    /// Upgrade outstanding (`upgrade_request` sent).
    SToE,
}

impl CacheState {
    /// Whether the state is quiescent (no transaction in flight).
    pub fn is_stable(self) -> bool {
        matches!(
            self,
            CacheState::Invalid | CacheState::Shared | CacheState::Exclusive
        )
    }

    /// Whether a load can be satisfied without coherence action.
    pub fn readable(self) -> bool {
        matches!(self, CacheState::Shared | CacheState::Exclusive)
    }

    /// Whether a store can be satisfied without coherence action.
    pub fn writable(self) -> bool {
        matches!(self, CacheState::Exclusive)
    }

    fn name(self) -> &'static str {
        match self {
            CacheState::Invalid => "Invalid",
            CacheState::Shared => "Shared",
            CacheState::Exclusive => "Exclusive",
            CacheState::IToS => "IToS",
            CacheState::IToE => "IToE",
            CacheState::SToE => "SToE",
        }
    }

    /// Lowercase snake-case name, for metric paths and trace events.
    pub fn short_name(self) -> &'static str {
        match self {
            CacheState::Invalid => "invalid",
            CacheState::Shared => "shared",
            CacheState::Exclusive => "exclusive",
            CacheState::IToS => "i_to_s",
            CacheState::IToE => "i_to_e",
            CacheState::SToE => "s_to_e",
        }
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the cache controller does in response to a processor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// The access hits; no coherence activity.
    Hit,
    /// Send a request of the given type to the block's directory.
    Send(MsgType),
}

/// Processor-op transition: `(state, op) -> (new state, action)`.
///
/// # Errors
///
/// Returns [`ProtocolError::BusyBlock`] if the block is in a transient
/// state — the serialized transaction engine never issues overlapping
/// operations on one block, so reaching this indicates a driver bug.
pub fn on_processor_op(
    state: CacheState,
    op: ProcOp,
) -> Result<(CacheState, CacheAction), ProtocolError> {
    use CacheState::*;
    match (state, op) {
        (Shared, ProcOp::Read) | (Exclusive, _) => Ok((state, CacheAction::Hit)),
        (Invalid, ProcOp::Read) => Ok((IToS, CacheAction::Send(MsgType::GetRoRequest))),
        (Invalid, ProcOp::Write) => Ok((IToE, CacheAction::Send(MsgType::GetRwRequest))),
        (Shared, ProcOp::Write) => Ok((SToE, CacheAction::Send(MsgType::UpgradeRequest))),
        (IToS | IToE | SToE, _) => Err(ProtocolError::BusyBlock),
    }
}

/// Incoming-message transition: `(state, message) -> (new state, reply)`.
///
/// The reply, when present, is a response the cache sends back to the
/// directory (e.g. `inval_rw_response` carrying the dirty block).
///
/// # Errors
///
/// Returns [`ProtocolError::WrongRole`] for message types a cache never
/// receives, and [`ProtocolError::UnexpectedCacheMessage`] for messages
/// with no transition from the current state.
pub fn on_message(
    state: CacheState,
    mtype: MsgType,
) -> Result<(CacheState, Option<MsgType>), ProtocolError> {
    use CacheState::*;
    use MsgType::*;
    if mtype.receiver_role() != Role::Cache {
        return Err(ProtocolError::WrongRole { mtype });
    }
    match (state, mtype) {
        (IToS, GetRoResponse) => Ok((Shared, None)),
        // A speculative exclusive grant (§4.1's read-modify-write
        // optimisation): the directory answered a shared request with an
        // exclusive copy, betting the processor will write it shortly.
        (IToS, GetRwResponse) => Ok((Exclusive, None)),
        (IToE, GetRwResponse) => Ok((Exclusive, None)),
        (SToE, UpgradeResponse) => Ok((Exclusive, None)),
        (Shared, InvalRoRequest) => Ok((Invalid, Some(InvalRoResponse))),
        // The upgrade race: this cache asked to upgrade its shared copy,
        // but another writer's invalidation won at the directory. The copy
        // is lost; the outstanding upgrade effectively becomes a write
        // miss (the directory converts it), so wait in I-to-E. Only the
        // concurrent engine can produce this; the serialized engine never
        // overlaps transactions on one block.
        (SToE, InvalRoRequest) => Ok((IToE, Some(InvalRoResponse))),
        (Exclusive, InvalRwRequest) => Ok((Invalid, Some(InvalRwResponse))),
        (Exclusive, DowngradeRequest) => Ok((Shared, Some(DowngradeResponse))),
        _ => Err(ProtocolError::UnexpectedCacheMessage {
            state: state.name(),
            mtype,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_do_not_change_state() {
        assert_eq!(
            on_processor_op(CacheState::Shared, ProcOp::Read).unwrap(),
            (CacheState::Shared, CacheAction::Hit)
        );
        assert_eq!(
            on_processor_op(CacheState::Exclusive, ProcOp::Read).unwrap(),
            (CacheState::Exclusive, CacheAction::Hit)
        );
        assert_eq!(
            on_processor_op(CacheState::Exclusive, ProcOp::Write).unwrap(),
            (CacheState::Exclusive, CacheAction::Hit)
        );
    }

    #[test]
    fn misses_send_the_right_requests() {
        let (s, a) = on_processor_op(CacheState::Invalid, ProcOp::Read).unwrap();
        assert_eq!(
            (s, a),
            (CacheState::IToS, CacheAction::Send(MsgType::GetRoRequest))
        );
        let (s, a) = on_processor_op(CacheState::Invalid, ProcOp::Write).unwrap();
        assert_eq!(
            (s, a),
            (CacheState::IToE, CacheAction::Send(MsgType::GetRwRequest))
        );
        let (s, a) = on_processor_op(CacheState::Shared, ProcOp::Write).unwrap();
        assert_eq!(
            (s, a),
            (CacheState::SToE, CacheAction::Send(MsgType::UpgradeRequest))
        );
    }

    #[test]
    fn transient_states_reject_processor_ops() {
        for s in [CacheState::IToS, CacheState::IToE, CacheState::SToE] {
            assert_eq!(
                on_processor_op(s, ProcOp::Read),
                Err(ProtocolError::BusyBlock)
            );
            assert!(!s.is_stable());
        }
    }

    #[test]
    fn responses_complete_transactions() {
        assert_eq!(
            on_message(CacheState::IToS, MsgType::GetRoResponse).unwrap(),
            (CacheState::Shared, None)
        );
        assert_eq!(
            on_message(CacheState::IToE, MsgType::GetRwResponse).unwrap(),
            (CacheState::Exclusive, None)
        );
        assert_eq!(
            on_message(CacheState::SToE, MsgType::UpgradeResponse).unwrap(),
            (CacheState::Exclusive, None)
        );
    }

    #[test]
    fn invalidations_reply_and_invalidate() {
        assert_eq!(
            on_message(CacheState::Shared, MsgType::InvalRoRequest).unwrap(),
            (CacheState::Invalid, Some(MsgType::InvalRoResponse))
        );
        assert_eq!(
            on_message(CacheState::Exclusive, MsgType::InvalRwRequest).unwrap(),
            (CacheState::Invalid, Some(MsgType::InvalRwResponse))
        );
    }

    #[test]
    fn upgrade_race_demotes_to_write_miss() {
        // SToE + inval_ro_request: the copy is gone; keep waiting as a
        // write miss and acknowledge the invalidation.
        assert_eq!(
            on_message(CacheState::SToE, MsgType::InvalRoRequest).unwrap(),
            (CacheState::IToE, Some(MsgType::InvalRoResponse))
        );
        // The converted grant then completes the write.
        assert_eq!(
            on_message(CacheState::IToE, MsgType::GetRwResponse).unwrap(),
            (CacheState::Exclusive, None)
        );
    }

    #[test]
    fn downgrade_moves_exclusive_to_shared() {
        assert_eq!(
            on_message(CacheState::Exclusive, MsgType::DowngradeRequest).unwrap(),
            (CacheState::Shared, Some(MsgType::DowngradeResponse))
        );
    }

    #[test]
    fn directory_messages_are_rejected_by_role() {
        assert_eq!(
            on_message(CacheState::Invalid, MsgType::GetRoRequest),
            Err(ProtocolError::WrongRole {
                mtype: MsgType::GetRoRequest
            })
        );
    }

    #[test]
    fn stray_messages_are_rejected() {
        assert!(matches!(
            on_message(CacheState::Invalid, MsgType::UpgradeResponse),
            Err(ProtocolError::UnexpectedCacheMessage { .. })
        ));
        assert!(matches!(
            on_message(CacheState::Shared, MsgType::InvalRwRequest),
            Err(ProtocolError::UnexpectedCacheMessage { .. })
        ));
        assert!(matches!(
            on_message(CacheState::Invalid, MsgType::DowngradeRequest),
            Err(ProtocolError::UnexpectedCacheMessage { .. })
        ));
    }

    #[test]
    fn readable_writable_predicates() {
        assert!(CacheState::Shared.readable());
        assert!(CacheState::Exclusive.readable());
        assert!(!CacheState::Invalid.readable());
        assert!(CacheState::Exclusive.writable());
        assert!(!CacheState::Shared.writable());
    }

    /// Paper Figure 1(b): processor one's store to a block exclusive in
    /// processor two, traced as a pair of per-cache state walks.
    #[test]
    fn figure_one_state_walk() {
        // Processor one: I --store--> IToE --get_rw_response--> E.
        let (s1, a) = on_processor_op(CacheState::Invalid, ProcOp::Write).unwrap();
        assert_eq!(a, CacheAction::Send(MsgType::GetRwRequest));
        let (s1, _) = on_message(s1, MsgType::GetRwResponse).unwrap();
        assert_eq!(s1, CacheState::Exclusive);

        // Processor two: E --inval_rw_request--> I, replying with the block.
        let (s2, reply) = on_message(CacheState::Exclusive, MsgType::InvalRwRequest).unwrap();
        assert_eq!(s2, CacheState::Invalid);
        assert_eq!(reply, Some(MsgType::InvalRwResponse));
    }
}
