//! Directory-side finite state machine.
//!
//! A full-map directory entry records whether a block is idle, shared by a
//! set of caches, or exclusive in one cache. Requests from caches produce a
//! [`DirOutcome`]: possibly a set of invalidation/downgrade requests to
//! current holders, then a reply granting the requested access.
//!
//! The home node's own copy is tracked in the entry like any other node's
//! (which keeps the single-writer invariant uniform); the simulation layer
//! suppresses *messages* to and from the home, because Stache's directory
//! pages double as local cache pages (§5.1).
//!
//! With the **half-migratory optimisation** (paper §5.1) enabled, a read
//! miss to an exclusive block *invalidates* the owner rather than
//! downgrading it, on the bet that the former owner is done with the block.

use crate::config::ProtocolConfig;
use crate::error::ProtocolError;
use crate::ids::{NodeId, NodeSet};
use crate::msg::{MsgType, ProcOp, Role};
use std::fmt;

/// Per-block directory state (the full map).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DirState {
    /// No cached copies.
    #[default]
    Idle,
    /// Read-only copies at the given nodes (never empty).
    Shared(NodeSet),
    /// A read-write copy at one node.
    Exclusive(NodeId),
}

impl DirState {
    /// Nodes currently holding a copy.
    pub fn holders(&self) -> NodeSet {
        match self {
            DirState::Idle => NodeSet::new(),
            DirState::Shared(s) => s.clone(),
            DirState::Exclusive(o) => NodeSet::singleton(*o),
        }
    }

    /// The exclusive owner, if any.
    pub fn owner(&self) -> Option<NodeId> {
        match self {
            DirState::Exclusive(o) => Some(*o),
            _ => None,
        }
    }

    /// Whether `node` may read the block without coherence action
    /// (used for the home node's local accesses).
    pub fn node_readable(&self, node: NodeId) -> bool {
        match self {
            DirState::Idle => false,
            DirState::Shared(s) => s.contains(node),
            DirState::Exclusive(o) => *o == node,
        }
    }

    /// Whether `node` may write the block without coherence action.
    pub fn node_writable(&self, node: NodeId) -> bool {
        matches!(self, DirState::Exclusive(o) if *o == node)
    }

    /// Lowercase kind name (holder sets elided), for metric paths and
    /// trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            DirState::Idle => "idle",
            DirState::Shared(_) => "shared",
            DirState::Exclusive(_) => "exclusive",
        }
    }
}

impl fmt::Display for DirState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirState::Idle => write!(f, "Idle"),
            DirState::Shared(s) => write!(f, "Shared{s}"),
            DirState::Exclusive(o) => write!(f, "Exclusive({o})"),
        }
    }
}

/// The directory's plan for servicing one request.
///
/// `holder_requests` are sent first (invalidations or downgrades to current
/// holders); once all their responses have been collected, `reply` (if any —
/// local accesses by the home node need no reply message) is sent to the
/// requester, and the entry moves to `next`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOutcome {
    /// Invalidation/downgrade requests to current holders, in node order.
    pub holder_requests: Vec<(NodeId, MsgType)>,
    /// The granting reply to the requester, if the requester is remote.
    pub reply: Option<MsgType>,
    /// The entry's state after the transaction completes.
    pub next: DirState,
}

impl DirOutcome {
    fn grant(reply: MsgType, next: DirState) -> Self {
        DirOutcome {
            holder_requests: Vec::new(),
            reply: Some(reply),
            next,
        }
    }
}

/// Handles a request message from cache `from` (remote; `from != home`).
///
/// Returns the directory's service plan. `home` is the directory's own
/// node; its local copy is tracked in the entry but never receives
/// messages, so invalidating it is state-only (it simply drops out of
/// `holder_requests`).
///
/// # Errors
///
/// Returns [`ProtocolError::WrongRole`] for messages a directory never
/// receives and [`ProtocolError::InconsistentDirectory`] for requests that
/// contradict the entry (e.g. an upgrade from a non-sharer).
pub fn handle_request(
    state: &DirState,
    home: NodeId,
    from: NodeId,
    mtype: MsgType,
    cfg: &ProtocolConfig,
) -> Result<DirOutcome, ProtocolError> {
    if mtype.receiver_role() != Role::Directory {
        return Err(ProtocolError::WrongRole { mtype });
    }
    let inconsistent = || ProtocolError::InconsistentDirectory {
        state: state.to_string(),
        from,
        mtype,
    };
    match mtype {
        MsgType::GetRoRequest => match state {
            DirState::Idle => Ok(DirOutcome::grant(
                MsgType::GetRoResponse,
                DirState::Shared(NodeSet::singleton(from)),
            )),
            DirState::Shared(s) => {
                if s.contains(from) {
                    return Err(inconsistent());
                }
                let mut next = s.clone();
                next.insert(from);
                Ok(DirOutcome::grant(
                    MsgType::GetRoResponse,
                    DirState::Shared(next),
                ))
            }
            DirState::Exclusive(owner) => {
                if *owner == from {
                    return Err(inconsistent());
                }
                let (req, next) = if cfg.half_migratory {
                    // Half-migratory: invalidate the owner outright; only the
                    // reader keeps a copy.
                    (
                        MsgType::InvalRwRequest,
                        DirState::Shared(NodeSet::singleton(from)),
                    )
                } else {
                    // DASH-like: downgrade the owner; both keep shared copies.
                    let mut s = NodeSet::singleton(from);
                    s.insert(*owner);
                    (MsgType::DowngradeRequest, DirState::Shared(s))
                };
                Ok(DirOutcome {
                    holder_requests: holder_msgs([(*owner, req)], home),
                    reply: Some(MsgType::GetRoResponse),
                    next,
                })
            }
        },
        MsgType::GetRwRequest => match state {
            DirState::Idle => Ok(DirOutcome::grant(
                MsgType::GetRwResponse,
                DirState::Exclusive(from),
            )),
            DirState::Shared(s) => {
                if s.contains(from) {
                    return Err(inconsistent());
                }
                Ok(DirOutcome {
                    holder_requests: holder_msgs(
                        s.iter().map(|n| (n, MsgType::InvalRoRequest)),
                        home,
                    ),
                    reply: Some(MsgType::GetRwResponse),
                    next: DirState::Exclusive(from),
                })
            }
            DirState::Exclusive(owner) => {
                if *owner == from {
                    return Err(inconsistent());
                }
                Ok(DirOutcome {
                    holder_requests: holder_msgs([(*owner, MsgType::InvalRwRequest)], home),
                    reply: Some(MsgType::GetRwResponse),
                    next: DirState::Exclusive(from),
                })
            }
        },
        MsgType::UpgradeRequest => match state {
            DirState::Shared(s) if s.contains(from) => Ok(DirOutcome {
                holder_requests: holder_msgs(
                    s.iter()
                        .filter(|&n| n != from)
                        .map(|n| (n, MsgType::InvalRoRequest)),
                    home,
                ),
                reply: Some(MsgType::UpgradeResponse),
                next: DirState::Exclusive(from),
            }),
            _ => Err(inconsistent()),
        },
        // Responses are absorbed by the transaction engine (it knows which
        // transaction they belong to); they carry no independent transition.
        MsgType::InvalRoResponse | MsgType::InvalRwResponse | MsgType::DowngradeResponse => {
            Err(inconsistent())
        }
        _ => unreachable!("receiver_role filtered cache-bound types"),
    }
}

/// Handles a *local* access by the home node itself. No request or reply
/// messages are generated, but remote holders may still need invalidating.
///
/// Returns `None` if the access needs no coherence action (the home already
/// has sufficient rights), otherwise the plan (with `reply: None`).
pub fn handle_local(
    state: &DirState,
    home: NodeId,
    op: ProcOp,
    cfg: &ProtocolConfig,
) -> Option<DirOutcome> {
    let _ = cfg; // local reads invalidate the owner in both protocol variants:
                 // Stache's directory pages are also the home's cache pages, and the
                 // half-migratory policy applies to the remote owner identically.
    match op {
        ProcOp::Read => {
            if state.node_readable(home) {
                return None;
            }
            match state {
                DirState::Idle => Some(DirOutcome {
                    holder_requests: Vec::new(),
                    reply: None,
                    next: DirState::Shared(NodeSet::singleton(home)),
                }),
                DirState::Shared(s) => {
                    let mut next = s.clone();
                    next.insert(home);
                    Some(DirOutcome {
                        holder_requests: Vec::new(),
                        reply: None,
                        next: DirState::Shared(next),
                    })
                }
                DirState::Exclusive(owner) => {
                    let (req, next) = if cfg.half_migratory {
                        (
                            MsgType::InvalRwRequest,
                            DirState::Shared(NodeSet::singleton(home)),
                        )
                    } else {
                        let mut s = NodeSet::singleton(home);
                        s.insert(*owner);
                        (MsgType::DowngradeRequest, DirState::Shared(s))
                    };
                    Some(DirOutcome {
                        holder_requests: holder_msgs([(*owner, req)], home),
                        reply: None,
                        next,
                    })
                }
            }
        }
        ProcOp::Write => {
            if state.node_writable(home) {
                return None;
            }
            let holder_requests = match state {
                DirState::Idle => Vec::new(),
                DirState::Shared(s) => holder_msgs(
                    s.iter()
                        .filter(|&n| n != home)
                        .map(|n| (n, MsgType::InvalRoRequest)),
                    home,
                ),
                DirState::Exclusive(owner) => {
                    holder_msgs([(*owner, MsgType::InvalRwRequest)], home)
                }
            };
            Some(DirOutcome {
                holder_requests,
                reply: None,
                next: DirState::Exclusive(home),
            })
        }
    }
}

/// Filters out the home node: transitions involving the home's own copy are
/// local and generate no messages.
fn holder_msgs(
    targets: impl IntoIterator<Item = (NodeId, MsgType)>,
    home: NodeId,
) -> Vec<(NodeId, MsgType)> {
    targets.into_iter().filter(|(n, _)| *n != home).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    fn no_hm() -> ProtocolConfig {
        ProtocolConfig {
            half_migratory: false,
            ..ProtocolConfig::paper()
        }
    }

    const H: usize = 0; // home node for tests

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn read_miss_on_idle_grants_shared() {
        let out =
            handle_request(&DirState::Idle, n(H), n(1), MsgType::GetRoRequest, &cfg()).unwrap();
        assert!(out.holder_requests.is_empty());
        assert_eq!(out.reply, Some(MsgType::GetRoResponse));
        assert_eq!(out.next, DirState::Shared(NodeSet::singleton(n(1))));
    }

    #[test]
    fn read_miss_on_shared_adds_sharer() {
        let s = DirState::Shared(NodeSet::singleton(n(1)));
        let out = handle_request(&s, n(H), n(2), MsgType::GetRoRequest, &cfg()).unwrap();
        assert!(out.holder_requests.is_empty());
        let expected: NodeSet = [n(1), n(2)].into_iter().collect();
        assert_eq!(out.next, DirState::Shared(expected));
    }

    #[test]
    fn half_migratory_read_miss_invalidates_owner() {
        let s = DirState::Exclusive(n(2));
        let out = handle_request(&s, n(H), n(1), MsgType::GetRoRequest, &cfg()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::InvalRwRequest)]);
        assert_eq!(out.reply, Some(MsgType::GetRoResponse));
        // Only the reader keeps a copy: the half-migratory bet.
        assert_eq!(out.next, DirState::Shared(NodeSet::singleton(n(1))));
    }

    #[test]
    fn dash_style_read_miss_downgrades_owner() {
        let s = DirState::Exclusive(n(2));
        let out = handle_request(&s, n(H), n(1), MsgType::GetRoRequest, &no_hm()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::DowngradeRequest)]);
        let expected: NodeSet = [n(1), n(2)].into_iter().collect();
        assert_eq!(out.next, DirState::Shared(expected));
    }

    #[test]
    fn write_miss_invalidates_all_sharers() {
        let s = DirState::Shared([n(1), n(2), n(3)].into_iter().collect());
        let out = handle_request(&s, n(H), n(4), MsgType::GetRwRequest, &cfg()).unwrap();
        assert_eq!(
            out.holder_requests,
            vec![
                (n(1), MsgType::InvalRoRequest),
                (n(2), MsgType::InvalRoRequest),
                (n(3), MsgType::InvalRoRequest),
            ]
        );
        assert_eq!(out.reply, Some(MsgType::GetRwResponse));
        assert_eq!(out.next, DirState::Exclusive(n(4)));
    }

    #[test]
    fn write_miss_skips_home_sharer_message() {
        // The home's own copy is invalidated silently.
        let s = DirState::Shared([n(H), n(2)].into_iter().collect());
        let out = handle_request(&s, n(H), n(3), MsgType::GetRwRequest, &cfg()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::InvalRoRequest)]);
        assert_eq!(out.next, DirState::Exclusive(n(3)));
    }

    #[test]
    fn write_miss_on_exclusive_forwards_invalidation() {
        let s = DirState::Exclusive(n(2));
        let out = handle_request(&s, n(H), n(1), MsgType::GetRwRequest, &cfg()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::InvalRwRequest)]);
        assert_eq!(out.next, DirState::Exclusive(n(1)));
    }

    #[test]
    fn upgrade_invalidates_other_sharers_only() {
        let s = DirState::Shared([n(1), n(2)].into_iter().collect());
        let out = handle_request(&s, n(H), n(1), MsgType::UpgradeRequest, &cfg()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::InvalRoRequest)]);
        assert_eq!(out.reply, Some(MsgType::UpgradeResponse));
        assert_eq!(out.next, DirState::Exclusive(n(1)));
    }

    #[test]
    fn upgrade_by_sole_sharer_needs_no_invalidations() {
        let s = DirState::Shared(NodeSet::singleton(n(1)));
        let out = handle_request(&s, n(H), n(1), MsgType::UpgradeRequest, &cfg()).unwrap();
        assert!(out.holder_requests.is_empty());
        assert_eq!(out.next, DirState::Exclusive(n(1)));
    }

    #[test]
    fn upgrade_from_non_sharer_is_inconsistent() {
        let s = DirState::Shared(NodeSet::singleton(n(1)));
        assert!(matches!(
            handle_request(&s, n(H), n(2), MsgType::UpgradeRequest, &cfg()),
            Err(ProtocolError::InconsistentDirectory { .. })
        ));
    }

    #[test]
    fn duplicate_requests_are_inconsistent() {
        let s = DirState::Shared(NodeSet::singleton(n(1)));
        assert!(handle_request(&s, n(H), n(1), MsgType::GetRoRequest, &cfg()).is_err());
        let e = DirState::Exclusive(n(1));
        assert!(handle_request(&e, n(H), n(1), MsgType::GetRoRequest, &cfg()).is_err());
        assert!(handle_request(&e, n(H), n(1), MsgType::GetRwRequest, &cfg()).is_err());
    }

    #[test]
    fn cache_bound_types_rejected_by_role() {
        assert_eq!(
            handle_request(&DirState::Idle, n(H), n(1), MsgType::GetRoResponse, &cfg()),
            Err(ProtocolError::WrongRole {
                mtype: MsgType::GetRoResponse
            })
        );
    }

    #[test]
    fn local_read_hit_needs_no_action() {
        let s = DirState::Shared(NodeSet::singleton(n(H)));
        assert_eq!(handle_local(&s, n(H), ProcOp::Read, &cfg()), None);
        let e = DirState::Exclusive(n(H));
        assert_eq!(handle_local(&e, n(H), ProcOp::Read, &cfg()), None);
        assert_eq!(handle_local(&e, n(H), ProcOp::Write, &cfg()), None);
    }

    #[test]
    fn local_read_of_remote_exclusive_invalidates_owner() {
        let s = DirState::Exclusive(n(2));
        let out = handle_local(&s, n(H), ProcOp::Read, &cfg()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::InvalRwRequest)]);
        assert_eq!(out.reply, None);
        assert_eq!(out.next, DirState::Shared(NodeSet::singleton(n(H))));
    }

    #[test]
    fn local_read_without_half_migratory_downgrades() {
        let s = DirState::Exclusive(n(2));
        let out = handle_local(&s, n(H), ProcOp::Read, &no_hm()).unwrap();
        assert_eq!(out.holder_requests, vec![(n(2), MsgType::DowngradeRequest)]);
        let expected: NodeSet = [n(H), n(2)].into_iter().collect();
        assert_eq!(out.next, DirState::Shared(expected));
    }

    #[test]
    fn local_write_invalidates_remote_sharers() {
        let s = DirState::Shared([n(H), n(2), n(5)].into_iter().collect());
        let out = handle_local(&s, n(H), ProcOp::Write, &cfg()).unwrap();
        assert_eq!(
            out.holder_requests,
            vec![
                (n(2), MsgType::InvalRoRequest),
                (n(5), MsgType::InvalRoRequest)
            ]
        );
        assert_eq!(out.next, DirState::Exclusive(n(H)));
    }

    #[test]
    fn local_write_on_idle_is_silent() {
        let out = handle_local(&DirState::Idle, n(H), ProcOp::Write, &cfg()).unwrap();
        assert!(out.holder_requests.is_empty());
        assert_eq!(out.next, DirState::Exclusive(n(H)));
    }

    #[test]
    fn dir_state_accessors() {
        let s = DirState::Shared([n(1), n(2)].into_iter().collect());
        assert_eq!(s.holders().len(), 2);
        assert_eq!(s.owner(), None);
        assert!(s.node_readable(n(1)));
        assert!(!s.node_readable(n(3)));
        assert!(!s.node_writable(n(1)));
        let e = DirState::Exclusive(n(1));
        assert_eq!(e.owner(), Some(n(1)));
        assert!(e.node_writable(n(1)));
        assert!(!e.node_writable(n(2)));
        assert!(DirState::Idle.holders().is_empty());
    }
}
