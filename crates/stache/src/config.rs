//! Protocol configuration.

/// Static configuration of the Stache protocol instance.
///
/// Defaults follow the paper: 16 nodes (Table 3), 64-byte blocks (Table 3),
/// 4 KiB pages, and the half-migratory optimisation enabled (§5.1).
///
/// ```
/// use stache::ProtocolConfig;
/// let cfg = ProtocolConfig::default();
/// assert_eq!(cfg.nodes, 16);
/// assert_eq!(cfg.blocks_per_page(), 64);
/// assert!(cfg.half_migratory);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    /// Number of single-processor nodes.
    pub nodes: usize,
    /// Cache block size in bytes.
    pub block_size: usize,
    /// Page size in bytes (the unit of home placement).
    pub page_size: usize,
    /// Whether the directory uses the half-migratory optimisation: on a
    /// read or write miss to a block held exclusive elsewhere, the owner is
    /// asked to *invalidate* its copy rather than downgrade it to shared
    /// (paper §5.1). Disabling it makes the protocol DASH-like: read misses
    /// downgrade the owner instead.
    pub half_migratory: bool,
    /// Limited-pointer directory organisation (Dir_i B, in the vein of the
    /// LimitLESS work the paper cites in §3.7): `Some(i)` tracks at most
    /// `i` sharers precisely; once a block's sharer count exceeds `i` the
    /// entry *overflows*, and the next write must broadcast invalidations
    /// to every node (each acknowledges, cached copy or not). `None` is
    /// the paper's full-map directory.
    pub limited_pointers: Option<usize>,
}

impl ProtocolConfig {
    /// Configuration matching the paper's Table 3 machine.
    pub fn paper() -> Self {
        ProtocolConfig {
            nodes: 16,
            block_size: 64,
            page_size: 4096,
            half_migratory: true,
            limited_pointers: None,
        }
    }

    /// Blocks per page, the divisor used for home placement.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or does not divide `page_size`.
    pub fn blocks_per_page(&self) -> u64 {
        assert!(self.block_size > 0, "block_size must be nonzero");
        assert!(
            self.page_size.is_multiple_of(self.block_size),
            "page_size must be a multiple of block_size"
        );
        (self.page_size / self.block_size) as u64
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_three() {
        let cfg = ProtocolConfig::paper();
        assert_eq!(cfg.nodes, 16);
        assert_eq!(cfg.block_size, 64);
        assert_eq!(cfg.page_size, 4096);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_page_size_rejected() {
        let cfg = ProtocolConfig {
            block_size: 48,
            ..ProtocolConfig::paper()
        };
        let _ = cfg.blocks_per_page();
    }
}
