#![warn(missing_docs)]

//! # stache — the Wisconsin Stache directory coherence protocol
//!
//! This crate implements the coherence-protocol substrate of the Cosmos
//! reproduction: the message vocabulary of the paper's Table 1 (plus the
//! `downgrade` pair described in Figure 8's caption), the cache-side and
//! directory-side finite state machines of a full-map, write-invalidate
//! directory protocol, and the Stache-specific policies the paper lists in
//! §5.1:
//!
//! * the **half-migratory optimisation** — a directory asks an exclusive
//!   owner to *invalidate* (not downgrade) its copy when another cache
//!   read- or write-misses on the block (configurable, see
//!   [`ProtocolConfig::half_migratory`]);
//! * **round-robin page allocation** — page *X* is homed on node
//!   `X mod N`, and the home node doubles as the directory for the page
//!   (see [`placement`]);
//! * **no replacement** — cached pages are never evicted, so predictor
//!   history for a block persists for the whole run;
//! * **local directory optimisation** — accesses by the home node to its
//!   own pages generate no cache↔directory messages.
//!
//! The state machines here are *pure*: they map `(state, event)` to
//! `(new state, actions)` and never perform I/O, which makes them easy to
//! unit- and property-test. The discrete-event machinery that turns actions
//! into timestamped messages lives in the `simx` crate.
//!
//! ## Example
//!
//! ```
//! use stache::{CacheState, MsgType, ProcOp};
//! use stache::cache::{on_processor_op, CacheAction};
//!
//! // A store to an invalid block sends get_rw_request to the directory
//! // and leaves the block in the I->E transient state (paper Figure 1).
//! let (next, action) = on_processor_op(CacheState::Invalid, ProcOp::Write).unwrap();
//! assert_eq!(next, CacheState::IToE);
//! assert_eq!(action, CacheAction::Send(MsgType::GetRwRequest));
//! ```

pub mod cache;
pub mod config;
pub mod directory;
pub mod error;
pub mod fingerprint;
pub mod ids;
pub mod invariants;
pub mod msg;
pub mod placement;
pub mod recovery;
pub mod tally;

pub use cache::CacheState;
pub use config::ProtocolConfig;
pub use directory::{DirOutcome, DirState};
pub use error::ProtocolError;
pub use ids::{BlockAddr, NodeId, NodeSet, PageId};
pub use msg::{Msg, MsgType, ProcOp, Role};
pub use recovery::{DedupFilter, RecoveryTally, RetryPolicy, RollbackTally};
pub use tally::ProtocolTally;
