//! The protocol recovery layer: timeout/retry, NAKs, and idempotent
//! delivery.
//!
//! The base Stache protocol assumes a perfect fabric — every message is
//! delivered exactly once, so the state machines in [`crate::cache`] and
//! [`crate::directory`] have no retry arcs. When the simulator's network
//! can drop, duplicate, or reorder messages (simx's fault-injection
//! layer), three recovery mechanisms close the gap:
//!
//! * **sender-side timeout/retry** ([`RetryPolicy`]) — a requester that
//!   has not been granted within a timeout retransmits its request, with
//!   capped exponential backoff between attempts;
//! * **directory NAKs** — a request that hits a busy block is bounced
//!   back with a negative acknowledgment instead of queueing without
//!   bound; the requester re-sends after a backoff. NAKs are
//!   recovery-layer *control* traffic, not part of the paper's Table 1
//!   message vocabulary, and are therefore excluded from the predictor-
//!   visible trace (the same convention §5.1 applies to barrier
//!   messages);
//! * **sequence-numbered idempotent delivery** ([`DedupFilter`]) — every
//!   transmission carries a sequence number; receivers absorb duplicates
//!   (same sequence seen twice) so a duplicated network packet or a
//!   crossed retransmission cannot double-apply a state transition.
//!
//! Everything the layer does is tallied in a [`RecoveryTally`] and
//! exported under `stache.recovery.*`. The coherence outcome is still
//! audited by the unchanged SWMR/full-map invariant checks
//! ([`crate::invariants`]) — recovery must converge to the same stable
//! states the perfect fabric reaches.

use std::collections::BTreeSet;

/// Sender-side retransmission policy: capped exponential backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission, in ns.
    pub base_timeout_ns: u64,
    /// Ceiling on the per-attempt timeout, in ns.
    pub max_timeout_ns: u64,
    /// Attempts after the original transmission before giving up.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // The paper's round trip is ~2·(60+60+40) + 100 ≈ 420 ns
        // (NI in/out on both ends, one wire hop each way, one handler);
        // 4 µs is comfortably past any legitimate reply, so a timeout
        // almost always means a genuine loss rather than a slow grant.
        RetryPolicy {
            base_timeout_ns: 4_000,
            max_timeout_ns: 64_000,
            max_retries: 16,
        }
    }
}

impl RetryPolicy {
    /// The timeout armed for transmission attempt `attempt` (0 = the
    /// original send): `base · 2^attempt`, capped at `max_timeout_ns`.
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_timeout_ns
            .saturating_mul(factor)
            .min(self.max_timeout_ns)
    }

    /// Whether another retransmission is allowed after `attempt` tries.
    pub fn can_retry(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// Total worst-case wait across every allowed attempt, in ns — the
    /// bound after which a requester declares the fabric broken.
    pub fn total_budget_ns(&self) -> u64 {
        (0..=self.max_retries)
            .map(|a| self.timeout_for(a))
            .fold(0u64, u64::saturating_add)
    }
}

/// A receiver-side duplicate filter over transmission sequence numbers.
///
/// Senders number every transmission from a monotone per-machine counter;
/// a receiver observes each arriving sequence and absorbs any it has seen
/// before. The seen-set is compacted to a low-water mark so memory stays
/// bounded no matter how long the run is: sequences below `low` are, by
/// construction, already seen.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    low: u64,
    seen: BTreeSet<u64>,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Observes one arriving sequence number. Returns `true` when the
    /// sequence is fresh (deliver the message) and `false` when it is a
    /// duplicate (absorb it).
    pub fn observe(&mut self, seq: u64) -> bool {
        if seq < self.low || !self.seen.insert(seq) {
            return false;
        }
        // Advance the low-water mark over any now-contiguous prefix.
        while self.seen.remove(&self.low) {
            self.low += 1;
        }
        true
    }

    /// Sequences retained out-of-order (bounded by the network's reorder
    /// window; 0 once delivery has caught up).
    pub fn pending(&self) -> usize {
        self.seen.len()
    }

    /// The lowest sequence number not yet known to be delivered.
    pub fn low_watermark(&self) -> u64 {
        self.low
    }
}

/// Counters and latency for everything the recovery layer did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryTally {
    /// Request timeouts that fired (each is followed by a retransmission
    /// unless the retry budget was exhausted).
    pub timeouts: u64,
    /// Requests retransmitted by their sender.
    pub retries: u64,
    /// NAKs sent by directories for requests hitting a busy block.
    pub naks_sent: u64,
    /// NAKs received by caches (and turned into backoff + re-send).
    pub naks_received: u64,
    /// Duplicate transmissions absorbed by [`DedupFilter`]s.
    pub dups_absorbed: u64,
    /// Grants re-sent by a directory for a retransmitted request whose
    /// original grant was lost (the requester was already recorded as a
    /// holder — without the recovery layer this is a protocol error).
    pub regrants: u64,
    /// Stale grants absorbed by caches already in a stable state (the
    /// retransmission raced the original grant).
    pub stale_grants_absorbed: u64,
    /// End-to-end latency of accesses that needed at least one recovery
    /// action (timeout, NAK, or retransmission), in ns.
    pub recovery_latency_ns: obs::Histogram,
}

impl RecoveryTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        RecoveryTally::default()
    }

    /// Whether any recovery action was taken at all.
    pub fn is_quiet(&self) -> bool {
        self.timeouts == 0
            && self.retries == 0
            && self.naks_sent == 0
            && self.naks_received == 0
            && self.dups_absorbed == 0
            && self.regrants == 0
            && self.stale_grants_absorbed == 0
            && self.recovery_latency_ns.count() == 0
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &RecoveryTally) {
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.retries = self.retries.saturating_add(other.retries);
        self.naks_sent = self.naks_sent.saturating_add(other.naks_sent);
        self.naks_received = self.naks_received.saturating_add(other.naks_received);
        self.dups_absorbed = self.dups_absorbed.saturating_add(other.dups_absorbed);
        self.regrants = self.regrants.saturating_add(other.regrants);
        self.stale_grants_absorbed = self
            .stale_grants_absorbed
            .saturating_add(other.stale_grants_absorbed);
        self.recovery_latency_ns.merge(&other.recovery_latency_ns);
    }

    /// Exports the tally under `stache.recovery.*`.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("stache.recovery.timeouts", self.timeouts);
        snap.counter("stache.recovery.retries", self.retries);
        snap.counter("stache.recovery.naks_sent", self.naks_sent);
        snap.counter("stache.recovery.naks_received", self.naks_received);
        snap.counter("stache.recovery.dups_absorbed", self.dups_absorbed);
        snap.counter("stache.recovery.regrants", self.regrants);
        snap.counter(
            "stache.recovery.stale_grants_absorbed",
            self.stale_grants_absorbed,
        );
        snap.histogram(
            "stache.recovery.recovery_latency_ns",
            &self.recovery_latency_ns,
        );
    }
}

/// Counters for everything the *speculation* layer did: predictions
/// turned into protocol actions, and how each bet resolved.
///
/// Speculative pushes are the only speculative action that can be
/// "wrong" at delivery time (the target may have acquired the block
/// through a demand miss while the push was in flight); a rejected push
/// is NAK'd by the target and the directory rolls its entry back, so
/// `pushes == confirmed + rolled_back` once the fabric is quiescent.
/// Early acks and self-invalidations are always safe — a wrong bet only
/// costs the speculating cache a fresh miss.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollbackTally {
    /// Speculative pushes (unsolicited grants) sent by a directory to a
    /// predicted next reader or writer.
    pub pushes: u64,
    /// Pushes accepted by the target cache (the bet paid off).
    pub confirmed: u64,
    /// Pushes rejected by the target and rolled back at the directory
    /// (the bet lost; the protocol state is as if nothing happened).
    pub rolled_back: u64,
    /// Early invalidation acknowledgments: shared copies voluntarily
    /// dropped ahead of a predicted invalidation.
    pub early_acks: u64,
}

impl RollbackTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        RollbackTally::default()
    }

    /// Whether any speculative action was taken at all.
    pub fn is_quiet(&self) -> bool {
        self.pushes == 0 && self.confirmed == 0 && self.rolled_back == 0 && self.early_acks == 0
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &RollbackTally) {
        self.pushes = self.pushes.saturating_add(other.pushes);
        self.confirmed = self.confirmed.saturating_add(other.confirmed);
        self.rolled_back = self.rolled_back.saturating_add(other.rolled_back);
        self.early_acks = self.early_acks.saturating_add(other.early_acks);
    }

    /// Exports the tally under `stache.rollback.*`.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("stache.rollback.pushes", self.pushes);
        snap.counter("stache.rollback.confirmed", self.confirmed);
        snap.counter("stache.rollback.rolled_back", self.rolled_back);
        snap.counter("stache.rollback.early_acks", self.early_acks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_tally_merges_and_exports() {
        let mut a = RollbackTally::new();
        assert!(a.is_quiet());
        a.pushes = 3;
        a.confirmed = 2;
        a.rolled_back = 1;
        let mut b = RollbackTally::new();
        b.early_acks = u64::MAX;
        b.merge(&a);
        assert_eq!(b.pushes, 3);
        assert_eq!(b.confirmed, 2);
        assert_eq!(b.rolled_back, 1);
        assert_eq!(b.early_acks, u64::MAX, "saturating merge");
        assert!(!b.is_quiet());

        let mut snap = obs::Snapshot::new();
        b.export_obs(&mut snap);
        assert!(snap
            .names()
            .iter()
            .all(|n| n.starts_with("stache.rollback.")));
        assert!(matches!(
            snap.get("stache.rollback.pushes"),
            Some(obs::MetricValue::Counter(3))
        ));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_timeout_ns: 1_000,
            max_timeout_ns: 8_000,
            max_retries: 5,
        };
        assert_eq!(p.timeout_for(0), 1_000);
        assert_eq!(p.timeout_for(1), 2_000);
        assert_eq!(p.timeout_for(2), 4_000);
        assert_eq!(p.timeout_for(3), 8_000);
        assert_eq!(p.timeout_for(4), 8_000, "capped");
        assert_eq!(p.timeout_for(200), 8_000, "huge attempts stay capped");
        assert!(p.can_retry(4));
        assert!(!p.can_retry(5));
        assert_eq!(
            p.total_budget_ns(),
            1_000 + 2_000 + 4_000 + 8_000 + 8_000 + 8_000
        );
    }

    #[test]
    fn default_policy_outlasts_a_paper_round_trip() {
        let p = RetryPolicy::default();
        // One remote transaction with a full invalidation round trip is
        // well under 4 µs on the Table 3 machine; the base timeout must
        // not fire on a healthy fabric.
        assert!(p.base_timeout_ns >= 2_000);
        assert!(p.max_timeout_ns >= p.base_timeout_ns);
        assert!(p.max_retries >= 8);
    }

    #[test]
    fn dedup_filter_absorbs_duplicates_and_reorders() {
        let mut f = DedupFilter::new();
        assert!(f.observe(0));
        assert!(!f.observe(0), "exact duplicate absorbed");
        assert!(f.observe(2), "reordered ahead of 1");
        assert!(f.observe(1));
        assert!(!f.observe(1), "duplicate behind the watermark absorbed");
        assert!(!f.observe(2));
        assert_eq!(f.low_watermark(), 3);
        assert_eq!(f.pending(), 0, "contiguous prefix compacted");
    }

    #[test]
    fn dedup_filter_memory_stays_bounded_in_order() {
        let mut f = DedupFilter::new();
        for seq in 0..100_000u64 {
            assert!(f.observe(seq));
        }
        assert_eq!(f.pending(), 0);
        assert_eq!(f.low_watermark(), 100_000);
    }

    #[test]
    fn retry_budget_is_exhausted_exactly_at_max_retries() {
        let p = RetryPolicy {
            base_timeout_ns: 100,
            max_timeout_ns: 400,
            max_retries: 3,
        };
        // Attempt numbering: 0 is the original send; retries are allowed
        // strictly below max_retries, so the last permitted retransmission
        // is attempt max_retries - 1 and the caller gives up at max_retries.
        assert!(p.can_retry(0));
        assert!(p.can_retry(2));
        assert!(!p.can_retry(3), "boundary: attempt == max_retries");
        assert!(!p.can_retry(u32::MAX), "far past the budget");
        let zero = RetryPolicy {
            max_retries: 0,
            ..p.clone()
        };
        assert!(!zero.can_retry(0), "a zero budget permits no retries");
        // total_budget covers max_retries + 1 armed timers (one per
        // transmission, including the original).
        assert_eq!(p.total_budget_ns(), 100 + 200 + 400 + 400);
    }

    #[test]
    fn backoff_saturates_past_the_shift_width() {
        // 2^attempt overflows u64 for attempt >= 64: checked_shl must fall
        // back to u64::MAX, and the saturating multiply must still land on
        // the cap instead of wrapping to a tiny timeout.
        let p = RetryPolicy {
            base_timeout_ns: 3,
            max_timeout_ns: 1_000_000,
            max_retries: u32::MAX,
        };
        assert_eq!(p.timeout_for(63), 1_000_000, "last in-range shift, capped");
        assert_eq!(p.timeout_for(64), 1_000_000, "shift width boundary");
        assert_eq!(p.timeout_for(u32::MAX), 1_000_000);
        // With a cap above every representable product the multiply itself
        // must saturate rather than wrap.
        let wide = RetryPolicy {
            base_timeout_ns: u64::MAX / 2,
            max_timeout_ns: u64::MAX,
            max_retries: u32::MAX,
        };
        assert_eq!(wide.timeout_for(2), u64::MAX);
        assert_eq!(wide.timeout_for(100), u64::MAX);
    }

    #[test]
    fn dedup_filter_absorbs_duplicates_after_compaction() {
        // The "duplicate after ack" shape: the original delivery was
        // observed, the watermark compacted past it, and a crossed
        // retransmission of the same sequence arrives much later.
        let mut f = DedupFilter::new();
        for seq in 0..10u64 {
            assert!(f.observe(seq));
        }
        assert_eq!(f.low_watermark(), 10);
        assert_eq!(f.pending(), 0, "prefix fully compacted");
        for seq in 0..10u64 {
            assert!(!f.observe(seq), "seq {seq} is behind the watermark");
        }
        assert_eq!(f.low_watermark(), 10, "stale arrivals never move it");
    }

    #[test]
    fn dedup_filter_handles_the_top_of_the_sequence_space() {
        // Sequence numbers are u64 and never wrap in practice (a sender
        // would need 2^64 transmissions); the filter must still behave at
        // the very top of the space rather than overflow.
        let mut f = DedupFilter::new();
        assert!(f.observe(u64::MAX));
        assert!(!f.observe(u64::MAX), "duplicate at the top absorbed");
        assert!(f.observe(u64::MAX - 1));
        assert!(!f.observe(u64::MAX - 1));
        // Nothing contiguous from 0 arrived, so the watermark cannot
        // advance and both live in the out-of-order set.
        assert_eq!(f.low_watermark(), 0);
        assert_eq!(f.pending(), 2);
        // In-order traffic still flows underneath.
        assert!(f.observe(0));
        assert_eq!(f.low_watermark(), 1);
        assert_eq!(f.pending(), 2);
    }

    #[test]
    fn tally_merges_and_exports() {
        let mut a = RecoveryTally::new();
        assert!(a.is_quiet());
        a.retries = 3;
        a.naks_sent = 2;
        a.recovery_latency_ns.record(500);
        let mut b = RecoveryTally::new();
        b.retries = 1;
        b.dups_absorbed = u64::MAX;
        b.merge(&a);
        assert_eq!(b.retries, 4);
        assert_eq!(b.naks_sent, 2);
        assert_eq!(b.dups_absorbed, u64::MAX, "saturating merge");
        assert!(!b.is_quiet());

        let mut snap = obs::Snapshot::new();
        b.export_obs(&mut snap);
        assert!(snap
            .names()
            .iter()
            .all(|n| n.starts_with("stache.recovery.")));
        assert!(matches!(
            snap.get("stache.recovery.retries"),
            Some(obs::MetricValue::Counter(4))
        ));
    }
}
