//! Coherence message vocabulary (paper Table 1, plus the downgrade pair).
//!
//! Message types split by *receiver*: a directory receives the request
//! messages and the invalidation/downgrade responses; a cache receives the
//! get/upgrade responses and the invalidation/downgrade requests. The
//! receiver role is intrinsic to the type ([`MsgType::receiver_role`]),
//! which is what lets a per-cache or per-directory Cosmos predictor treat
//! its incoming stream uniformly.

use crate::ids::{BlockAddr, NodeId};
use std::fmt;

/// Which protocol agent a message (or a predictor) is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Role {
    /// The per-node remote-data cache.
    Cache,
    /// The per-node directory for locally-homed pages.
    Directory,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Cache => "cache",
            Role::Directory => "directory",
        })
    }
}

/// A processor-side memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProcOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for ProcOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcOp::Read => "read",
            ProcOp::Write => "write",
        })
    }
}

/// The twelve coherence message types of a full-map write-invalidate
/// directory protocol (paper Table 1 plus `downgrade_request` /
/// `downgrade_response`, which appear when the half-migratory optimisation
/// is disabled).
///
/// The discriminants are stable and fit in 4 bits, matching the tuple
/// encoding the paper assumes in Table 7 ("12 bits for processors and
/// 4 bits for coherence message types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum MsgType {
    /// Get a block in read-only (shared) state. Received by a directory.
    GetRoRequest = 0,
    /// Get a block in read-write (exclusive) state. Received by a directory.
    GetRwRequest = 1,
    /// Upgrade a block from read-only to read-write. Received by a directory.
    UpgradeRequest = 2,
    /// Response to `inval_ro_request`. Received by a directory.
    InvalRoResponse = 3,
    /// Response to `inval_rw_request` (carries the block). Received by a directory.
    InvalRwResponse = 4,
    /// Response to `downgrade_request` (carries the block). Received by a directory.
    DowngradeResponse = 5,
    /// Response to `get_ro_request`. Received by a cache.
    GetRoResponse = 6,
    /// Response to `get_rw_request`. Received by a cache.
    GetRwResponse = 7,
    /// Response to `upgrade_request`. Received by a cache.
    UpgradeResponse = 8,
    /// Invalidate a read-only (shared) copy. Received by a cache.
    InvalRoRequest = 9,
    /// Invalidate a read-write (exclusive) copy and return the block.
    /// Received by a cache.
    InvalRwRequest = 10,
    /// Downgrade an exclusive copy to shared and return the block.
    /// Received by a cache.
    DowngradeRequest = 11,
}

/// All message types, in discriminant order.
pub const ALL_MSG_TYPES: [MsgType; 12] = [
    MsgType::GetRoRequest,
    MsgType::GetRwRequest,
    MsgType::UpgradeRequest,
    MsgType::InvalRoResponse,
    MsgType::InvalRwResponse,
    MsgType::DowngradeResponse,
    MsgType::GetRoResponse,
    MsgType::GetRwResponse,
    MsgType::UpgradeResponse,
    MsgType::InvalRoRequest,
    MsgType::InvalRwRequest,
    MsgType::DowngradeRequest,
];

impl MsgType {
    /// The 4-bit code used in the packed tuple encoding.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit code; `None` if out of range.
    pub fn from_code(code: u8) -> Option<Self> {
        ALL_MSG_TYPES.get(code as usize).copied()
    }

    /// Which agent *receives* this message type.
    pub fn receiver_role(self) -> Role {
        use MsgType::*;
        match self {
            GetRoRequest | GetRwRequest | UpgradeRequest | InvalRoResponse | InvalRwResponse
            | DowngradeResponse => Role::Directory,
            GetRoResponse | GetRwResponse | UpgradeResponse | InvalRoRequest | InvalRwRequest
            | DowngradeRequest => Role::Cache,
        }
    }

    /// Whether this is a request (as opposed to a response).
    pub fn is_request(self) -> bool {
        use MsgType::*;
        matches!(
            self,
            GetRoRequest
                | GetRwRequest
                | UpgradeRequest
                | InvalRoRequest
                | InvalRwRequest
                | DowngradeRequest
        )
    }

    /// Whether this is a response.
    pub fn is_response(self) -> bool {
        !self.is_request()
    }

    /// The response type a request elicits, if any.
    ///
    /// ```
    /// use stache::MsgType;
    /// assert_eq!(MsgType::GetRoRequest.response(), Some(MsgType::GetRoResponse));
    /// assert_eq!(MsgType::InvalRwRequest.response(), Some(MsgType::InvalRwResponse));
    /// assert_eq!(MsgType::GetRoResponse.response(), None);
    /// ```
    pub fn response(self) -> Option<MsgType> {
        use MsgType::*;
        Some(match self {
            GetRoRequest => GetRoResponse,
            GetRwRequest => GetRwResponse,
            UpgradeRequest => UpgradeResponse,
            InvalRoRequest => InvalRoResponse,
            InvalRwRequest => InvalRwResponse,
            DowngradeRequest => DowngradeResponse,
            _ => return None,
        })
    }

    /// The paper's snake_case name for the message type.
    pub fn paper_name(self) -> &'static str {
        use MsgType::*;
        match self {
            GetRoRequest => "get_ro_request",
            GetRwRequest => "get_rw_request",
            UpgradeRequest => "upgrade_request",
            InvalRoResponse => "inval_ro_response",
            InvalRwResponse => "inval_rw_response",
            DowngradeResponse => "downgrade_response",
            GetRoResponse => "get_ro_response",
            GetRwResponse => "get_rw_response",
            UpgradeResponse => "upgrade_response",
            InvalRoRequest => "inval_ro_request",
            InvalRwRequest => "inval_rw_request",
            DowngradeRequest => "downgrade_request",
        }
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A coherence message in flight: who sent it, who receives it, for which
/// block, and what it says.
///
/// The `trace` field is an observability passenger: it ties the message to
/// the coherence transaction's span tree (see `obs::span`) and is
/// **excluded** from equality, hashing, and fingerprinting, so two
/// messages that say the same thing about the same block compare equal
/// whether or not tracing is on.
#[derive(Debug, Clone, Copy, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Msg {
    /// Sending node.
    pub sender: NodeId,
    /// Receiving node.
    pub receiver: NodeId,
    /// The cache block the message concerns.
    pub block: BlockAddr,
    /// The message type.
    pub mtype: MsgType,
    /// The transaction trace this message belongs to
    /// (`obs::TraceId::NONE` when tracing is off). Not protocol state.
    pub trace: obs::TraceId,
}

// Manual impls so `trace` stays outside the message's protocol identity.
impl PartialEq for Msg {
    fn eq(&self, other: &Self) -> bool {
        self.sender == other.sender
            && self.receiver == other.receiver
            && self.block == other.block
            && self.mtype == other.mtype
    }
}

impl std::hash::Hash for Msg {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sender.hash(state);
        self.receiver.hash(state);
        self.block.hash(state);
        self.mtype.hash(state);
    }
}

impl Msg {
    /// Creates an untraced message.
    pub fn new(sender: NodeId, receiver: NodeId, block: BlockAddr, mtype: MsgType) -> Self {
        Msg {
            sender,
            receiver,
            block,
            mtype,
            trace: obs::TraceId::NONE,
        }
    }

    /// Attaches a transaction trace id (builder style).
    pub fn with_trace(mut self, trace: obs::TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// The role of the agent that receives this message.
    pub fn receiver_role(&self) -> Role {
        self.mtype.receiver_role()
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{}] {}",
            self.sender, self.receiver, self.block, self.mtype
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_fit_four_bits() {
        for (i, &t) in ALL_MSG_TYPES.iter().enumerate() {
            assert_eq!(t.code() as usize, i);
            assert!(t.code() < 16, "code must fit 4 bits");
            assert_eq!(MsgType::from_code(t.code()), Some(t));
        }
        assert_eq!(MsgType::from_code(12), None);
        assert_eq!(MsgType::from_code(255), None);
    }

    #[test]
    fn receiver_roles_partition_the_vocabulary() {
        let dir: Vec<_> = ALL_MSG_TYPES
            .iter()
            .filter(|t| t.receiver_role() == Role::Directory)
            .collect();
        let cache: Vec<_> = ALL_MSG_TYPES
            .iter()
            .filter(|t| t.receiver_role() == Role::Cache)
            .collect();
        assert_eq!(dir.len(), 6);
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn requests_have_responses_with_swapped_roles() {
        for &t in &ALL_MSG_TYPES {
            if let Some(r) = t.response() {
                assert!(t.is_request());
                assert!(r.is_response());
                assert_ne!(t.receiver_role(), r.receiver_role());
            } else {
                assert!(t.is_response());
            }
        }
    }

    #[test]
    fn paper_names_match_table_one() {
        assert_eq!(MsgType::GetRoRequest.to_string(), "get_ro_request");
        assert_eq!(MsgType::UpgradeResponse.to_string(), "upgrade_response");
        assert_eq!(MsgType::InvalRwRequest.to_string(), "inval_rw_request");
        assert_eq!(MsgType::DowngradeResponse.to_string(), "downgrade_response");
    }

    #[test]
    fn trace_id_is_not_part_of_message_identity() {
        let plain = Msg::new(
            NodeId::new(1),
            NodeId::new(2),
            BlockAddr::new(0x40),
            MsgType::GetRwRequest,
        );
        let mut log = obs::SpanLog::new();
        log.enable();
        let t = log.begin_trace("get_rw_request", 0, 1, 0x40);
        let traced = plain.with_trace(t);
        assert!(traced.trace.is_some());
        assert_eq!(plain, traced, "equality ignores the trace passenger");
        let hash = |m: &Msg| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&plain), hash(&traced));
    }

    #[test]
    fn msg_display_is_informative() {
        let m = Msg::new(
            NodeId::new(1),
            NodeId::new(2),
            BlockAddr::new(0x40),
            MsgType::GetRwRequest,
        );
        assert_eq!(m.to_string(), "P1 -> P2 [B0x40] get_rw_request");
        assert_eq!(m.receiver_role(), Role::Directory);
    }
}
