//! Canonical fingerprinting of protocol state.
//!
//! The `simcheck` model checker (in `simx`) prunes its search by hashing
//! every global machine state it visits and skipping states it has seen
//! before. That only works if equal protocol states always hash equally —
//! which `#[derive(Hash)]` over the raw representations does **not**
//! guarantee: a [`NodeSet`] keeps trailing zero words after removals, hash
//! maps iterate in arbitrary order, and timestamps differ between schedules
//! that reach the same protocol state. This module provides the canonical
//! encoding: every protocol value folds itself into an [`Fp`] accumulator
//! in a representation-independent order, and containers are responsible
//! for sorting their elements first.
//!
//! The hash itself is the same multiply-xor construction as the predictor's
//! `FastHash` (deterministic across processes, no external dependency); a
//! different odd constant keeps the two streams decorrelated.

use crate::cache::CacheState;
use crate::directory::DirState;
use crate::ids::{BlockAddr, NodeId, NodeSet};
use crate::msg::{Msg, MsgType, ProcOp};

/// The fold multiplier: an odd 64-bit constant (2^64/φ).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// An order-sensitive 64-bit fingerprint accumulator.
///
/// ```
/// use stache::fingerprint::Fp;
/// let mut a = Fp::new();
/// a.word(1);
/// a.word(2);
/// let mut b = Fp::new();
/// b.word(2);
/// b.word(1);
/// assert_ne!(a.finish(), b.finish(), "order matters");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fp {
    hash: u64,
}

impl Fp {
    /// Creates an accumulator with a fixed non-zero seed.
    pub fn new() -> Self {
        Fp {
            hash: 0x2545_f491_4f6c_dd1d,
        }
    }

    /// Folds one word in.
    pub fn word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }

    /// Folds a variant tag in — keeps adjacent fields of different types
    /// from aliasing.
    pub fn tag(&mut self, t: u8) {
        self.word(0x7461_6700 | u64::from(t));
    }

    /// Folds a whole value in via its [`Fingerprint`] impl.
    pub fn absorb<T: Fingerprint + ?Sized>(&mut self, value: &T) {
        value.fingerprint_into(self);
    }

    /// The accumulated fingerprint, with a final avalanche mix so short
    /// inputs still spread over all 64 bits.
    pub fn finish(&self) -> u64 {
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

impl Default for Fp {
    fn default() -> Self {
        Fp::new()
    }
}

/// A value with a canonical, representation-independent encoding.
pub trait Fingerprint {
    /// Folds the value's canonical encoding into `fp`.
    fn fingerprint_into(&self, fp: &mut Fp);
}

/// Fingerprints a single value.
pub fn fingerprint_of<T: Fingerprint + ?Sized>(value: &T) -> u64 {
    let mut fp = Fp::new();
    fp.absorb(value);
    fp.finish()
}

impl Fingerprint for NodeId {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.word(u64::from(self.raw()));
    }
}

impl Fingerprint for BlockAddr {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.word(self.number());
    }
}

impl Fingerprint for CacheState {
    fn fingerprint_into(&self, fp: &mut Fp) {
        let t = match self {
            CacheState::Invalid => 0,
            CacheState::Shared => 1,
            CacheState::Exclusive => 2,
            CacheState::IToS => 3,
            CacheState::IToE => 4,
            CacheState::SToE => 5,
        };
        fp.tag(t);
    }
}

impl Fingerprint for MsgType {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.tag(self.code());
    }
}

impl Fingerprint for ProcOp {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.tag(match self {
            ProcOp::Read => 0,
            ProcOp::Write => 1,
        });
    }
}

/// Members in ascending order — trailing zero words left behind by
/// [`NodeSet::remove`] do not affect the fingerprint.
impl Fingerprint for NodeSet {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.word(self.len() as u64);
        for n in self.iter() {
            fp.absorb(&n);
        }
    }
}

impl Fingerprint for DirState {
    fn fingerprint_into(&self, fp: &mut Fp) {
        match self {
            DirState::Idle => fp.tag(0),
            DirState::Shared(set) => {
                fp.tag(1);
                fp.absorb(set);
            }
            DirState::Exclusive(owner) => {
                fp.tag(2);
                fp.absorb(owner);
            }
        }
    }
}

/// Trace ids are observability passengers, not protocol state, so they
/// stay out of the fingerprint: simcheck's state hashes (and committed
/// schedule artifacts) are identical with tracing on or off.
impl Fingerprint for Msg {
    fn fingerprint_into(&self, fp: &mut Fp) {
        fp.absorb(&self.sender);
        fp.absorb(&self.receiver);
        fp.absorb(&self.block);
        fp.absorb(&self.mtype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = fingerprint_of(&CacheState::Shared);
        assert_eq!(a, fingerprint_of(&CacheState::Shared));
        let all = [
            CacheState::Invalid,
            CacheState::Shared,
            CacheState::Exclusive,
            CacheState::IToS,
            CacheState::IToE,
            CacheState::SToE,
        ];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(fingerprint_of(x), fingerprint_of(y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn node_set_fingerprint_is_representation_independent() {
        // Build {1} two ways: directly, and by way of a high member whose
        // removal leaves a trailing zero word in the bitset.
        let direct = NodeSet::singleton(NodeId::new(1));
        let mut indirect = NodeSet::new();
        indirect.insert(NodeId::new(200));
        indirect.insert(NodeId::new(1));
        indirect.remove(NodeId::new(200));
        assert_eq!(fingerprint_of(&direct), fingerprint_of(&indirect));
        assert_ne!(
            fingerprint_of(&direct),
            fingerprint_of(&NodeSet::singleton(NodeId::new(2)))
        );
    }

    #[test]
    fn dir_states_do_not_alias() {
        let shared1 = DirState::Shared(NodeSet::singleton(NodeId::new(3)));
        let excl = DirState::Exclusive(NodeId::new(3));
        assert_ne!(fingerprint_of(&shared1), fingerprint_of(&excl));
        assert_ne!(fingerprint_of(&DirState::Idle), fingerprint_of(&excl));
    }

    #[test]
    fn messages_distinguish_direction() {
        let a = Msg::new(
            NodeId::new(1),
            NodeId::new(2),
            BlockAddr::new(0),
            MsgType::GetRoRequest,
        );
        let b = Msg::new(
            NodeId::new(2),
            NodeId::new(1),
            BlockAddr::new(0),
            MsgType::GetRoRequest,
        );
        assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn trace_id_does_not_perturb_message_fingerprints() {
        let plain = Msg::new(
            NodeId::new(1),
            NodeId::new(2),
            BlockAddr::new(0x40),
            MsgType::GetRwRequest,
        );
        let mut log = obs::SpanLog::new();
        log.enable();
        let t = log.begin_trace("get_rw_request", 0, 1, 0x40);
        assert_eq!(fingerprint_of(&plain), fingerprint_of(&plain.with_trace(t)));
    }

    #[test]
    fn empty_accumulators_agree() {
        assert_eq!(Fp::new().finish(), Fp::default().finish());
        let mut fp = Fp::new();
        fp.word(0);
        assert_ne!(fp.finish(), Fp::new().finish(), "a zero word still folds");
    }
}
