//! Per-state-transition tallies for the protocol FSMs.
//!
//! The state machines in this crate are pure functions, so they cannot
//! count their own invocations; a [`ProtocolTally`] is the mutable
//! companion a driver (the `simx` machine) holds to record every
//! transition it applies, plus how often the coherence invariants were
//! checked and how often they failed. The tally exports into an
//! [`obs::Snapshot`] under the `stache.` prefix.

use crate::cache::CacheState;
use crate::directory::DirState;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Counts of applied FSM transitions and invariant checks.
///
/// Transition keys are the lowercase state names
/// ([`CacheState::short_name`], [`DirState::kind_name`]); self-loops
/// (state unchanged) are counted too, since a re-grant to the same state
/// is still protocol work. Invariant counters are `Cell`s so the
/// `&self` verification paths can count without threading `&mut`.
#[derive(Debug, Clone, Default)]
pub struct ProtocolTally {
    cache: BTreeMap<(&'static str, &'static str), u64>,
    dir: BTreeMap<(&'static str, &'static str), u64>,
    invariant_checks: Cell<u64>,
    invariant_failures: Cell<u64>,
}

impl ProtocolTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        ProtocolTally::default()
    }

    /// Records one applied cache-side transition.
    #[inline]
    pub fn cache_transition(&mut self, from: CacheState, to: CacheState) {
        *self
            .cache
            .entry((from.short_name(), to.short_name()))
            .or_insert(0) += 1;
    }

    /// Records one applied directory-side transition (by state kind).
    #[inline]
    pub fn dir_transition(&mut self, from: &DirState, to: &DirState) {
        *self
            .dir
            .entry((from.kind_name(), to.kind_name()))
            .or_insert(0) += 1;
    }

    /// Records one invariant check.
    #[inline]
    pub fn count_invariant_check(&self) {
        self.invariant_checks.set(self.invariant_checks.get() + 1);
    }

    /// Records one invariant failure.
    #[inline]
    pub fn count_invariant_failure(&self) {
        self.invariant_failures
            .set(self.invariant_failures.get() + 1);
    }

    /// Total cache-side transitions recorded.
    pub fn cache_transitions(&self) -> u64 {
        self.cache.values().sum()
    }

    /// Total directory-side transitions recorded.
    pub fn dir_transitions(&self) -> u64 {
        self.dir.values().sum()
    }

    /// Invariant checks recorded.
    pub fn invariant_checks(&self) -> u64 {
        self.invariant_checks.get()
    }

    /// Invariant failures recorded.
    pub fn invariant_failures(&self) -> u64 {
        self.invariant_failures.get()
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ProtocolTally) {
        for (k, v) in &other.cache {
            *self.cache.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.dir {
            *self.dir.entry(*k).or_insert(0) += v;
        }
        self.invariant_checks
            .set(self.invariant_checks.get() + other.invariant_checks.get());
        self.invariant_failures
            .set(self.invariant_failures.get() + other.invariant_failures.get());
    }

    /// Exports into a metrics snapshot under the `stache.` prefix:
    /// `stache.cache.transition.<from>.<to>`,
    /// `stache.dir.transition.<from>.<to>`, and
    /// `stache.invariant.{checks,failures}`.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        for ((from, to), v) in &self.cache {
            snap.counter(&format!("stache.cache.transition.{from}.{to}"), *v);
        }
        for ((from, to), v) in &self.dir {
            snap.counter(&format!("stache.dir.transition.{from}.{to}"), *v);
        }
        snap.counter("stache.invariant.checks", self.invariant_checks.get());
        snap.counter("stache.invariant.failures", self.invariant_failures.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, NodeSet};

    #[test]
    fn transitions_accumulate_by_state_pair() {
        let mut t = ProtocolTally::new();
        t.cache_transition(CacheState::Invalid, CacheState::IToS);
        t.cache_transition(CacheState::Invalid, CacheState::IToS);
        t.cache_transition(CacheState::IToS, CacheState::Shared);
        t.dir_transition(&DirState::Idle, &DirState::Exclusive(NodeId::new(1)));
        assert_eq!(t.cache_transitions(), 3);
        assert_eq!(t.dir_transitions(), 1);
        let mut snap = obs::Snapshot::new();
        t.export_obs(&mut snap);
        assert_eq!(
            snap.get("stache.cache.transition.invalid.i_to_s"),
            Some(&obs::MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get("stache.dir.transition.idle.exclusive"),
            Some(&obs::MetricValue::Counter(1))
        );
    }

    #[test]
    fn invariant_counters_work_through_shared_ref() {
        let t = ProtocolTally::new();
        t.count_invariant_check();
        t.count_invariant_check();
        t.count_invariant_failure();
        assert_eq!(t.invariant_checks(), 2);
        assert_eq!(t.invariant_failures(), 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ProtocolTally::new();
        a.cache_transition(CacheState::Shared, CacheState::Invalid);
        a.count_invariant_check();
        let mut b = ProtocolTally::new();
        b.cache_transition(CacheState::Shared, CacheState::Invalid);
        b.dir_transition(
            &DirState::Shared(NodeSet::singleton(NodeId::new(0))),
            &DirState::Idle,
        );
        b.count_invariant_failure();
        a.merge(&b);
        assert_eq!(a.cache_transitions(), 2);
        assert_eq!(a.dir_transitions(), 1);
        assert_eq!(a.invariant_checks(), 1);
        assert_eq!(a.invariant_failures(), 1);
    }
}
