//! Identifier newtypes: nodes, cache blocks, pages, and node sets.
//!
//! The paper's predictor tuple reserves 12 bits for the processor number and
//! 4 bits for the message type (Table 7 caption), so [`NodeId`] enforces a
//! 12-bit range. [`BlockAddr`] is a *block-granular* address (a block
//! number), which is the granularity at which both the directory and Cosmos
//! keep state.

use std::fmt;

/// Maximum number of nodes representable in a prediction tuple (12 bits).
pub const MAX_NODES: usize = 1 << 12;

/// A node (equivalently, a processor — the paper considers single-processor
/// nodes only).
///
/// ```
/// use stache::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_NODES` (the tuple encoding reserves 12 bits).
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_NODES, "node index {index} exceeds 12-bit range");
        NodeId(index as u16)
    }

    /// The zero-based index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 12-bit value used by the packed tuple encoding.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Reconstructs a node id from a raw 12-bit value.
    ///
    /// Returns `None` if the value is out of range.
    pub fn from_raw(raw: u16) -> Option<Self> {
        ((raw as usize) < MAX_NODES).then_some(NodeId(raw))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(n: NodeId) -> usize {
        n.index()
    }
}

/// A cache-block address: the block *number*, i.e. byte address divided by
/// the block size. Directory entries, cache lines, and Cosmos MHRs are all
/// keyed by `BlockAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block number.
    pub fn new(block_number: u64) -> Self {
        BlockAddr(block_number)
    }

    /// The block number.
    pub fn number(self) -> u64 {
        self.0
    }

    /// The page containing this block, given `blocks_per_page`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_page` is zero.
    pub fn page(self, blocks_per_page: u64) -> PageId {
        assert!(blocks_per_page > 0, "blocks_per_page must be nonzero");
        PageId(self.0 / blocks_per_page)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// A page identifier. Pages are the unit of round-robin home placement
/// (paper §5.1): page `X` is homed on node `X mod N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id.
    pub fn new(page_number: u64) -> Self {
        PageId(page_number)
    }

    /// The page number.
    pub fn number(self) -> u64 {
        self.0
    }

    /// The first block of this page.
    pub fn first_block(self, blocks_per_page: u64) -> BlockAddr {
        BlockAddr(self.0 * blocks_per_page)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pg{}", self.0)
    }
}

/// A set of nodes, used as the full-map sharer list in directory entries.
///
/// Backed by a fixed 64-bit word per 64 nodes; for the paper's 16-node
/// machine a single word suffices, but the set grows as needed so larger
/// configurations also work.
///
/// ```
/// use stache::{NodeId, NodeSet};
/// let mut s = NodeSet::new();
/// s.insert(NodeId::new(2));
/// s.insert(NodeId::new(5));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(2)));
/// let members: Vec<_> = s.iter().map(|n| n.index()).collect();
/// assert_eq!(members, vec![2, 5]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates a set containing exactly one node.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = NodeSet::new();
        s.insert(node);
        s
    }

    /// Inserts a node; returns `true` if it was newly added.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether the node is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in ascending index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The sole member, if the set is a singleton.
    pub fn sole_member(&self) -> Option<NodeId> {
        let mut it = self.iter();
        let first = it.next()?;
        it.next().is_none().then_some(first)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`NodeSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId::new(self.word * 64 + b));
            }
            self.word += 1;
            self.bits = *self.set.words.get(self.word)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(15);
        assert_eq!(NodeId::from_raw(n.raw()), Some(n));
        assert_eq!(NodeId::from_raw(0x0FFF), Some(NodeId::new(4095)));
        assert_eq!(NodeId::from_raw(0x1000), None);
    }

    #[test]
    #[should_panic(expected = "12-bit")]
    fn node_id_range_enforced() {
        let _ = NodeId::new(MAX_NODES);
    }

    #[test]
    fn block_to_page() {
        // 64 blocks per page (4 KiB pages, 64 B blocks).
        assert_eq!(BlockAddr::new(0).page(64), PageId::new(0));
        assert_eq!(BlockAddr::new(63).page(64), PageId::new(0));
        assert_eq!(BlockAddr::new(64).page(64), PageId::new(1));
        assert_eq!(PageId::new(1).first_block(64), BlockAddr::new(64));
    }

    #[test]
    fn node_set_basics() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(0)));
        assert!(!s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(63)));
        assert!(s.insert(NodeId::new(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(64)));
        assert!(s.remove(NodeId::new(0)));
        assert!(!s.remove(NodeId::new(0)));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.iter().map(NodeId::index).collect::<Vec<_>>(),
            vec![63, 64]
        );
    }

    #[test]
    fn node_set_sole_member() {
        let mut s = NodeSet::singleton(NodeId::new(7));
        assert_eq!(s.sole_member(), Some(NodeId::new(7)));
        s.insert(NodeId::new(8));
        assert_eq!(s.sole_member(), None);
        s.remove(NodeId::new(7));
        s.remove(NodeId::new(8));
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn node_set_display() {
        let s: NodeSet = [NodeId::new(1), NodeId::new(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{P1,P4}");
        assert_eq!(NodeSet::new().to_string(), "{}");
    }

    #[test]
    fn node_set_remove_out_of_range_is_noop() {
        let mut s = NodeSet::singleton(NodeId::new(1));
        assert!(!s.remove(NodeId::new(200)));
        assert_eq!(s.len(), 1);
    }
}
