//! Protocol error type.

use crate::ids::NodeId;
use crate::msg::MsgType;
use std::error::Error;
use std::fmt;

/// An illegal protocol event: a message or request that the receiving state
/// machine has no transition for.
///
/// In a correct serialized execution these never occur; they exist so the
/// state machines can *validate* their inputs (C-VALIDATE) instead of
/// silently corrupting coherence state, and so tests can assert on precise
/// failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A cache received a message its current state has no transition for.
    UnexpectedCacheMessage {
        /// Debug rendering of the cache state at reception.
        state: &'static str,
        /// The offending message type.
        mtype: MsgType,
    },
    /// A processor operation was issued while the block is in a transient
    /// state (the serialized engine never overlaps transactions per block).
    BusyBlock,
    /// The directory received a request inconsistent with its entry, e.g. a
    /// `get_ro_request` from a node it already records as a sharer.
    InconsistentDirectory {
        /// Debug rendering of the directory state at reception.
        state: String,
        /// The requesting node.
        from: NodeId,
        /// The offending request.
        mtype: MsgType,
    },
    /// A message type that the agent's role never receives.
    WrongRole {
        /// The offending message type.
        mtype: MsgType,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedCacheMessage { state, mtype } => {
                write!(f, "cache in state {state} cannot accept {mtype}")
            }
            ProtocolError::BusyBlock => {
                write!(
                    f,
                    "processor operation on a block with a transaction in flight"
                )
            }
            ProtocolError::InconsistentDirectory { state, from, mtype } => {
                write!(
                    f,
                    "directory entry {state} cannot accept {mtype} from {from}"
                )
            }
            ProtocolError::WrongRole { mtype } => {
                write!(f, "message {mtype} delivered to an agent of the wrong role")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_never_empty() {
        let errors = [
            ProtocolError::UnexpectedCacheMessage {
                state: "Invalid",
                mtype: MsgType::UpgradeResponse,
            },
            ProtocolError::BusyBlock,
            ProtocolError::InconsistentDirectory {
                state: "Idle".to_string(),
                from: NodeId::new(0),
                mtype: MsgType::InvalRoResponse,
            },
            ProtocolError::WrongRole {
                mtype: MsgType::GetRoRequest,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
