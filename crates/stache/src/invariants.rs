//! Global protocol invariant checking.
//!
//! Given a consistent snapshot of every cache's state and the directory
//! entry for a block, [`check_block`] verifies:
//!
//! 1. **Single-writer / multiple-reader (SWMR)** — at most one cache holds
//!    the block exclusive, and never together with shared copies elsewhere;
//! 2. **Full-map accuracy** — the directory's holder set matches exactly
//!    the caches that actually hold a valid copy.
//!
//! The `simx` machine calls this after every transaction in debug builds
//! and the property-test suite drives it with random access streams.

use crate::cache::CacheState;
use crate::directory::DirState;
use crate::ids::{BlockAddr, NodeId};
use std::error::Error;
use std::fmt;

/// A violated coherence invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// More than one cache holds the block exclusive.
    MultipleWriters {
        /// The block in violation.
        block: BlockAddr,
        /// The nodes that simultaneously hold it exclusive.
        writers: Vec<NodeId>,
    },
    /// A cache holds the block exclusive while another holds it shared.
    WriterWithReaders {
        /// The block in violation.
        block: BlockAddr,
        /// The exclusive owner.
        writer: NodeId,
        /// Nodes simultaneously holding shared copies.
        readers: Vec<NodeId>,
    },
    /// The directory's record disagrees with the caches' actual states.
    DirectoryMismatch {
        /// The block in violation.
        block: BlockAddr,
        /// Human-readable rendering of the directory entry.
        directory: String,
        /// The caches that actually hold valid copies, with their states.
        actual: Vec<(NodeId, CacheState)>,
    },
    /// A cache is stuck in a transient state outside a transaction.
    TransientAtRest {
        /// The block in violation.
        block: BlockAddr,
        /// The offending node.
        node: NodeId,
        /// Its (transient) state.
        state: CacheState,
    },
    /// A node is still waiting on a miss (or a directory transaction is
    /// still open) after the machine went quiescent — the message that
    /// would have completed it was lost or never sent.
    StuckMessage {
        /// The block the stuck request concerns.
        block: BlockAddr,
        /// The node left waiting.
        node: NodeId,
    },
    /// A receiver's delivery low-water mark moved backwards — the
    /// recovery layer's idempotent-delivery bookkeeping regressed.
    SequenceRegression {
        /// The receiver whose watermark regressed.
        node: NodeId,
        /// The watermark before the step.
        from: u64,
        /// The (lower) watermark after the step.
        to: u64,
    },
}

impl InvariantViolation {
    /// Lowercase kind name, for metric paths and trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            InvariantViolation::MultipleWriters { .. } => "multiple_writers",
            InvariantViolation::WriterWithReaders { .. } => "writer_with_readers",
            InvariantViolation::DirectoryMismatch { .. } => "directory_mismatch",
            InvariantViolation::TransientAtRest { .. } => "transient_at_rest",
            InvariantViolation::StuckMessage { .. } => "stuck_message",
            InvariantViolation::SequenceRegression { .. } => "sequence_regression",
        }
    }

    /// The block in violation, if the invariant is per-block.
    pub fn block(&self) -> Option<BlockAddr> {
        match self {
            InvariantViolation::MultipleWriters { block, .. }
            | InvariantViolation::WriterWithReaders { block, .. }
            | InvariantViolation::DirectoryMismatch { block, .. }
            | InvariantViolation::TransientAtRest { block, .. }
            | InvariantViolation::StuckMessage { block, .. } => Some(*block),
            InvariantViolation::SequenceRegression { .. } => None,
        }
    }

    /// A node implicated in the violation, if one is identifiable.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            InvariantViolation::MultipleWriters { writers, .. } => writers.first().copied(),
            InvariantViolation::WriterWithReaders { writer, .. } => Some(*writer),
            InvariantViolation::DirectoryMismatch { actual, .. } => actual.first().map(|(n, _)| *n),
            InvariantViolation::TransientAtRest { node, .. }
            | InvariantViolation::StuckMessage { node, .. }
            | InvariantViolation::SequenceRegression { node, .. } => Some(*node),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::MultipleWriters { block, writers } => {
                write!(f, "{block}: multiple exclusive owners: {writers:?}")
            }
            InvariantViolation::WriterWithReaders {
                block,
                writer,
                readers,
            } => {
                write!(
                    f,
                    "{block}: owner {writer} coexists with readers {readers:?}"
                )
            }
            InvariantViolation::DirectoryMismatch {
                block,
                directory,
                actual,
            } => {
                write!(
                    f,
                    "{block}: directory says {directory} but caches hold {actual:?}"
                )
            }
            InvariantViolation::TransientAtRest { block, node, state } => {
                write!(f, "{block}: {node} left in transient state {state}")
            }
            InvariantViolation::StuckMessage { block, node } => {
                write!(f, "{block}: {node} still waiting at quiescence")
            }
            InvariantViolation::SequenceRegression { node, from, to } => {
                write!(f, "{node}: delivery watermark regressed {from} -> {to}")
            }
        }
    }
}

impl Error for InvariantViolation {}

/// Checks the coherence invariants for one block.
///
/// `cache_states` gives each node's state for the block, indexed by node.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_block(
    block: BlockAddr,
    dir: &DirState,
    cache_states: &[CacheState],
) -> Result<(), InvariantViolation> {
    let writers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Exclusive)
        .map(|(i, _)| NodeId::new(i))
        .collect();
    let readers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Shared)
        .map(|(i, _)| NodeId::new(i))
        .collect();

    if let Some((i, &s)) = cache_states
        .iter()
        .enumerate()
        .find(|(_, s)| !s.is_stable())
    {
        return Err(InvariantViolation::TransientAtRest {
            block,
            node: NodeId::new(i),
            state: s,
        });
    }
    if writers.len() > 1 {
        return Err(InvariantViolation::MultipleWriters { block, writers });
    }
    if let (Some(&writer), false) = (writers.first(), readers.is_empty()) {
        return Err(InvariantViolation::WriterWithReaders {
            block,
            writer,
            readers,
        });
    }

    let mismatch = || InvariantViolation::DirectoryMismatch {
        block,
        directory: dir.to_string(),
        actual: cache_states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != CacheState::Invalid)
            .map(|(i, s)| (NodeId::new(i), *s))
            .collect(),
    };
    match dir {
        DirState::Idle => {
            if !writers.is_empty() || !readers.is_empty() {
                return Err(mismatch());
            }
        }
        DirState::Shared(set) => {
            if !writers.is_empty() || set.is_empty() {
                return Err(mismatch());
            }
            let actual: Vec<NodeId> = readers;
            if actual.len() != set.len() || actual.iter().any(|n| !set.contains(*n)) {
                return Err(mismatch());
            }
        }
        DirState::Exclusive(owner) => {
            if writers != [*owner] || !readers.is_empty() {
                return Err(mismatch());
            }
        }
    }
    Ok(())
}

/// Checks single-writer/multiple-reader only — the invariant that must
/// hold at *every* step, not just at quiescence.
///
/// Mid-transaction the directory entry legitimately lags the caches and
/// requesters sit in transient states, so [`check_block`]'s full-map and
/// transient-at-rest checks would fire spuriously; SWMR over the *stable*
/// states never does, because a Stache directory collects every
/// invalidation acknowledgment before granting new rights. The `simcheck`
/// model checker calls this after every delivered message.
///
/// # Errors
///
/// Returns [`InvariantViolation::MultipleWriters`] or
/// [`InvariantViolation::WriterWithReaders`].
pub fn check_swmr(block: BlockAddr, cache_states: &[CacheState]) -> Result<(), InvariantViolation> {
    let writers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Exclusive)
        .map(|(i, _)| NodeId::new(i))
        .collect();
    if writers.len() > 1 {
        return Err(InvariantViolation::MultipleWriters { block, writers });
    }
    let readers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Shared)
        .map(|(i, _)| NodeId::new(i))
        .collect();
    if let (Some(&writer), false) = (writers.first(), readers.is_empty()) {
        return Err(InvariantViolation::WriterWithReaders {
            block,
            writer,
            readers,
        });
    }
    Ok(())
}

/// Checks that a receiver's delivery low-water mark only moves forward.
///
/// # Errors
///
/// Returns [`InvariantViolation::SequenceRegression`] when `after < before`.
pub fn check_watermark(node: NodeId, before: u64, after: u64) -> Result<(), InvariantViolation> {
    if after < before {
        return Err(InvariantViolation::SequenceRegression {
            node,
            from: before,
            to: after,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeSet;

    fn b() -> BlockAddr {
        BlockAddr::new(7)
    }

    #[test]
    fn idle_with_no_copies_is_coherent() {
        let states = vec![CacheState::Invalid; 4];
        assert!(check_block(b(), &DirState::Idle, &states).is_ok());
    }

    #[test]
    fn exclusive_matches_single_writer() {
        let mut states = vec![CacheState::Invalid; 4];
        states[2] = CacheState::Exclusive;
        assert!(check_block(b(), &DirState::Exclusive(NodeId::new(2)), &states).is_ok());
    }

    #[test]
    fn shared_matches_reader_set() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Shared;
        states[3] = CacheState::Shared;
        let set: NodeSet = [NodeId::new(0), NodeId::new(3)].into_iter().collect();
        assert!(check_block(b(), &DirState::Shared(set), &states).is_ok());
    }

    #[test]
    fn two_writers_violate_swmr() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[1] = CacheState::Exclusive;
        assert!(matches!(
            check_block(b(), &DirState::Exclusive(NodeId::new(0)), &states),
            Err(InvariantViolation::MultipleWriters { .. })
        ));
    }

    #[test]
    fn writer_plus_reader_violates_swmr() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[1] = CacheState::Shared;
        assert!(matches!(
            check_block(b(), &DirState::Exclusive(NodeId::new(0)), &states),
            Err(InvariantViolation::WriterWithReaders { .. })
        ));
    }

    #[test]
    fn stale_directory_detected() {
        let mut states = vec![CacheState::Invalid; 4];
        states[1] = CacheState::Shared;
        // Directory thinks node 2 shares it instead.
        let set = NodeSet::singleton(NodeId::new(2));
        assert!(matches!(
            check_block(b(), &DirState::Shared(set), &states),
            Err(InvariantViolation::DirectoryMismatch { .. })
        ));
    }

    #[test]
    fn empty_shared_set_detected() {
        let states = vec![CacheState::Invalid; 4];
        assert!(matches!(
            check_block(b(), &DirState::Shared(NodeSet::new()), &states),
            Err(InvariantViolation::DirectoryMismatch { .. })
        ));
    }

    #[test]
    fn transient_at_rest_detected() {
        let mut states = vec![CacheState::Invalid; 4];
        states[3] = CacheState::IToS;
        assert!(matches!(
            check_block(b(), &DirState::Idle, &states),
            Err(InvariantViolation::TransientAtRest { .. })
        ));
    }

    #[test]
    fn violations_display() {
        let v = InvariantViolation::MultipleWriters {
            block: b(),
            writers: vec![NodeId::new(0), NodeId::new(1)],
        };
        assert!(v.to_string().contains("multiple exclusive owners"));
        let s = InvariantViolation::StuckMessage {
            block: b(),
            node: NodeId::new(1),
        };
        assert!(s.to_string().contains("still waiting"));
        assert_eq!(s.kind_name(), "stuck_message");
        assert_eq!(s.block(), Some(b()));
        assert_eq!(s.node(), Some(NodeId::new(1)));
    }

    #[test]
    fn swmr_tolerates_transients_mid_flight() {
        // A requester in S-to-E next to the current owner is a legal
        // mid-transaction picture; the full check would reject it.
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[1] = CacheState::SToE;
        states[2] = CacheState::IToS;
        assert!(check_swmr(b(), &states).is_ok());
        assert!(check_block(b(), &DirState::Exclusive(NodeId::new(0)), &states).is_err());
    }

    #[test]
    fn swmr_still_rejects_stable_violations() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[2] = CacheState::Shared;
        assert!(matches!(
            check_swmr(b(), &states),
            Err(InvariantViolation::WriterWithReaders { .. })
        ));
        states[2] = CacheState::Exclusive;
        assert!(matches!(
            check_swmr(b(), &states),
            Err(InvariantViolation::MultipleWriters { .. })
        ));
    }

    #[test]
    fn watermarks_must_be_monotone() {
        assert!(check_watermark(NodeId::new(0), 5, 5).is_ok());
        assert!(check_watermark(NodeId::new(0), 5, 9).is_ok());
        let v = check_watermark(NodeId::new(3), 5, 4).unwrap_err();
        assert_eq!(v.kind_name(), "sequence_regression");
        assert_eq!(v.block(), None);
        assert_eq!(v.node(), Some(NodeId::new(3)));
    }
}
