//! Global protocol invariant checking.
//!
//! Given a consistent snapshot of every cache's state and the directory
//! entry for a block, [`check_block`] verifies:
//!
//! 1. **Single-writer / multiple-reader (SWMR)** — at most one cache holds
//!    the block exclusive, and never together with shared copies elsewhere;
//! 2. **Full-map accuracy** — the directory's holder set matches exactly
//!    the caches that actually hold a valid copy.
//!
//! The `simx` machine calls this after every transaction in debug builds
//! and the property-test suite drives it with random access streams.

use crate::cache::CacheState;
use crate::directory::DirState;
use crate::ids::{BlockAddr, NodeId};
use std::error::Error;
use std::fmt;

/// A violated coherence invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// More than one cache holds the block exclusive.
    MultipleWriters {
        /// The block in violation.
        block: BlockAddr,
        /// The nodes that simultaneously hold it exclusive.
        writers: Vec<NodeId>,
    },
    /// A cache holds the block exclusive while another holds it shared.
    WriterWithReaders {
        /// The block in violation.
        block: BlockAddr,
        /// The exclusive owner.
        writer: NodeId,
        /// Nodes simultaneously holding shared copies.
        readers: Vec<NodeId>,
    },
    /// The directory's record disagrees with the caches' actual states.
    DirectoryMismatch {
        /// The block in violation.
        block: BlockAddr,
        /// Human-readable rendering of the directory entry.
        directory: String,
        /// The caches that actually hold valid copies, with their states.
        actual: Vec<(NodeId, CacheState)>,
    },
    /// A cache is stuck in a transient state outside a transaction.
    TransientAtRest {
        /// The block in violation.
        block: BlockAddr,
        /// The offending node.
        node: NodeId,
        /// Its (transient) state.
        state: CacheState,
    },
}

impl InvariantViolation {
    /// Lowercase kind name, for metric paths and trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            InvariantViolation::MultipleWriters { .. } => "multiple_writers",
            InvariantViolation::WriterWithReaders { .. } => "writer_with_readers",
            InvariantViolation::DirectoryMismatch { .. } => "directory_mismatch",
            InvariantViolation::TransientAtRest { .. } => "transient_at_rest",
        }
    }

    /// The block in violation.
    pub fn block(&self) -> BlockAddr {
        match self {
            InvariantViolation::MultipleWriters { block, .. }
            | InvariantViolation::WriterWithReaders { block, .. }
            | InvariantViolation::DirectoryMismatch { block, .. }
            | InvariantViolation::TransientAtRest { block, .. } => *block,
        }
    }

    /// A node implicated in the violation, if one is identifiable.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            InvariantViolation::MultipleWriters { writers, .. } => writers.first().copied(),
            InvariantViolation::WriterWithReaders { writer, .. } => Some(*writer),
            InvariantViolation::DirectoryMismatch { actual, .. } => actual.first().map(|(n, _)| *n),
            InvariantViolation::TransientAtRest { node, .. } => Some(*node),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::MultipleWriters { block, writers } => {
                write!(f, "{block}: multiple exclusive owners: {writers:?}")
            }
            InvariantViolation::WriterWithReaders {
                block,
                writer,
                readers,
            } => {
                write!(
                    f,
                    "{block}: owner {writer} coexists with readers {readers:?}"
                )
            }
            InvariantViolation::DirectoryMismatch {
                block,
                directory,
                actual,
            } => {
                write!(
                    f,
                    "{block}: directory says {directory} but caches hold {actual:?}"
                )
            }
            InvariantViolation::TransientAtRest { block, node, state } => {
                write!(f, "{block}: {node} left in transient state {state}")
            }
        }
    }
}

impl Error for InvariantViolation {}

/// Checks the coherence invariants for one block.
///
/// `cache_states` gives each node's state for the block, indexed by node.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_block(
    block: BlockAddr,
    dir: &DirState,
    cache_states: &[CacheState],
) -> Result<(), InvariantViolation> {
    let writers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Exclusive)
        .map(|(i, _)| NodeId::new(i))
        .collect();
    let readers: Vec<NodeId> = cache_states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == CacheState::Shared)
        .map(|(i, _)| NodeId::new(i))
        .collect();

    if let Some((i, &s)) = cache_states
        .iter()
        .enumerate()
        .find(|(_, s)| !s.is_stable())
    {
        return Err(InvariantViolation::TransientAtRest {
            block,
            node: NodeId::new(i),
            state: s,
        });
    }
    if writers.len() > 1 {
        return Err(InvariantViolation::MultipleWriters { block, writers });
    }
    if let (Some(&writer), false) = (writers.first(), readers.is_empty()) {
        return Err(InvariantViolation::WriterWithReaders {
            block,
            writer,
            readers,
        });
    }

    let mismatch = || InvariantViolation::DirectoryMismatch {
        block,
        directory: dir.to_string(),
        actual: cache_states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != CacheState::Invalid)
            .map(|(i, s)| (NodeId::new(i), *s))
            .collect(),
    };
    match dir {
        DirState::Idle => {
            if !writers.is_empty() || !readers.is_empty() {
                return Err(mismatch());
            }
        }
        DirState::Shared(set) => {
            if !writers.is_empty() || set.is_empty() {
                return Err(mismatch());
            }
            let actual: Vec<NodeId> = readers;
            if actual.len() != set.len() || actual.iter().any(|n| !set.contains(*n)) {
                return Err(mismatch());
            }
        }
        DirState::Exclusive(owner) => {
            if writers != [*owner] || !readers.is_empty() {
                return Err(mismatch());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeSet;

    fn b() -> BlockAddr {
        BlockAddr::new(7)
    }

    #[test]
    fn idle_with_no_copies_is_coherent() {
        let states = vec![CacheState::Invalid; 4];
        assert!(check_block(b(), &DirState::Idle, &states).is_ok());
    }

    #[test]
    fn exclusive_matches_single_writer() {
        let mut states = vec![CacheState::Invalid; 4];
        states[2] = CacheState::Exclusive;
        assert!(check_block(b(), &DirState::Exclusive(NodeId::new(2)), &states).is_ok());
    }

    #[test]
    fn shared_matches_reader_set() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Shared;
        states[3] = CacheState::Shared;
        let set: NodeSet = [NodeId::new(0), NodeId::new(3)].into_iter().collect();
        assert!(check_block(b(), &DirState::Shared(set), &states).is_ok());
    }

    #[test]
    fn two_writers_violate_swmr() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[1] = CacheState::Exclusive;
        assert!(matches!(
            check_block(b(), &DirState::Exclusive(NodeId::new(0)), &states),
            Err(InvariantViolation::MultipleWriters { .. })
        ));
    }

    #[test]
    fn writer_plus_reader_violates_swmr() {
        let mut states = vec![CacheState::Invalid; 4];
        states[0] = CacheState::Exclusive;
        states[1] = CacheState::Shared;
        assert!(matches!(
            check_block(b(), &DirState::Exclusive(NodeId::new(0)), &states),
            Err(InvariantViolation::WriterWithReaders { .. })
        ));
    }

    #[test]
    fn stale_directory_detected() {
        let mut states = vec![CacheState::Invalid; 4];
        states[1] = CacheState::Shared;
        // Directory thinks node 2 shares it instead.
        let set = NodeSet::singleton(NodeId::new(2));
        assert!(matches!(
            check_block(b(), &DirState::Shared(set), &states),
            Err(InvariantViolation::DirectoryMismatch { .. })
        ));
    }

    #[test]
    fn empty_shared_set_detected() {
        let states = vec![CacheState::Invalid; 4];
        assert!(matches!(
            check_block(b(), &DirState::Shared(NodeSet::new()), &states),
            Err(InvariantViolation::DirectoryMismatch { .. })
        ));
    }

    #[test]
    fn transient_at_rest_detected() {
        let mut states = vec![CacheState::Invalid; 4];
        states[3] = CacheState::IToS;
        assert!(matches!(
            check_block(b(), &DirState::Idle, &states),
            Err(InvariantViolation::TransientAtRest { .. })
        ));
    }

    #[test]
    fn violations_display() {
        let v = InvariantViolation::MultipleWriters {
            block: b(),
            writers: vec![NodeId::new(0), NodeId::new(1)],
        };
        assert!(v.to_string().contains("multiple exclusive owners"));
    }
}
