//! Exhaustive coverage of the protocol state machines: every
//! `(state, event)` pair is checked against the documented transition
//! table, so any future edit that adds, removes, or reroutes a transition
//! fails here explicitly.

use stache::cache::{on_message, on_processor_op, CacheAction};
use stache::directory::handle_request;
use stache::msg::ALL_MSG_TYPES;
use stache::{
    CacheState, DirState, MsgType, NodeId, NodeSet, ProcOp, ProtocolConfig, ProtocolError, Role,
};

const CACHE_STATES: [CacheState; 6] = [
    CacheState::Invalid,
    CacheState::Shared,
    CacheState::Exclusive,
    CacheState::IToS,
    CacheState::IToE,
    CacheState::SToE,
];

#[test]
fn processor_op_table_is_exactly_as_documented() {
    use CacheState::*;
    for state in CACHE_STATES {
        for op in [ProcOp::Read, ProcOp::Write] {
            let got = on_processor_op(state, op);
            let expected = match (state, op) {
                (Shared, ProcOp::Read) | (Exclusive, _) => Ok((state, CacheAction::Hit)),
                (Invalid, ProcOp::Read) => Ok((IToS, CacheAction::Send(MsgType::GetRoRequest))),
                (Invalid, ProcOp::Write) => Ok((IToE, CacheAction::Send(MsgType::GetRwRequest))),
                (Shared, ProcOp::Write) => Ok((SToE, CacheAction::Send(MsgType::UpgradeRequest))),
                _ => Err(ProtocolError::BusyBlock),
            };
            assert_eq!(got, expected, "({state}, {op})");
        }
    }
}

#[test]
fn cache_message_table_is_exactly_as_documented() {
    use CacheState::*;
    use MsgType::*;
    for state in CACHE_STATES {
        for mtype in ALL_MSG_TYPES {
            let got = on_message(state, mtype);
            if mtype.receiver_role() != Role::Cache {
                assert_eq!(
                    got,
                    Err(ProtocolError::WrongRole { mtype }),
                    "({state}, {mtype})"
                );
                continue;
            }
            let expected: Option<(CacheState, Option<MsgType>)> = match (state, mtype) {
                (IToS, GetRoResponse) => Some((Shared, None)),
                (IToS, GetRwResponse) => Some((Exclusive, None)), // speculative grant
                (IToE, GetRwResponse) => Some((Exclusive, None)),
                (SToE, UpgradeResponse) => Some((Exclusive, None)),
                (Shared, InvalRoRequest) => Some((Invalid, Some(InvalRoResponse))),
                (SToE, InvalRoRequest) => Some((IToE, Some(InvalRoResponse))), // upgrade race
                (Exclusive, InvalRwRequest) => Some((Invalid, Some(InvalRwResponse))),
                (Exclusive, DowngradeRequest) => Some((Shared, Some(DowngradeResponse))),
                _ => None,
            };
            match expected {
                Some(exp) => assert_eq!(got, Ok(exp), "({state}, {mtype})"),
                None => assert!(
                    matches!(got, Err(ProtocolError::UnexpectedCacheMessage { .. })),
                    "({state}, {mtype}) should be rejected, got {got:?}"
                ),
            }
        }
    }
}

#[test]
fn directory_accepts_exactly_the_request_vocabulary() {
    let cfg = ProtocolConfig::paper();
    let home = NodeId::new(0);
    let from = NodeId::new(5);
    let states = [
        DirState::Idle,
        DirState::Shared(NodeSet::singleton(NodeId::new(2))),
        DirState::Exclusive(NodeId::new(2)),
    ];
    for state in &states {
        for mtype in ALL_MSG_TYPES {
            let got = handle_request(state, home, from, mtype, &cfg);
            match mtype {
                // The three requests are serviceable (upgrade only from a
                // sharer, which `from` is not).
                MsgType::GetRoRequest | MsgType::GetRwRequest => {
                    assert!(got.is_ok(), "({state}, {mtype}): {got:?}");
                }
                MsgType::UpgradeRequest => {
                    assert!(got.is_err(), "non-sharer upgrade must fail");
                }
                // Responses have no standalone directory transition.
                MsgType::InvalRoResponse
                | MsgType::InvalRwResponse
                | MsgType::DowngradeResponse => {
                    assert!(
                        matches!(got, Err(ProtocolError::InconsistentDirectory { .. })),
                        "({state}, {mtype})"
                    );
                }
                // Cache-bound types are rejected by role.
                _ => {
                    assert_eq!(
                        got,
                        Err(ProtocolError::WrongRole { mtype }),
                        "({state}, {mtype})"
                    );
                }
            }
        }
    }
}

#[test]
fn every_state_and_message_displays() {
    for s in CACHE_STATES {
        assert!(!s.to_string().is_empty());
    }
    for m in ALL_MSG_TYPES {
        assert!(!m.to_string().is_empty());
        assert_eq!(m.is_request(), !m.is_response());
    }
    for d in [
        DirState::Idle,
        DirState::Shared(NodeSet::singleton(NodeId::new(1))),
        DirState::Exclusive(NodeId::new(1)),
    ] {
        assert!(!d.to_string().is_empty());
    }
}

#[test]
fn stable_and_transient_states_partition() {
    let stable: Vec<_> = CACHE_STATES.iter().filter(|s| s.is_stable()).collect();
    assert_eq!(stable.len(), 3);
    // Transient states accept exactly one message each (their response).
    for (state, accepted) in [
        (CacheState::IToS, 2), // get_ro_response + speculative get_rw_response
        (CacheState::IToE, 1),
        (CacheState::SToE, 2), // upgrade_response + racing inval_ro_request
    ] {
        let n = ALL_MSG_TYPES
            .iter()
            .filter(|m| m.receiver_role() == Role::Cache)
            .filter(|m| on_message(state, **m).is_ok())
            .count();
        assert_eq!(n, accepted, "{state}");
    }
}
