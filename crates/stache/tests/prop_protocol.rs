//! Property tests for the protocol substrate: the NodeSet behaves like a
//! set, identifier mappings round-trip, and the directory's outcomes
//! always leave the entry consistent with the request.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use stache::directory::{handle_local, handle_request, DirOutcome};
use stache::{BlockAddr, DirState, MsgType, NodeId, NodeSet, ProcOp, ProtocolConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// NodeSet agrees with a BTreeSet model under arbitrary operations.
    #[test]
    fn node_set_matches_model(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..100)) {
        let mut set = NodeSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (n, insert) in ops {
            let node = NodeId::new(n);
            if insert {
                prop_assert_eq!(set.insert(node), model.insert(n));
            } else {
                prop_assert_eq!(set.remove(node), model.remove(&n));
            }
        }
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        let members: Vec<usize> = set.iter().map(NodeId::index).collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(members, expected);
    }

    /// Block -> page -> first block stays within one page.
    #[test]
    fn block_page_consistency(block in 0u64..1_000_000, bpp in 1u64..512) {
        let b = BlockAddr::new(block);
        let page = b.page(bpp);
        let first = page.first_block(bpp);
        prop_assert!(first.number() <= block);
        prop_assert!(block < first.number() + bpp);
        prop_assert_eq!(first.page(bpp), page);
    }

    /// Tuple pack/unpack round-trips for every valid (node, type) pair.
    #[test]
    fn msg_codes_roundtrip(code in 0u8..12) {
        let t = MsgType::from_code(code).unwrap();
        prop_assert_eq!(t.code(), code);
    }

    /// Whatever request the directory services, the outcome's holder
    /// requests go only to current holders, never to the requester, never
    /// to the home, and the next state grants the requester its rights.
    #[test]
    fn directory_outcomes_are_consistent(
        holders in prop::collection::btree_set(0usize..8, 0..4),
        exclusive in any::<bool>(),
        from in 8usize..12,
        req_kind in 0usize..3,
        half_migratory in any::<bool>(),
    ) {
        let cfg = ProtocolConfig { half_migratory, ..ProtocolConfig::paper() };
        let home = NodeId::new(15);
        let from = NodeId::new(from);
        let state = if holders.is_empty() {
            DirState::Idle
        } else if exclusive {
            DirState::Exclusive(NodeId::new(*holders.iter().next().unwrap()))
        } else {
            DirState::Shared(holders.iter().map(|&n| NodeId::new(n)).collect())
        };
        let req = match req_kind {
            0 => MsgType::GetRoRequest,
            1 => MsgType::GetRwRequest,
            _ => MsgType::UpgradeRequest,
        };
        // Upgrades from a non-sharer are inconsistent by construction
        // (the requester pool 8..12 is disjoint from holders 0..8).
        let result = handle_request(&state, home, from, req, &cfg);
        if req == MsgType::UpgradeRequest {
            prop_assert!(result.is_err());
            return Ok(());
        }
        let DirOutcome { holder_requests, reply, next } = result.unwrap();
        let holders_before = state.holders();
        for (target, mtype) in &holder_requests {
            prop_assert!(holders_before.contains(*target), "{target} not a holder");
            prop_assert_ne!(*target, from);
            prop_assert_ne!(*target, home);
            prop_assert!(matches!(
                mtype,
                MsgType::InvalRoRequest | MsgType::InvalRwRequest | MsgType::DowngradeRequest
            ));
        }
        prop_assert!(reply.is_some(), "remote requests are always answered");
        match req {
            MsgType::GetRoRequest => prop_assert!(next.node_readable(from)),
            MsgType::GetRwRequest => prop_assert!(next.node_writable(from)),
            _ => unreachable!(),
        }
    }

    /// Local accesses never message the home itself, and always leave the
    /// home with sufficient rights.
    #[test]
    fn local_accesses_grant_home_rights(
        holders in prop::collection::btree_set(0usize..8, 0..4),
        exclusive in any::<bool>(),
        write in any::<bool>(),
    ) {
        let cfg = ProtocolConfig::paper();
        let home = NodeId::new(15);
        let state = if holders.is_empty() {
            DirState::Idle
        } else if exclusive {
            DirState::Exclusive(NodeId::new(*holders.iter().next().unwrap()))
        } else {
            DirState::Shared(holders.iter().map(|&n| NodeId::new(n)).collect())
        };
        let op = if write { ProcOp::Write } else { ProcOp::Read };
        match handle_local(&state, home, op, &cfg) {
            None => {
                // Already had rights.
                if write {
                    prop_assert!(state.node_writable(home));
                } else {
                    prop_assert!(state.node_readable(home));
                }
            }
            Some(out) => {
                prop_assert!(out.reply.is_none());
                for (target, _) in &out.holder_requests {
                    prop_assert_ne!(*target, home);
                }
                if write {
                    prop_assert!(out.next.node_writable(home));
                } else {
                    prop_assert!(out.next.node_readable(home));
                }
            }
        }
    }
}
