//! Exhaustive state-space exploration: a model-checking-style test that
//! enumerates *every* reachable protocol configuration for a small
//! machine (one block, up to four caches plus its home) by breadth-first
//! search over all possible processor operations, asserting the coherence
//! invariants in every reachable state.
//!
//! Unlike the randomised property tests, this is complete for the chosen
//! size: if any sequence of reads and writes (by any processors, in any
//! order) can reach an incoherent configuration, this test finds it.

use stache::cache::{on_message, on_processor_op, CacheAction};
use stache::directory::{handle_local, handle_request};
use stache::invariants::check_block;
use stache::{BlockAddr, CacheState, DirState, NodeId, ProcOp, ProtocolConfig};
use std::collections::{BTreeSet, VecDeque};

/// One global configuration: the directory entry plus every cache's state.
/// Node 0 is the home; its "cache state" is derived from the entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Config {
    dir: String, // canonical rendering (DirState is not Ord)
    caches: Vec<CacheStateOrd>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CacheStateOrd {
    Invalid,
    Shared,
    Exclusive,
}

impl From<CacheState> for CacheStateOrd {
    fn from(s: CacheState) -> Self {
        match s {
            CacheState::Invalid => CacheStateOrd::Invalid,
            CacheState::Shared => CacheStateOrd::Shared,
            CacheState::Exclusive => CacheStateOrd::Exclusive,
            other => panic!("transient state {other} at rest"),
        }
    }
}

/// Applies one complete, serialized transaction: processor `p` performs
/// `op`. Returns the successor configuration.
fn step(
    dir: &DirState,
    caches: &[CacheState],
    p: usize,
    op: ProcOp,
    cfg: &ProtocolConfig,
) -> (DirState, Vec<CacheState>) {
    let home = NodeId::new(0);
    let node = NodeId::new(p);
    let mut caches = caches.to_vec();

    if p == 0 {
        // Home access: handle_local; remote holders transition via FSM.
        match handle_local(dir, home, op, cfg) {
            None => (dir.clone(), caches),
            Some(out) => {
                for (target, mtype) in out.holder_requests {
                    let (next, reply) = on_message(caches[target.index()], mtype)
                        .expect("holders accept invalidations");
                    assert!(reply.is_some());
                    caches[target.index()] = next;
                }
                (out.next, caches)
            }
        }
    } else {
        let (transient, action) = on_processor_op(caches[p], op).expect("stable states only");
        match action {
            CacheAction::Hit => (dir.clone(), caches),
            CacheAction::Send(req) => {
                let out = handle_request(dir, home, node, req, cfg)
                    .expect("serialized requests are consistent");
                for (target, mtype) in out.holder_requests {
                    let (next, reply) = on_message(caches[target.index()], mtype)
                        .expect("holders accept invalidations");
                    assert!(reply.is_some());
                    caches[target.index()] = next;
                }
                let reply = out.reply.expect("remote requests are replied to");
                let (stable, extra) = on_message(transient, reply).expect("grant accepted");
                assert!(extra.is_none());
                caches[p] = stable;
                (out.next, caches)
            }
        }
    }
}

/// The home's effective state, derived from the directory entry.
fn home_state(dir: &DirState) -> CacheState {
    let home = NodeId::new(0);
    if dir.node_writable(home) {
        CacheState::Exclusive
    } else if dir.node_readable(home) {
        CacheState::Shared
    } else {
        CacheState::Invalid
    }
}

fn canonical(dir: &DirState, caches: &[CacheState]) -> Config {
    Config {
        dir: dir.to_string(),
        caches: caches.iter().map(|&s| CacheStateOrd::from(s)).collect(),
    }
}

fn explore(nodes: usize, half_migratory: bool) -> usize {
    let cfg = ProtocolConfig {
        nodes,
        half_migratory,
        ..ProtocolConfig::paper()
    };
    let block = BlockAddr::new(0);
    let initial_dir = DirState::Idle;
    let initial_caches = vec![CacheState::Invalid; nodes];

    let mut seen: BTreeSet<Config> = BTreeSet::new();
    let mut frontier: VecDeque<(DirState, Vec<CacheState>)> = VecDeque::new();
    seen.insert(canonical(&initial_dir, &initial_caches));
    frontier.push_back((initial_dir, initial_caches));

    while let Some((dir, caches)) = frontier.pop_front() {
        // Invariant check: the home's copy is the entry itself.
        let mut full = caches.clone();
        full[0] = home_state(&dir);
        check_block(block, &dir, &full).unwrap_or_else(|v| {
            panic!("incoherent state reached: {v} (dir {dir}, caches {caches:?})")
        });

        for p in 0..nodes {
            for op in [ProcOp::Read, ProcOp::Write] {
                let (ndir, ncaches) = step(&dir, &caches, p, op, &cfg);
                let key = canonical(&ndir, &ncaches);
                if seen.insert(key) {
                    frontier.push_back((ndir, ncaches));
                }
            }
        }
    }
    seen.len()
}

#[test]
fn every_reachable_state_is_coherent_half_migratory() {
    let states = explore(4, true);
    // Sanity: the space is neither trivial nor unbounded.
    assert!(states > 10, "only {states} states explored");
    assert!(states < 1000, "state space exploded: {states}");
}

#[test]
fn every_reachable_state_is_coherent_dash_style() {
    let states = explore(4, false);
    assert!(states > 10);
    assert!(states < 1000);
}

#[test]
fn five_node_space_is_also_clean() {
    let states = explore(5, true);
    assert!(states > 20, "only {states} states");
}

/// The reachable-state counts themselves are protocol signatures: any
/// change to the FSMs that silently adds or removes reachable
/// configurations shows up here.
#[test]
fn state_counts_are_stable() {
    // 3 nodes (home + 2 remotes), half-migratory. States: dir entry and
    // remote-cache combinations consistent with it.
    let hm = explore(3, true);
    let dash = explore(3, false);
    // DASH-style downgrades add owner+reader sharing configurations that
    // half-migratory can never reach... via local reads it can; the two
    // variants reach the same *stable* configurations for this size.
    assert_eq!(hm, dash, "hm {hm} vs dash {dash}");
}
