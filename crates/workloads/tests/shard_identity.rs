//! Byte-identity of the sharded engine (DESIGN.md §6h).
//!
//! Two pinned properties:
//!
//! 1. **Shard-count invariance** — for every workload and every shard
//!    count `k`, `ShardedMachine` output (trace, stats, tallies, flight
//!    recorder, full obs snapshot JSON) is byte-identical to the
//!    `shards = 1` sequential fallback. Partitioning is an execution
//!    strategy, never a semantics change.
//!
//! 2. **Engine equivalence** — on the clean fabric the sharded engine
//!    reproduces the `ConcurrentMachine` exactly: same trace records,
//!    same statistics, same flight-recorder stream, same final
//!    cache/directory states, and an obs snapshot that agrees on every
//!    metric the concurrent engine exports (the sharded snapshot adds
//!    only its own `simx.shard.*` keys).

use simx::concurrent::{self, ConcurrentMachine};
use simx::{ShardedMachine, SystemConfig};
use stache::ProtocolConfig;
use workloads::{run_sharded, small_suite, Workload};

fn concurrent_run(w: &mut dyn Workload) -> ConcurrentMachine {
    let name = w.name();
    let iterations = w.iterations();
    concurrent::run_workload(
        name,
        iterations,
        |it| w.plan(it),
        ProtocolConfig::paper(),
        SystemConfig::paper(),
    )
    .unwrap_or_else(|e| panic!("{name} concurrent run failed: {e}"))
}

fn sharded_run(w: &mut dyn Workload, shards: usize) -> ShardedMachine {
    let name = w.name();
    run_sharded(w, ProtocolConfig::paper(), SystemConfig::paper(), shards)
        .unwrap_or_else(|e| panic!("{name} sharded({shards}) run failed: {e}"))
}

/// Every shard count produces the same snapshot JSON, byte for byte.
#[test]
fn shard_count_never_changes_output() {
    for k in [2, 4, 7, 16] {
        for (mut base, mut multi) in small_suite().into_iter().zip(small_suite()) {
            let name = base.name();
            let one = sharded_run(base.as_mut(), 1);
            let many = sharded_run(multi.as_mut(), k);
            assert_eq!(
                one.obs_snapshot().to_json(),
                many.obs_snapshot().to_json(),
                "{name}: obs snapshot diverges at {k} shards"
            );
            assert_eq!(
                one.trace().records(),
                many.trace().records(),
                "{name}: trace diverges at {k} shards"
            );
            assert_eq!(
                one.flight_events(),
                many.flight_events(),
                "{name}: flight recorder diverges at {k} shards"
            );
            assert_eq!(
                one.execution_time_ns(),
                many.execution_time_ns(),
                "{name}: execution time diverges at {k} shards"
            );
        }
    }
}

/// The sharded engine reproduces the concurrent engine's observable
/// output exactly on every small-suite workload.
#[test]
fn sharded_matches_concurrent_engine() {
    for (mut cw, mut sw) in small_suite().into_iter().zip(small_suite()) {
        let name = cw.name();
        let conc = concurrent_run(cw.as_mut());
        let shar = sharded_run(sw.as_mut(), 4);

        assert_eq!(
            conc.trace().records(),
            shar.trace().records(),
            "{name}: trace records differ"
        );
        assert_eq!(conc.stats(), &shar.stats(), "{name}: stats differ");
        assert_eq!(
            conc.flight_events(),
            shar.flight_events(),
            "{name}: flight recorder differs"
        );
        assert_eq!(
            conc.execution_time_ns(),
            shar.execution_time_ns(),
            "{name}: execution time differs"
        );

        // The sharded snapshot is a superset: every metric the
        // concurrent engine exports appears with an identical value.
        let csnap = conc.obs_snapshot();
        let ssnap = shar.obs_snapshot();
        for key in csnap.names() {
            assert_eq!(
                csnap.get(&key),
                ssnap.get(&key),
                "{name}: snapshot metric {key} differs"
            );
        }

        // Final protocol state: identical per-block cache and directory
        // pictures for every block the run touched.
        for block in conc.touched_blocks() {
            assert_eq!(
                conc.cache_states_for(block),
                shar.cache_states_for(block),
                "{name}: cache states differ for {block:?}"
            );
        }
    }
}

/// The micro-workloads from the simcheck/golden tier also agree — the
/// smallest configs exercise the local-marker and upgrade paths.
#[test]
fn micro_workloads_match_across_engines() {
    use workloads::micro::{Migratory, ProducerConsumer};
    let fresh = || -> Vec<Box<dyn Workload>> {
        vec![
            Box::new(ProducerConsumer::default()),
            Box::new(Migratory::default()),
        ]
    };
    for (i, mut w) in fresh().into_iter().enumerate() {
        let name = w.name();
        let conc = concurrent_run(w.as_mut());
        for k in [1, 2, 5] {
            let mut again = fresh().remove(i);
            let shar = sharded_run(again.as_mut(), k);
            assert_eq!(
                conc.trace().records(),
                shar.trace().records(),
                "{name}: trace differs at {k} shards"
            );
            assert_eq!(
                conc.stats(),
                &shar.stats(),
                "{name}: stats differ at {k} shards"
            );
        }
    }
}
