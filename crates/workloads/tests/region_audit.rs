//! Region audit: the five generators must keep their data structures in
//! disjoint block-address regions (a collision would silently merge two
//! structures' predictor histories).

use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite};

#[test]
fn each_workload_uses_disjoint_regions_per_structure() {
    // Every block address groups into a region by its 2^20 bucket; within
    // one workload, each region must be used consistently (all regions
    // observed are the documented ones: 0..=4).
    for mut w in small_suite() {
        let t = run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        for b in t.blocks() {
            let region = b.number() >> 20;
            assert!(
                region <= 4,
                "{}: block {b} in unexpected region {region}",
                w.name()
            );
        }
    }
}

#[test]
fn quiet_regions_never_gain_patterns() {
    // Quiet blocks are touched once: no block in the quiet region may
    // accumulate more than a fill's worth of messages.
    for mut w in small_suite() {
        let t = run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        for b in t.blocks() {
            if b.number() >> 20 == 3 {
                let msgs = t.for_block(b).count();
                assert!(
                    msgs <= 2,
                    "{}: quiet block {b} saw {msgs} messages",
                    w.name()
                );
            }
        }
    }
}
