//! Property tests for the workload generators: determinism, node-range
//! validity, and end-to-end coherence on the simulated machine.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite, Workload};

fn suite_index() -> impl Strategy<Value = usize> {
    0usize..5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// plan(i) is a pure function of (workload parameters, i).
    #[test]
    fn plans_are_reproducible(idx in suite_index(), iteration in 0u32..6) {
        let mut a = small_suite().remove(idx);
        let mut b = small_suite().remove(idx);
        // Build some earlier plans on one side only: must not matter.
        for i in 0..iteration {
            let _ = a.plan(i);
        }
        prop_assert_eq!(a.plan(iteration), b.plan(iteration));
    }

    /// Every access names a node inside the machine, and no phase is
    /// issued for a machine bigger than the workload declares.
    #[test]
    fn accesses_stay_in_range(idx in suite_index(), iteration in 0u32..6) {
        let mut w = small_suite().remove(idx);
        let nodes = w.nodes();
        let plan = w.plan(iteration);
        for phase in &plan.phases {
            prop_assert!(phase.per_node.len() <= nodes);
            for (node, accesses) in phase.per_node.iter().enumerate() {
                for a in accesses {
                    prop_assert_eq!(a.node.index(), node, "access filed under wrong node");
                }
            }
        }
    }

    /// Any prefix of any benchmark runs coherently on the machine.
    #[test]
    fn prefixes_run_coherently(idx in suite_index(), iterations in 1u32..4) {
        struct Prefix {
            inner: Box<dyn Workload>,
            iterations: u32,
        }
        impl Workload for Prefix {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn nodes(&self) -> usize {
                self.inner.nodes()
            }
            fn iterations(&self) -> u32 {
                self.iterations
            }
            fn plan(&mut self, iteration: u32) -> simx::IterationPlan {
                self.inner.plan(iteration)
            }
        }
        let mut w = Prefix { inner: small_suite().remove(idx), iterations };
        let trace = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper())
            .expect("coherent run");
        // Iteration stamps never exceed the requested prefix.
        for r in trace.records() {
            prop_assert!(r.iteration < iterations);
        }
    }
}
