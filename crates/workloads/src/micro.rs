//! Microbenchmarks: the paper's worked examples as runnable workloads.
//!
//! * [`ProducerConsumer`] — Figure 2's `shared_counter`: a producer stores
//!   to a block, one or more consumers load it, repeatedly. Generates the
//!   textbook signatures Cosmos learns in Figure 3.
//! * [`Migratory`] — a block updated inside a critical section by each
//!   processor in turn; generates Figure 8(b)'s migratory trigger
//!   signature.

use crate::Workload;
use simx::{Access, IterationPlan, Phase};
use stache::placement::block_homed_at;
use stache::{BlockAddr, NodeId, ProtocolConfig};

/// Figure 2's producer-consumer microbenchmark.
///
/// Each iteration the producer stores to every block, then every consumer
/// loads every block. Blocks live on pages homed at a third node so both
/// producer and consumers are remote (the configuration the paper's
/// Figure 2/3 walkthrough assumes).
#[derive(Debug, Clone)]
pub struct ProducerConsumer {
    /// The producing processor.
    pub producer: NodeId,
    /// The consuming processors.
    pub consumers: Vec<NodeId>,
    /// The directory (home) node for the shared blocks.
    pub home: NodeId,
    /// Number of shared blocks.
    pub blocks: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Machine size.
    pub nodes: usize,
}

impl Default for ProducerConsumer {
    fn default() -> Self {
        ProducerConsumer {
            producer: NodeId::new(1),
            consumers: vec![NodeId::new(2)],
            home: NodeId::new(0),
            blocks: 4,
            iterations: 20,
            nodes: 16,
        }
    }
}

impl ProducerConsumer {
    /// A two-consumer variant (the paper's §3.1 extension, where the
    /// consumers' `get_ro_request`s can arrive in either order).
    pub fn two_consumers() -> Self {
        ProducerConsumer {
            consumers: vec![NodeId::new(2), NodeId::new(3)],
            ..ProducerConsumer::default()
        }
    }

    fn block(&self, i: usize) -> BlockAddr {
        let cfg = ProtocolConfig {
            nodes: self.nodes,
            ..ProtocolConfig::paper()
        };
        block_homed_at(self.home, 0, i as u64, &cfg)
    }
}

impl Workload for ProducerConsumer {
    fn name(&self) -> &'static str {
        "producer-consumer"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, _iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        let mut produce = Phase::new(self.nodes);
        for i in 0..self.blocks {
            produce.push(Access::write(self.producer, self.block(i)));
        }
        plan.push(produce);
        let mut consume = Phase::new(self.nodes);
        for i in 0..self.blocks {
            for &c in &self.consumers {
                consume.push(Access::read(c, self.block(i)));
            }
        }
        plan.push(consume);
        plan
    }
}

/// A migratory microbenchmark: `writers` take turns executing an atomic
/// read-modify-write on each block every iteration (a critical-section
/// update), producing Figure 8(b)'s `⟨get_ro, upgrade, inval_rw⟩`
/// signature at each cache.
#[derive(Debug, Clone)]
pub struct Migratory {
    /// The processors the blocks migrate among, in turn order.
    pub writers: Vec<NodeId>,
    /// The directory (home) node for the blocks.
    pub home: NodeId,
    /// Number of migrating blocks.
    pub blocks: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Machine size.
    pub nodes: usize,
}

impl Default for Migratory {
    fn default() -> Self {
        Migratory {
            writers: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            home: NodeId::new(0),
            blocks: 4,
            iterations: 20,
            nodes: 16,
        }
    }
}

impl Migratory {
    fn block(&self, i: usize) -> BlockAddr {
        let cfg = ProtocolConfig {
            nodes: self.nodes,
            ..ProtocolConfig::paper()
        };
        block_homed_at(self.home, 0, i as u64, &cfg)
    }
}

impl Workload for Migratory {
    fn name(&self) -> &'static str {
        "migratory"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, _iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        // One phase per writer turn keeps the critical-section ordering
        // strict: w0 updates every block, then w1, then w2, ...
        for &w in &self.writers {
            let mut phase = Phase::new(self.nodes);
            for i in 0..self.blocks {
                phase.push(Access::rmw(w, self.block(i)));
            }
            plan.push(phase);
        }
        plan
    }
}

/// Two processors alternately updating the same block — the classic
/// false-sharing ping-pong. The block migrates back and forth forever,
/// producing a two-party migratory signature that any depth-1 predictor
/// should learn perfectly.
#[derive(Debug, Clone)]
pub struct PingPong {
    /// The two contenders.
    pub pair: (NodeId, NodeId),
    /// The directory (home) node for the block.
    pub home: NodeId,
    /// Number of ping-ponging blocks.
    pub blocks: usize,
    /// Updates per processor per iteration.
    pub updates_per_iteration: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Machine size.
    pub nodes: usize,
}

impl Default for PingPong {
    fn default() -> Self {
        PingPong {
            pair: (NodeId::new(1), NodeId::new(2)),
            home: NodeId::new(0),
            blocks: 2,
            updates_per_iteration: 4,
            iterations: 15,
            nodes: 16,
        }
    }
}

impl PingPong {
    fn block(&self, i: usize) -> BlockAddr {
        let cfg = ProtocolConfig {
            nodes: self.nodes,
            ..ProtocolConfig::paper()
        };
        block_homed_at(self.home, 1, i as u64, &cfg)
    }
}

impl Workload for PingPong {
    fn name(&self) -> &'static str {
        "ping-pong"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, _iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        for _ in 0..self.updates_per_iteration {
            for node in [self.pair.0, self.pair.1] {
                let mut phase = Phase::new(self.nodes);
                for i in 0..self.blocks {
                    phase.push(Access::rmw(node, self.block(i)));
                }
                plan.push(phase);
            }
        }
        plan
    }
}

/// An all-to-all exchange: every processor publishes into its own block,
/// then reads every other processor's block — the communication step of
/// FFT-style transposes. Directories see `nodes - 1` consumers per block,
/// arriving in a stable order.
#[derive(Debug, Clone)]
pub struct AllToAll {
    /// Blocks published per processor.
    pub blocks_per_proc: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Machine size (all nodes participate).
    pub nodes: usize,
}

impl Default for AllToAll {
    fn default() -> Self {
        AllToAll {
            blocks_per_proc: 1,
            iterations: 10,
            nodes: 16,
        }
    }
}

impl AllToAll {
    fn block(&self, owner: usize, j: usize) -> BlockAddr {
        // A dedicated region clear of the other micros.
        BlockAddr::new((4 << 20) + (owner * self.blocks_per_proc + j) as u64)
    }
}

impl Workload for AllToAll {
    fn name(&self) -> &'static str {
        "all-to-all"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, _iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        let mut publish = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.blocks_per_proc {
                publish.push(Access::write(NodeId::new(owner), self.block(owner, j)));
            }
        }
        plan.push(publish);
        let mut exchange = Phase::new(self.nodes);
        for reader in 0..self.nodes {
            for owner in 0..self.nodes {
                if owner == reader {
                    continue;
                }
                for j in 0..self.blocks_per_proc {
                    exchange.push(Access::read(NodeId::new(reader), self.block(owner, j)));
                }
            }
        }
        plan.push(exchange);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::{MsgType, Role};

    #[test]
    fn producer_consumer_generates_figure_two_signature() {
        let mut w = ProducerConsumer {
            blocks: 1,
            iterations: 5,
            ..Default::default()
        };
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        // Producer's cache stream (after iteration 0's cold start) cycles
        // get_rw_response -> inval_rw_request, exactly Figure 2(b).
        let producer_msgs: Vec<MsgType> = t
            .for_receiver(NodeId::new(1), Role::Cache)
            .map(|r| r.mtype)
            .collect();
        assert!(producer_msgs.len() >= 8);
        for pair in producer_msgs.chunks(2) {
            assert_eq!(pair[0], MsgType::GetRwResponse);
            if pair.len() == 2 {
                assert_eq!(pair[1], MsgType::InvalRwRequest);
            }
        }
        // Consumer's stream cycles get_ro_response -> inval_ro_request.
        let consumer_msgs: Vec<MsgType> = t
            .for_receiver(NodeId::new(2), Role::Cache)
            .map(|r| r.mtype)
            .collect();
        assert_eq!(consumer_msgs[0], MsgType::GetRoResponse);
        assert_eq!(consumer_msgs[1], MsgType::InvalRoRequest);
    }

    #[test]
    fn migratory_generates_figure_eight_signature() {
        let mut w = Migratory {
            blocks: 1,
            iterations: 4,
            ..Default::default()
        };
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        // Each writer's cache sees get_ro_response, upgrade_response,
        // inval_rw_request repeating (after its cold start).
        let msgs: Vec<MsgType> = t
            .for_receiver(NodeId::new(2), Role::Cache)
            .map(|r| r.mtype)
            .collect();
        let cycle = [
            MsgType::GetRoResponse,
            MsgType::UpgradeResponse,
            MsgType::InvalRwRequest,
        ];
        assert!(msgs.len() >= 9);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(*m, cycle[i % 3], "at index {i}: {msgs:?}");
        }
    }

    #[test]
    fn ping_pong_is_perfectly_learnable() {
        use cosmos_eval_shim::depth1_overall;
        let mut w = PingPong::default();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        assert!(t.len() > 100);
        let acc = depth1_overall(&t);
        assert!(acc > 0.9, "ping-pong depth-1 accuracy {acc}");
    }

    #[test]
    fn all_to_all_floods_the_directory() {
        let mut w = AllToAll::default();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        // Each block's directory sees get_ro_requests from (nearly) every
        // other node each iteration.
        let dir_reads = t
            .records()
            .iter()
            .filter(|r| r.mtype == MsgType::GetRoRequest)
            .count();
        assert!(dir_reads as u32 >= (w.nodes as u32 - 2) * w.nodes as u32 * (w.iterations - 1));
    }

    /// A tiny independent re-implementation of depth-1 Cosmos scoring.
    /// `cosmos` already dev-depends on this crate, so dev-depending back
    /// would create a cycle; the shim also doubles as an external check
    /// that the real evaluator isn't grading its own homework.
    mod cosmos_eval_shim {
        use std::collections::HashMap;
        use trace::TraceBundle;

        pub fn depth1_overall(t: &TraceBundle) -> f64 {
            type Key = (stache::NodeId, stache::Role, stache::BlockAddr);
            let mut last: HashMap<Key, (stache::NodeId, stache::MsgType)> = HashMap::new();
            let mut pht: HashMap<
                (Key, (stache::NodeId, stache::MsgType)),
                (stache::NodeId, stache::MsgType),
            > = HashMap::new();
            let (mut hits, mut total) = (0u64, 0u64);
            for r in t.records() {
                let key = (r.node, r.role, r.block);
                let tuple = (r.sender, r.mtype);
                total += 1;
                if let Some(prev) = last.get(&key).copied() {
                    if pht.get(&(key, prev)) == Some(&tuple) {
                        hits += 1;
                    }
                    pht.insert((key, prev), tuple);
                }
                last.insert(key, tuple);
            }
            hits as f64 / total.max(1) as f64
        }
    }

    #[test]
    fn two_consumer_variant_runs() {
        let mut w = ProducerConsumer::two_consumers();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        // Both consumers' requests reach the directory each iteration.
        let dir_reqs = t
            .for_receiver(NodeId::new(0), Role::Directory)
            .filter(|r| r.mtype == MsgType::GetRoRequest)
            .count();
        assert_eq!(dir_reqs as u32, 2 * w.iterations * w.blocks as u32);
    }
}
