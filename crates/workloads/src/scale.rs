//! A streaming scale workload for 1k-node, millions-of-blocks runs
//! (DESIGN.md §6h).
//!
//! The five paper benchmarks are written for 16 processors and keep
//! their whole block population live; this generator is written for the
//! sharded engine's scale sweeps (64–1024 nodes). Three design rules:
//!
//! * **Streaming block population.** Each iteration touches a *fresh*
//!   slice of the block space — private writes land on never-seen
//!   blocks, handoff blocks are written once and read once — so the
//!   total distinct-block count grows linearly with iterations into the
//!   millions while the generator itself keeps O(1) state and each
//!   [`IterationPlan`] stays O(nodes × accesses-per-node). Nothing
//!   proportional to the *cumulative* population is ever materialised.
//! * **Local/remote mix with known shape.** Per node and iteration:
//!   `private_per_node` streaming writes homed on the writer (directory
//!   churn, zero messages), one ring handoff (producer writes locally,
//!   the next node reads it the following iteration — two messages),
//!   and one migratory update of a persistent block homed on the next
//!   ring neighbour (four-to-six messages steady-state). Message counts
//!   are therefore analytic, which the scale CSV goldens pin.
//! * **Determinism without a seed.** The access stream is a closed-form
//!   function of (node, iteration); two constructions of the same shape
//!   are identical, so sweep cells are reproducible and diffable.

use crate::Workload;
use simx::{Access, IterationPlan, Phase};
use stache::placement::block_homed_at;
use stache::{BlockAddr, NodeId, ProtocolConfig};

/// Streaming scale generator; see the module docs for the access shape.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Processors (64–1024 for the paper-scale sweeps).
    pub nodes: usize,
    /// Fresh private blocks each node writes per iteration.
    pub private_per_node: usize,
    /// Iterations; total distinct blocks ≈ `nodes × iterations ×
    /// (private_per_node + 1)`.
    pub iterations: u32,
    proto: ProtocolConfig,
}

impl Scale {
    /// A scale workload of the given shape, on the paper's protocol
    /// parameters widened to `nodes`.
    pub fn new(nodes: usize, private_per_node: usize, iterations: u32) -> Self {
        assert!(nodes >= 2, "the ring patterns need at least two nodes");
        let proto = ProtocolConfig {
            nodes,
            ..ProtocolConfig::paper()
        };
        Scale {
            nodes,
            private_per_node,
            iterations,
            proto,
        }
    }

    /// The CI smoke shape: 64 nodes, small block population, seconds to
    /// run in debug builds.
    pub fn small() -> Self {
        Scale::new(64, 4, 4)
    }

    /// The protocol configuration sized for this workload.
    pub fn proto(&self) -> ProtocolConfig {
        self.proto.clone()
    }

    /// Total distinct blocks the full run touches.
    pub fn total_blocks(&self) -> u64 {
        self.nodes as u64 * self.iterations as u64 * (self.private_per_node as u64 + 1)
            + self.nodes as u64
    }

    /// A fresh private block for `(node, iteration, i)`, homed on `node`.
    fn private_block(&self, node: usize, iteration: u32, i: usize) -> BlockAddr {
        let per_iter = self.private_per_node as u64 + 1;
        let slot = 1 + iteration as u64 * per_iter + i as u64;
        block_homed_at(NodeId::new(node), slot, 0, &self.proto)
    }

    /// The handoff block node `node` produces in `iteration` (slot 0 of
    /// the iteration's page group, homed on the producer).
    fn handoff_block(&self, node: usize, iteration: u32) -> BlockAddr {
        let per_iter = self.private_per_node as u64 + 1;
        block_homed_at(
            NodeId::new(node),
            1 + iteration as u64 * per_iter,
            1,
            &self.proto,
        )
    }

    /// The persistent migratory block homed on `node`, written by its
    /// ring predecessor every iteration.
    fn migratory_block(&self, node: usize) -> BlockAddr {
        block_homed_at(NodeId::new(node), 0, 0, &self.proto)
    }
}

impl Workload for Scale {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();

        // Phase 1 — streaming work: every node writes its fresh private
        // slice (local directory misses, no messages), produces this
        // iteration's handoff block (also local), and updates the
        // migratory block homed on its ring successor (remote write).
        let mut work = Phase::new(self.nodes);
        for node in 0..self.nodes {
            let n = NodeId::new(node);
            for i in 0..self.private_per_node {
                work.push(Access::write(n, self.private_block(node, iteration, i)));
            }
            work.push(Access::write(n, self.handoff_block(node, iteration)));
            let succ = (node + 1) % self.nodes;
            work.push(Access::write(n, self.migratory_block(succ)));
        }
        plan.push(work);

        // Phase 2 — consumption: every node reads the handoff block its
        // ring predecessor produced *last* iteration (remote read of a
        // block never touched again: the streaming producer-consumer
        // pattern).
        if iteration > 0 {
            let mut consume = Phase::new(self.nodes);
            for node in 0..self.nodes {
                let pred = (node + self.nodes - 1) % self.nodes;
                consume.push(Access::read(
                    NodeId::new(node),
                    self.handoff_block(pred, iteration - 1),
                ));
            }
            plan.push(consume);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::placement::home_of_block;

    #[test]
    fn blocks_are_fresh_and_homed_as_documented() {
        let s = Scale::new(64, 4, 8);
        let mut seen = std::collections::HashSet::new();
        let proto = s.proto();
        for it in 0..s.iterations {
            for node in 0..s.nodes {
                for i in 0..s.private_per_node {
                    let b = s.private_block(node, it, i);
                    assert!(seen.insert(b), "private block reused: {b:?}");
                    assert_eq!(home_of_block(b, &proto), NodeId::new(node));
                }
                let h = s.handoff_block(node, it);
                assert!(seen.insert(h), "handoff block reused: {h:?}");
                assert_eq!(home_of_block(h, &proto), NodeId::new(node));
            }
        }
        for node in 0..s.nodes {
            let m = s.migratory_block(node);
            assert!(seen.insert(m), "migratory block collides: {m:?}");
            assert_eq!(home_of_block(m, &proto), NodeId::new(node));
        }
        assert_eq!(seen.len() as u64, s.total_blocks());
    }

    #[test]
    fn plans_are_deterministic_and_bounded() {
        let mut a = Scale::new(64, 4, 4);
        let mut b = Scale::new(64, 4, 4);
        for it in 0..4 {
            let pa = a.plan(it);
            assert_eq!(pa, b.plan(it));
            let accesses: usize = pa.phases.iter().map(|p| p.len()).sum();
            // O(nodes × per-node), never O(cumulative population).
            assert!(accesses <= 64 * (4 + 3));
        }
    }

    #[test]
    fn small_shape_runs_clean_on_the_sharded_engine() {
        let mut w = Scale::small();
        let proto = w.proto();
        let m = crate::run_sharded(&mut w, proto, simx::SystemConfig::paper(), 4).unwrap();
        let stats = m.stats();
        // Handoff consumption: 64 ring reads × 3 consuming iterations ×
        // 2 messages, plus migratory traffic.
        assert!(stats.messages_total() > 0);
        assert_eq!(stats.accesses(), 64 * (4 + 2) * 4 + 64 * 3);
    }
}
