//! **dsmc** — discrete-simulation Monte Carlo gas dynamics (paper §5.2,
//! §6.1, Table 8).
//!
//! Three documented behaviours are modelled:
//!
//! 1. **Buffer handoffs** — at the end of each iteration, particles move
//!    between neighbouring processors via shared buffers: the producer
//!    *writes without reading first* (so the half-migratory optimisation
//!    helps — invalidating the producer avoids a directory handshake), then
//!    the consumer reads. This classical producer-consumer traffic gives
//!    dsmc the suite's highest accuracy.
//! 2. **Contended buffers** — "in some cases multiple processors compete
//!    for exclusive access to a shared buffer", creating oscillating
//!    patterns. Each contended block has a per-block stabilisation
//!    iteration (front-loaded, tail to ~320): before it, fresh
//!    competitors each iteration read and write the buffer head
//!    *non-atomically*, so rivals' invalidations break the read/write
//!    pairs (Table 8's near-zero early hit rates); after it the writer
//!    rotation is fixed — A,B,A,C with two-message refills, resolvable
//!    exactly at depth 3 (Table 5's directory jump). The churn's falling
//!    traffic share reproduces Table 8's falling reference columns and
//!    the ~300-iteration time-to-adapt of §6.2.
//! 3. **Rarely-touched cells** — a large population of blocks referenced
//!    only once or twice in the whole run, which keeps dsmc's PHT/MHR
//!    ratio below one (Table 7) since blocks with at most `depth`
//!    references never allocate a PHT.

use crate::rng::{iter_rng, permutation};
use crate::Workload;
use simx::{Access, IterationPlan, Phase};
use stache::{BlockAddr, NodeId};

/// Block-address region for pairwise handoff buffers.
const BUFFER_REGION: u64 = 0;
/// Block-address region for contended buffers.
const CONTENDED_REGION: u64 = 1 << 20;
/// Block-address region for rarely-touched cells.
const RARE_REGION: u64 = 2 << 20;

/// The dsmc workload generator.
#[derive(Debug, Clone)]
pub struct Dsmc {
    /// Machine size.
    pub nodes: usize,
    /// Handoff-buffer blocks per neighbour pair.
    pub buffer_blocks: usize,
    /// Contended buffer blocks refilled with plain writes (their
    /// repeated-writer rotation is only resolvable at history depth 3).
    pub contended: usize,
    /// Contended buffer blocks updated with read-modify-writes (their
    /// rotation resolves at depth 2; these produce Table 8's
    /// `get_ro`/`upgrade`/`inval_rw` transitions).
    pub contended_rmw: usize,
    /// Writers competing for each contended block.
    pub contention_writers: usize,
    /// Latest iteration at which a contended block stabilises.
    pub stabilize_by: u32,
    /// Rarely-touched cell blocks.
    pub rare_blocks: usize,
    /// Iterations.
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Dsmc {
    fn default() -> Self {
        Dsmc {
            nodes: 16,
            buffer_blocks: 2,
            contended: 48,
            contended_rmw: 16,
            contention_writers: 3,
            stabilize_by: 320,
            rare_blocks: 6000,
            iterations: 400,
            seed: 0xD51C,
        }
    }
}

impl Dsmc {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Dsmc {
            buffer_blocks: 2,
            contended: 4,
            contended_rmw: 2,
            stabilize_by: 10,
            rare_blocks: 60,
            iterations: 15,
            ..Dsmc::default()
        }
    }

    fn buffer_block(&self, pair: usize, j: usize) -> BlockAddr {
        BlockAddr::new(BUFFER_REGION + (pair * self.buffer_blocks + j) as u64)
    }

    fn contended_block(&self, k: usize) -> BlockAddr {
        BlockAddr::new(CONTENDED_REGION + k as u64)
    }

    /// The iteration at which contended block `k` settles into its fixed
    /// writer rotation. Front-loaded (cubic transform of a uniform draw):
    /// most buffers settle quickly, a tail takes until ~`stabilize_by`,
    /// which reproduces the ~300-iteration time-to-adapt of §6.2.
    fn stabilize_iteration(&self, k: usize) -> u32 {
        let mut rng = iter_rng(self.seed, 0, 100 + k as u64);
        let u = rng.gen_f64();
        1 + (f64::from(self.stabilize_by.max(1) - 1) * u.powi(6)) as u32
    }

    /// The fixed (post-stabilisation) writer rotation for block `k`. The
    /// rotation *repeats* one writer (A, B, A, C): a depth-1 history at
    /// the directory cannot tell the two A-turns apart, while depth 3 can
    /// — the source of dsmc's directory-accuracy jump at depth 3 in
    /// Table 5.
    fn writer_rotation(&self, k: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(self.seed, 0, 200 + k as u64);
        let start = rng.gen_range(0..self.nodes);
        let distinct: Vec<NodeId> = (0..self.contention_writers)
            .map(|i| NodeId::new((start + i * 3) % self.nodes))
            .collect();
        // A, B, A, then the remaining writers: the repeated writer's two
        // turns are never adjacent (adjacent turns would silently hit).
        let mut rotation = vec![distinct[0], distinct[1], distinct[0]];
        rotation.extend_from_slice(&distinct[2..]);
        rotation
    }
}

impl Workload for Dsmc {
    fn name(&self) -> &'static str {
        "dsmc"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        let mut rng = iter_rng(self.seed, iteration, 0);

        // Pre-stabilisation, a contended buffer is fought over: several
        // processors each read the buffer head and write it back *without
        // holding it exclusively across the pair*, so competitors'
        // invalidations land between the read and the write. This is what
        // makes Table 8's read-modify-write transitions start near zero
        // accuracy and dominate the early reference mix.
        let total_contended = self.contended + self.contended_rmw;
        let mut scramble = Phase::new(self.nodes);
        for k in 0..total_contended {
            if iteration >= self.stabilize_iteration(k) {
                continue;
            }
            // Fresh competitors every iteration: nothing to learn yet.
            let all: Vec<usize> = permutation(&mut rng, self.nodes);
            for &w in all.iter().take(self.contention_writers) {
                let node = NodeId::new(w);
                scramble.push(Access::read(node, self.contended_block(k)));
                scramble.push(Access::write(node, self.contended_block(k)));
            }
        }
        if !scramble.is_empty() {
            plan.push(scramble);
        }

        // Post-stabilisation the rotation is fixed: the first `contended`
        // blocks are *refilled* with plain writes (their repeated-writer
        // A,B,A,C rotation is only resolvable at depth 3); the rest keep
        // clean in-place read-modify-write updates (resolvable at depth 2).
        let per_block: Vec<Option<Vec<NodeId>>> = (0..total_contended)
            .map(|k| {
                if iteration < self.stabilize_iteration(k) {
                    return None;
                }
                // Traffic intensity decays once the buffer settles.
                if !rng.gen_bool(0.8) {
                    return None;
                }
                Some(self.writer_rotation(k))
            })
            .collect();
        let turns = self.contention_writers + 1;
        for turn in 0..turns {
            let mut phase = Phase::new(self.nodes);
            for (k, writers) in per_block.iter().enumerate() {
                if let Some(ws) = writers {
                    if let Some(&w) = ws.get(turn) {
                        if k < self.contended {
                            phase.push(Access::write(w, self.contended_block(k)));
                        } else {
                            phase.push(Access::rmw(w, self.contended_block(k)));
                        }
                    }
                }
            }
            if !phase.is_empty() {
                plan.push(phase);
            }
        }

        // Rarely-touched cells: a thin slice of the population is touched
        // each iteration, once, and never again.
        let mut rare = Phase::new(self.nodes);
        // `div_ceil` (as in `push_quiet_phase`): flooring the division
        // drops the remainder and leaves the last `rare_blocks %
        // iterations` cells untouched for the whole run.
        let per_iter = ((self.rare_blocks as u32).div_ceil(self.iterations.max(1))).max(1) as usize;
        let base = iteration as usize * per_iter;
        for r in 0..per_iter {
            let idx = base + r;
            if idx >= self.rare_blocks {
                break;
            }
            let b = BlockAddr::new(RARE_REGION + idx as u64);
            let toucher = NodeId::new(rng.gen_range(0..self.nodes));
            rare.push(Access::write(toucher, b));
            let reader = NodeId::new((toucher.index() + 1) % self.nodes);
            rare.push(Access::read(reader, b));
        }
        plan.push(rare);

        // Handoff phase: each processor fills the buffer to its successor
        // (write-only), then consumers drain their inbound buffers.
        let mut fill = Phase::new(self.nodes);
        for p in 0..self.nodes {
            for j in 0..self.buffer_blocks {
                fill.push(Access::write(NodeId::new(p), self.buffer_block(p, j)));
            }
        }
        plan.push(fill);

        let mut drain = Phase::new(self.nodes);
        for p in 0..self.nodes {
            let consumer = NodeId::new((p + 1) % self.nodes);
            for j in 0..self.buffer_blocks {
                drain.push(Access::read(consumer, self.buffer_block(p, j)));
            }
        }
        plan.push(drain);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::{MsgType, ProtocolConfig, Role};
    use trace::{ArcKey, ArcTable};

    #[test]
    fn rotation_and_stabilisation_are_deterministic() {
        let w = Dsmc::default();
        assert_eq!(w.writer_rotation(3), w.writer_rotation(3));
        assert_eq!(w.stabilize_iteration(3), w.stabilize_iteration(3));
        assert!(w.stabilize_iteration(3) <= w.stabilize_by);
        // The rotation repeats its first writer once (A, B, A, C).
        let rot = w.writer_rotation(3);
        assert_eq!(rot.len(), w.contention_writers + 1);
        assert_eq!(rot[0], rot[2]);
        assert_ne!(rot[0], rot[1]);
    }

    #[test]
    fn handoff_signature_dominates() {
        let mut w = Dsmc::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let arcs = ArcTable::from_bundle(&t);
        // Figure 6's dsmc cache-side handoff: the producer's
        // get_rw_response is followed by the consumer-read-induced
        // inval_rw_request.
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRwResponse,
            next: MsgType::InvalRwRequest,
        };
        assert!(arcs.share(key) > 0.05, "share was {}", arcs.share(key));
    }

    #[test]
    fn rare_blocks_touched_at_most_once() {
        let mut w = Dsmc::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        // Every rare-region block generates at most one write+read handoff:
        // at the directory that is at most 4 messages.
        for b in t.blocks() {
            if b.number() >= RARE_REGION {
                let n = t.for_block(b).count();
                assert!(n <= 6, "rare block {b} saw {n} messages");
            }
        }
    }

    #[test]
    fn every_configured_rare_block_is_touched() {
        // Regression: the per-iteration slice used flooring division, so
        // with 10 rare blocks over 4 iterations only floor(10/4)*4 = 8
        // were ever touched — the last `rare % iterations` cells never
        // appeared in any plan.
        let mut w = Dsmc {
            rare_blocks: 10,
            iterations: 4,
            ..Dsmc::small()
        };
        let mut touched = std::collections::HashSet::new();
        for it in 0..w.iterations() {
            let plan = w.plan(it);
            for phase in &plan.phases {
                for accesses in &phase.per_node {
                    for a in accesses {
                        if a.block.number() >= RARE_REGION {
                            touched.insert(a.block.number() - RARE_REGION);
                        }
                    }
                }
            }
        }
        let expected: std::collections::HashSet<u64> = (0..10).collect();
        assert_eq!(touched, expected, "all configured rare blocks covered");
    }

    #[test]
    fn contended_blocks_quieten_after_stabilisation() {
        let w = Dsmc {
            iterations: 30,
            stabilize_by: 5,
            ..Dsmc::small()
        };
        let mut w2 = w.clone();
        let t = run_to_trace(&mut w2, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let contended_msgs = |lo: u32, hi: u32| {
            t.records()
                .iter()
                .filter(|r| {
                    r.block.number() >= CONTENDED_REGION
                        && r.block.number() < RARE_REGION
                        && (lo..hi).contains(&r.iteration)
                })
                .count()
        };
        let early = contended_msgs(0, 5);
        let late = contended_msgs(25, 30);
        assert!(
            late < early,
            "contended traffic should decay: early {early}, late {late}"
        );
    }
}
