//! **barnes** — SPLASH-2 Barnes-Hut N-body (paper §5.2, §6.1).
//!
//! The octree is *rebuilt every iteration*, so a logical tree cell lands at
//! a different shared-memory address each time. The sharing pattern of each
//! *logical* cell is stable (its owner writes it during the build, a set of
//! readers traverses it), but Cosmos keys its history by *block address*,
//! so the reassignment obscures the pattern — the paper's explanation for
//! barnes' lowest-in-suite accuracy (62–69%), with the directory side worst
//! (42% at depth 1) because senders vary per address.
//!
//! Bodies, by contrast, keep stable addresses; their owners update them
//! every iteration and an iteration-varying subset of other processors
//! reads them (the "quite irregular" traversal communication).

use crate::rng::{choose_distinct, iter_rng, permutation};
use crate::{push_quiet_phase, Workload};
use simx::{Access, IterationPlan, Phase};
use stache::{BlockAddr, NodeId};

/// Block-address region for (reassigned) octree cell slots.
const CELL_REGION: u64 = 0;
/// Block-address region for body blocks.
const BODY_REGION: u64 = 1 << 20;

/// Block-address region for quiet blocks: data touched a handful of
/// times in the whole run (array interiors, unshared mesh nodes, ...).
const QUIET_REGION: u64 = 3 << 20;

/// The barnes workload generator.
#[derive(Debug, Clone)]
pub struct Barnes {
    /// Machine size.
    pub nodes: usize,
    /// Logical octree cells.
    pub cells: usize,
    /// Address slots cells are scattered over (> `cells` so the mapping
    /// genuinely moves between iterations).
    pub cell_slots: usize,
    /// Body blocks per processor.
    pub bodies_per_proc: usize,
    /// Readers sampled per cell traversal.
    pub readers_per_cell: usize,
    /// Quiet blocks: touched once in the whole run. Real codes' arrays
    /// are mostly such blocks; they dominate the MHR population and keep
    /// Table 7's PHT/MHR ratio near the paper's magnitudes.
    pub quiet_blocks: usize,
    /// Iterations.
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Barnes {
    fn default() -> Self {
        Barnes {
            nodes: 16,
            cells: 64,
            cell_slots: 110,
            bodies_per_proc: 12,
            readers_per_cell: 2,
            quiet_blocks: 500,
            iterations: 40,
            seed: 0xBA71,
        }
    }
}

impl Barnes {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Barnes {
            cells: 24,
            cell_slots: 40,
            bodies_per_proc: 4,
            quiet_blocks: 20,
            iterations: 14,
            ..Barnes::default()
        }
    }

    /// The address slot logical cell `c` occupies in `iteration`.
    fn cell_slot(&self, iteration: u32, c: usize) -> BlockAddr {
        // A fresh permutation of the slot pool every iteration: the octree
        // rebuild. Derived from the *iteration* stream so plans stay
        // independent of generation order.
        let mut rng = iter_rng(self.seed, iteration, 1);
        let perm = permutation(&mut rng, self.cell_slots);
        BlockAddr::new(CELL_REGION + perm[c] as u64)
    }

    fn body_block(&self, owner: usize, j: usize) -> BlockAddr {
        BlockAddr::new(BODY_REGION + (owner * self.bodies_per_proc + j) as u64)
    }

    /// The stable owner of logical cell `c`.
    fn cell_owner(&self, c: usize) -> NodeId {
        NodeId::new(c % self.nodes)
    }

    /// The processors traversing cell `c` this iteration. Which bodies'
    /// force walks open a cell depends on this iteration's body positions,
    /// so the reader set is irregular: a fresh draw of 1 to
    /// `readers_per_cell + 1` readers every iteration. Combined with the
    /// address reassignment this is what drags barnes' directory accuracy
    /// to the bottom of the suite.
    fn cell_readers(&self, iteration: u32, c: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(self.seed, iteration, 2 + c as u64);
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != self.cell_owner(c).index())
            .map(NodeId::new)
            .collect();
        let k = rng.gen_range(1..=self.readers_per_cell + 1);
        choose_distinct(&mut rng, &pool, k)
    }

    /// The body reader that is the same every iteration. It has the
    /// highest node index among readers so its invalidation ack arrives
    /// *after* the parity reader's — which is what lets a depth-2 history
    /// at the directory see the parity reader's identity right before the
    /// next iteration's first read.
    fn body_shared_reader(&self, owner: usize) -> NodeId {
        let top = self.nodes - 1;
        NodeId::new(if owner == top { top - 1 } else { top })
    }

    /// The body reader that alternates with iteration parity between two
    /// fixed processors. A depth-1 predictor flip-flops on "who reads
    /// first after the owner's update"; depth ≥ 2 pins the parity down —
    /// the mechanism behind the paper's barnes gain from depth 1 to 2.
    fn body_parity_reader(&self, owner: usize, j: usize, parity: u32) -> NodeId {
        let shared = self.body_shared_reader(owner);
        let mut rng = iter_rng(
            self.seed,
            parity,
            1000 + (owner * self.bodies_per_proc + j) as u64,
        );
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != owner && n != shared.index())
            .map(NodeId::new)
            .collect();
        choose_distinct(&mut rng, &pool, 1)[0]
    }

    /// Every fourth body sits deep inside an irregular region: its partner
    /// is a fresh draw each iteration, not a parity alternation, so no
    /// history depth ever learns it. This caps how far depth can lift the
    /// body-side accuracy (the paper's barnes plateaus by depth 2).
    fn body_is_irregular(&self, owner: usize, j: usize) -> bool {
        (owner * self.bodies_per_proc + j).is_multiple_of(4)
    }

    /// The partner reader for an irregular body at `iteration`.
    fn body_irregular_reader(&self, owner: usize, j: usize, iteration: u32) -> NodeId {
        let shared = self.body_shared_reader(owner);
        let mut rng = iter_rng(
            self.seed,
            iteration,
            2000 + (owner * self.bodies_per_proc + j) as u64,
        );
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != owner && n != shared.index())
            .map(NodeId::new)
            .collect();
        choose_distinct(&mut rng, &pool, 1)[0]
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();

        // Tree build: every cell's owner writes the cell at its *new*
        // address for this iteration.
        let mut build = Phase::new(self.nodes);
        for c in 0..self.cells {
            build.push(Access::write(
                self.cell_owner(c),
                self.cell_slot(iteration, c),
            ));
        }
        plan.push(build);

        // Tree traversal: the cell's logical readers traverse it at its
        // current address.
        let mut traverse = Phase::new(self.nodes);
        for c in 0..self.cells {
            let slot = self.cell_slot(iteration, c);
            for r in self.cell_readers(iteration, c) {
                traverse.push(Access::read(r, slot));
            }
        }
        plan.push(traverse);

        // Force computation over bodies: the parity-dependent partner
        // reads first, then the every-iteration reader, and finally the
        // owner overwrites the body with its new state (write-only — the
        // old position lives in the owner's private copy).
        let parity = iteration % 2;
        let mut parity_reads = Phase::new(self.nodes);
        let mut shared_reads = Phase::new(self.nodes);
        let mut body_writes = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.bodies_per_proc {
                let b = self.body_block(owner, j);
                let partner = if self.body_is_irregular(owner, j) {
                    self.body_irregular_reader(owner, j, iteration)
                } else {
                    self.body_parity_reader(owner, j, parity)
                };
                parity_reads.push(Access::read(partner, b));
                shared_reads.push(Access::read(self.body_shared_reader(owner), b));
                body_writes.push(Access::write(NodeId::new(owner), b));
            }
        }
        plan.push(parity_reads);
        plan.push(shared_reads);
        plan.push(body_writes);
        push_quiet_phase(
            &mut plan,
            QUIET_REGION,
            self.quiet_blocks,
            self.nodes,
            iteration,
            self.iterations,
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::ProtocolConfig;
    use std::collections::HashSet;

    #[test]
    fn cell_addresses_move_between_iterations() {
        let w = Barnes::small();
        let mut moved = 0;
        for c in 0..w.cells {
            if w.cell_slot(0, c) != w.cell_slot(1, c) {
                moved += 1;
            }
        }
        // The rebuild must move (nearly) all cells.
        assert!(
            moved >= w.cells * 3 / 4,
            "only {moved} of {} cells moved",
            w.cells
        );
    }

    #[test]
    fn cell_slots_are_distinct_within_an_iteration() {
        let w = Barnes::small();
        let slots: HashSet<_> = (0..w.cells).map(|c| w.cell_slot(3, c)).collect();
        assert_eq!(slots.len(), w.cells, "two logical cells share an address");
    }

    #[test]
    fn cell_readers_are_irregular_but_deterministic() {
        let w = Barnes::small();
        assert_eq!(w.cell_readers(3, 5), w.cell_readers(3, 5));
        assert!(!w.cell_readers(3, 5).contains(&w.cell_owner(5)));
        // Reader sets vary across iterations for at least some cells.
        let varies = (0..w.cells).any(|c| w.cell_readers(0, c) != w.cell_readers(1, c));
        assert!(varies);
        // Body readers: the parity reader differs by parity for most
        // bodies, and never collides with the shared reader or owner.
        for owner in 0..w.nodes {
            for j in 0..w.bodies_per_proc {
                let a = w.body_parity_reader(owner, j, 0);
                let b = w.body_parity_reader(owner, j, 1);
                let s = w.body_shared_reader(owner);
                assert_ne!(a, s);
                assert_ne!(b, s);
                assert_ne!(a.index(), owner);
            }
        }
    }

    #[test]
    fn runs_clean_and_produces_messages() {
        let mut w = Barnes::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        assert!(t.len() > 100);
        // More blocks are touched than logical structures exist, because
        // of address reassignment.
        assert!(t.blocks().len() > w.cells);
    }
}
