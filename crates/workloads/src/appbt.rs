//! **appbt** — NAS 3D CFD stencil (paper §5.2, §6.1).
//!
//! The code is spatially parallelised: each processor owns a sub-block of
//! the 3D arrays and shares boundary blocks with neighbours. The paper
//! reports a clean producer-consumer pattern — *producer reads, producer
//! writes, consumer reads* (one consumer per block) — repeating for the
//! whole run, degraded only by **false sharing in two data structures**
//! whose blocks two processors write in pseudo-random alternation (the
//! source of the noisy `upgrade_request → inval_ro_response` directory arc
//! in Figure 6).
//!
//! Note the producer's *read before write*: this is why the paper says the
//! half-migratory optimisation **hurts** appbt — every read miss to the
//! previously-exclusive producer copy invalidates it outright.

use crate::rng::iter_rng;
use crate::{push_quiet_phase, Workload};
use simx::{Access, IterationPlan, Phase};
use stache::{BlockAddr, NodeId};

/// Block-address region for boundary blocks.
const BOUNDARY_REGION: u64 = 0;
/// Block-address region for the two false-shared structures.
const FALSE_SHARE_REGION: u64 = 1 << 20;

/// Block-address region for quiet blocks: data touched a handful of
/// times in the whole run (array interiors, unshared mesh nodes, ...).
const QUIET_REGION: u64 = 3 << 20;

/// The appbt workload generator.
#[derive(Debug, Clone)]
pub struct Appbt {
    /// Machine size (the stencil grid is `grid_side^2` processors).
    pub nodes: usize,
    /// Boundary blocks owned per processor.
    pub boundary_per_proc: usize,
    /// Total false-shared blocks (split between the "two data structures").
    pub false_shared: usize,
    /// Quiet blocks: touched once in the whole run. Real codes' arrays
    /// are mostly such blocks; they dominate the MHR population and keep
    /// Table 7's PHT/MHR ratio near the paper's magnitudes.
    pub quiet_blocks: usize,
    /// Iterations (time steps).
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Appbt {
    fn default() -> Self {
        Appbt {
            nodes: 16,
            boundary_per_proc: 16,
            false_shared: 160,
            quiet_blocks: 2000,
            iterations: 60,
            seed: 0xA9B7,
        }
    }
}

impl Appbt {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Appbt {
            boundary_per_proc: 6,
            false_shared: 6,
            quiet_blocks: 40,
            iterations: 8,
            ..Appbt::default()
        }
    }

    fn grid_side(&self) -> usize {
        let side = (self.nodes as f64).sqrt() as usize;
        assert_eq!(
            side * side,
            self.nodes,
            "appbt wants a square processor grid"
        );
        side
    }

    /// The (static) consumer of a boundary block: one of the owner's 2D
    /// grid neighbours, chosen by the block's position on the sub-block
    /// surface.
    fn consumer(&self, owner: usize, j: usize) -> NodeId {
        let side = self.grid_side();
        let (r, c) = (owner / side, owner % side);
        let (nr, nc) = match j % 4 {
            0 => ((r + 1) % side, c),
            1 => ((r + side - 1) % side, c),
            2 => (r, (c + 1) % side),
            _ => (r, (c + side - 1) % side),
        };
        NodeId::new(nr * side + nc)
    }

    fn boundary_block(&self, owner: usize, j: usize) -> BlockAddr {
        BlockAddr::new(BOUNDARY_REGION + (owner * self.boundary_per_proc + j) as u64)
    }

    /// The two processors falsely sharing block `k`, and its address.
    fn false_share_block(&self, k: usize) -> (NodeId, NodeId, BlockAddr) {
        let a = k % self.nodes;
        let b = (k + 1) % self.nodes;
        (
            NodeId::new(a),
            NodeId::new(b),
            BlockAddr::new(FALSE_SHARE_REGION + k as u64),
        )
    }
}

impl Workload for Appbt {
    fn name(&self) -> &'static str {
        "appbt"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        let mut rng = iter_rng(self.seed, iteration, 0);

        // Compute phase: every owner reads then writes each of its
        // boundary blocks (the update sweep over its sub-block).
        let mut compute = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.boundary_per_proc {
                let b = self.boundary_block(owner, j);
                let o = NodeId::new(owner);
                compute.push(Access::read(o, b));
                compute.push(Access::write(o, b));
            }
        }
        // The falsely-shared structures are updated during compute too.
        // The two halves of each block belong to different owners, so who
        // writes, in what order, and whether the other half is touched at
        // all varies run-to-run — "multiple signatures that the protocol
        // oscillates between randomly" (§6.1), noise that no history depth
        // can learn.
        for k in 0..self.false_shared {
            let (a, b, blk) = self.false_share_block(k);
            let mut writers = Vec::new();
            if rng.gen_bool(0.7) {
                writers.push(a);
            }
            if rng.gen_bool(0.7) {
                writers.push(b);
            }
            if rng.gen_bool(0.25) {
                // A third processor's stray touch (the structure straddles
                // a partition corner): fresh identity each time, so deeper
                // history cannot memorise the participant sequence either.
                writers.push(NodeId::new(rng.gen_range(0..self.nodes)));
            }
            if rng.gen_bool(0.5) {
                writers.reverse();
            }
            for w in writers {
                compute.push(Access::rmw(w, blk));
            }
        }
        plan.push(compute);

        // Exchange phase: each boundary block's consumer reads it; the
        // falsely-shared blocks are read back by both writers (each needs
        // the other's half), again in random order.
        let mut exchange = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.boundary_per_proc {
                exchange.push(Access::read(
                    self.consumer(owner, j),
                    self.boundary_block(owner, j),
                ));
            }
        }
        for k in 0..self.false_shared {
            let (a, b, blk) = self.false_share_block(k);
            let mut readers = Vec::new();
            if rng.gen_bool(0.7) {
                readers.push(a);
            }
            if rng.gen_bool(0.7) {
                readers.push(b);
            }
            if rng.gen_bool(0.5) {
                readers.reverse();
            }
            for r in readers {
                exchange.push(Access::read(r, blk));
            }
        }
        plan.push(exchange);
        push_quiet_phase(
            &mut plan,
            QUIET_REGION,
            self.quiet_blocks,
            self.nodes,
            iteration,
            self.iterations,
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::{MsgType, ProtocolConfig, Role};
    use trace::{ArcKey, ArcTable};

    #[test]
    fn consumers_are_grid_neighbours() {
        let w = Appbt::default();
        for owner in 0..16 {
            for j in 0..4 {
                let c = w.consumer(owner, j);
                assert_ne!(c.index(), owner, "a block's consumer is another processor");
            }
        }
        // Deterministic.
        assert_eq!(w.consumer(5, 0), w.consumer(5, 0));
    }

    #[test]
    fn trace_shows_producer_consumer_signature() {
        let mut w = Appbt::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let arcs = ArcTable::from_bundle(&t);
        // The dominant cache arcs of Figure 6: get_ro_response ->
        // upgrade_response (producer read-then-write) must be prominent.
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRoResponse,
            next: MsgType::UpgradeResponse,
        };
        assert!(arcs.share(key) > 0.1, "share was {}", arcs.share(key));
    }

    #[test]
    fn false_sharing_generates_upgrade_inval_noise() {
        let mut w = Appbt::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let arcs = ArcTable::from_bundle(&t);
        let key = ArcKey {
            role: Role::Directory,
            prev: MsgType::UpgradeRequest,
            next: MsgType::InvalRoResponse,
        };
        assert!(
            arcs.count(key) > 0,
            "expected the Figure 6 false-sharing arc"
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_grid_rejected() {
        let w = Appbt {
            nodes: 12,
            ..Appbt::default()
        };
        let _ = w.consumer(0, 0);
    }
}
