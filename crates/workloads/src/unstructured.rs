//! **unstructured** — CFD over a static unstructured mesh (paper §5.2,
//! §6.1).
//!
//! The distinctive behaviour: *the same data structures oscillate between
//! migratory and producer-consumer sharing in different phases of each
//! iteration*. The mesh is static (recursive-coordinate-bisection
//! partition), so the participant sets are fixed for the whole run — the
//! composite signature is perfectly learnable, but only with history: a
//! depth-1 Cosmos is confused at every pattern switch, which is exactly why
//! the paper's accuracy climbs from 74% (depth 1) to 92% (depth 4).
//!
//! The producer in the producer-consumer phase *is itself a consumer* of
//! the data, and the mean number of consumers per producer is **2.6**.

use crate::rng::{choose_distinct, consumer_count, iter_rng};
use crate::{push_quiet_phase, Workload};
use simx::{Access, IterationPlan, Phase};
use stache::{BlockAddr, NodeId};

/// Block-address region for shared mesh (node/edge) blocks.
const MESH_REGION: u64 = 0;

/// Block-address region for quiet blocks: data touched a handful of
/// times in the whole run (array interiors, unshared mesh nodes, ...).
const QUIET_REGION: u64 = 3 << 20;

/// The unstructured workload generator.
#[derive(Debug, Clone)]
pub struct Unstructured {
    /// Machine size.
    pub nodes: usize,
    /// Shared mesh blocks.
    pub mesh_blocks: usize,
    /// Processors updating each block in the migratory phase (besides the
    /// owner).
    pub migratory_peers: usize,
    /// Mean consumers per block in the producer-consumer phase (paper: 2.6).
    pub mean_consumers: f64,
    /// Per-iteration probability of a one-off extra consumer for a block —
    /// partition-boundary nodes whose face values are occasionally needed
    /// by a third processor. Unlearnable at any history depth; keeps the
    /// accuracy ceiling below 100%.
    pub flicker: f64,
    /// Quiet blocks: touched once in the whole run. Real codes' arrays
    /// are mostly such blocks; they dominate the MHR population and keep
    /// Table 7's PHT/MHR ratio near the paper's magnitudes.
    pub quiet_blocks: usize,
    /// Iterations.
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Unstructured {
    fn default() -> Self {
        Unstructured {
            nodes: 16,
            mesh_blocks: 72,
            migratory_peers: 2,
            mean_consumers: 2.6,
            flicker: 0.18,
            quiet_blocks: 300,
            iterations: 50,
            seed: 0x0575,
        }
    }
}

impl Unstructured {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Unstructured {
            mesh_blocks: 16,
            quiet_blocks: 12,
            iterations: 8,
            ..Unstructured::default()
        }
    }

    fn block(&self, m: usize) -> BlockAddr {
        BlockAddr::new(MESH_REGION + m as u64)
    }

    /// The (static) owner of mesh block `m` — the bisection partition.
    fn owner(&self, m: usize) -> NodeId {
        NodeId::new(m % self.nodes)
    }

    /// The (static) peers updating block `m` in migratory phases: mesh
    /// neighbours across the partition boundary.
    fn migratory_set(&self, m: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(self.seed, 0, 500 + m as u64);
        let owner = self.owner(m);
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != owner.index())
            .map(NodeId::new)
            .collect();
        let mut set = vec![owner];
        set.extend(choose_distinct(&mut rng, &pool, self.migratory_peers));
        set
    }

    /// The (static) consumers of block `m` in producer-consumer phases.
    /// The owner produces *and* consumes; these are the other consumers.
    fn consumer_set(&self, m: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(self.seed, 0, 600 + m as u64);
        let owner = self.owner(m);
        let k = consumer_count(&mut rng, self.mean_consumers, self.nodes - 1);
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != owner.index())
            .map(NodeId::new)
            .collect();
        choose_distinct(&mut rng, &pool, k)
    }
}

impl Workload for Unstructured {
    fn name(&self) -> &'static str {
        "unstructured"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let mut plan = IterationPlan::new();
        let mut flicker_rng = iter_rng(self.seed, iteration, 900);

        // Migratory phase: each block is updated in critical sections by
        // its owner and its boundary peers, in a fixed turn order.
        let turns = self.migratory_peers + 1;
        for turn in 0..turns {
            let mut phase = Phase::new(self.nodes);
            for m in 0..self.mesh_blocks {
                let set = self.migratory_set(m);
                let w = set[turn % set.len()];
                phase.push(Access::rmw(w, self.block(m)));
            }
            plan.push(phase);
        }

        // Producer-consumer phase: the owner recomputes the block (reading
        // its own previous result — the producer is also a consumer), then
        // the fixed consumer set reads it.
        let mut produce = Phase::new(self.nodes);
        for m in 0..self.mesh_blocks {
            produce.push(Access::rmw(self.owner(m), self.block(m)));
        }
        plan.push(produce);

        let mut consume = Phase::new(self.nodes);
        for m in 0..self.mesh_blocks {
            let consumers = self.consumer_set(m);
            for &c in &consumers {
                consume.push(Access::read(c, self.block(m)));
            }
            if flicker_rng.gen_bool(self.flicker.clamp(0.0, 1.0)) {
                let owner = self.owner(m);
                let pool: Vec<NodeId> = (0..self.nodes)
                    .map(NodeId::new)
                    .filter(|n| *n != owner && !consumers.contains(n))
                    .collect();
                if !pool.is_empty() {
                    let extra = pool[flicker_rng.gen_range(0..pool.len())];
                    consume.push(Access::read(extra, self.block(m)));
                }
            }
        }
        plan.push(consume);
        push_quiet_phase(
            &mut plan,
            QUIET_REGION,
            self.quiet_blocks,
            self.nodes,
            iteration,
            self.iterations,
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::{MsgType, ProtocolConfig, Role};
    use trace::{ArcKey, ArcTable};

    #[test]
    fn mesh_structure_is_static() {
        let w = Unstructured::default();
        assert_eq!(w.migratory_set(3), w.migratory_set(3));
        assert_eq!(w.consumer_set(3), w.consumer_set(3));
        assert_eq!(w.migratory_set(3)[0], w.owner(3));
    }

    #[test]
    fn plans_are_static_up_to_flicker() {
        // Static mesh: with flicker off, iteration plans do not vary.
        let mut w = Unstructured {
            flicker: 0.0,
            quiet_blocks: 0,
            ..Unstructured::small()
        };
        assert_eq!(w.plan(0), w.plan(7));
    }

    #[test]
    fn both_patterns_appear_in_one_trace() {
        let mut w = Unstructured::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let arcs = ArcTable::from_bundle(&t);
        // Migratory: get_ro_response -> upgrade_response at caches.
        let migratory = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRoResponse,
            next: MsgType::UpgradeResponse,
        };
        // Producer-consumer: consumers see get_ro_response -> inval_ro_request.
        let pc = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRoResponse,
            next: MsgType::InvalRoRequest,
        };
        assert!(arcs.count(migratory) > 0, "no migratory arcs");
        assert!(arcs.count(pc) > 0, "no producer-consumer arcs");
    }

    #[test]
    fn consumer_mean_near_target() {
        let w = Unstructured::default();
        let total: usize = (0..w.mesh_blocks).map(|m| w.consumer_set(m).len()).sum();
        let mean = total as f64 / w.mesh_blocks as f64;
        assert!((mean - 2.6).abs() < 0.8, "mean consumers {mean}");
    }
}
