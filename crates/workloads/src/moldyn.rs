//! **moldyn** — CHARMM-like molecular dynamics (paper §5.2, §6.1).
//!
//! Two dominant sharing patterns:
//!
//! * **Migratory** — the shared force array is reduced in critical
//!   sections: each contributing processor reads then writes an element in
//!   turn, producing the `⟨get_ro_response, upgrade_response,
//!   inval_rw_request⟩` cache signature (the half-migratory optimisation
//!   *helps*: the previous owner is invalidated by the next reader without
//!   an extra handshake).
//! * **Producer-consumer** — the coordinates array: each molecule's owner
//!   updates it, then a mean of **4.9 consumers** read it, so directories
//!   see highly-predictable back-to-back `get_ro_request`s.
//!
//! The interaction list is rebuilt every 20 iterations (Table 4), which
//! resamples contributor and consumer sets and injects transient noise.

use crate::rng::{choose_distinct, consumer_count, iter_rng};
use crate::{push_quiet_phase, Workload};
use simx::{Access, IterationPlan, Phase};
use stache::{BlockAddr, NodeId};

/// Block-address region for force-array elements.
const FORCE_REGION: u64 = 0;
/// Block-address region for coordinates blocks.
const COORD_REGION: u64 = 1 << 20;

/// Block-address region for quiet blocks: data touched a handful of
/// times in the whole run (array interiors, unshared mesh nodes, ...).
const QUIET_REGION: u64 = 3 << 20;

/// The moldyn workload generator.
#[derive(Debug, Clone)]
pub struct Moldyn {
    /// Machine size.
    pub nodes: usize,
    /// Shared force-array element blocks.
    pub force_elements: usize,
    /// Contributors per force element.
    pub contributors: usize,
    /// Coordinate blocks per processor.
    pub coords_per_proc: usize,
    /// Mean consumers per coordinate block (the paper reports 4.9).
    pub mean_consumers: f64,
    /// Per-iteration probability that a molecule near the cut-off radius
    /// flickers in or out of an interaction — an extra one-off reader that
    /// injects unlearnable noise at every history depth.
    pub boundary_flicker: f64,
    /// Iterations between interaction-list rebuilds (Table 4: 20).
    pub rebuild_every: u32,
    /// Quiet blocks: touched once in the whole run. Real codes' arrays
    /// are mostly such blocks; they dominate the MHR population and keep
    /// Table 7's PHT/MHR ratio near the paper's magnitudes.
    pub quiet_blocks: usize,
    /// Iterations.
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Moldyn {
    fn default() -> Self {
        Moldyn {
            nodes: 16,
            force_elements: 48,
            contributors: 3,
            coords_per_proc: 6,
            mean_consumers: 4.9,
            boundary_flicker: 0.22,
            quiet_blocks: 1700,
            rebuild_every: 20,
            iterations: 60,
            seed: 0x301D,
        }
    }
}

impl Moldyn {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Moldyn {
            force_elements: 8,
            coords_per_proc: 2,
            quiet_blocks: 30,
            iterations: 8,
            rebuild_every: 4,
            ..Moldyn::default()
        }
    }

    fn epoch(&self, iteration: u32) -> u32 {
        iteration / self.rebuild_every.max(1)
    }

    fn force_block(&self, e: usize) -> BlockAddr {
        BlockAddr::new(FORCE_REGION + e as u64)
    }

    fn coord_block(&self, owner: usize, j: usize) -> BlockAddr {
        BlockAddr::new(COORD_REGION + (owner * self.coords_per_proc + j) as u64)
    }

    /// The processors contributing to force element `e` during `epoch`
    /// (fixed within an epoch — the interaction list).
    fn force_contributors(&self, epoch: u32, e: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(self.seed, epoch, 300 + e as u64);
        let pool: Vec<NodeId> = (0..self.nodes).map(NodeId::new).collect();
        choose_distinct(&mut rng, &pool, self.contributors)
    }

    /// The consumers of a coordinate block during `epoch`.
    fn coord_consumers(&self, epoch: u32, owner: usize, j: usize) -> Vec<NodeId> {
        let mut rng = iter_rng(
            self.seed,
            epoch,
            400 + (owner * self.coords_per_proc + j) as u64,
        );
        let k = consumer_count(&mut rng, self.mean_consumers, self.nodes - 1);
        let pool: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| n != owner)
            .map(NodeId::new)
            .collect();
        choose_distinct(&mut rng, &pool, k)
    }
}

impl Workload for Moldyn {
    fn name(&self) -> &'static str {
        "moldyn"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn plan(&mut self, iteration: u32) -> IterationPlan {
        let epoch = self.epoch(iteration);
        let mut plan = IterationPlan::new();

        // Position update: each owner reads and rewrites its coordinate
        // blocks (producer is read-then-write, like appbt's producer).
        let mut update = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.coords_per_proc {
                update.push(Access::rmw(NodeId::new(owner), self.coord_block(owner, j)));
            }
        }
        plan.push(update);

        // Force computation: consumers read coordinates they interact
        // with; occasionally a molecule near the cut-off radius flickers
        // into range and an extra processor reads it this iteration only.
        let mut flicker_rng = iter_rng(self.seed, iteration, 800);
        let mut gather = Phase::new(self.nodes);
        for owner in 0..self.nodes {
            for j in 0..self.coords_per_proc {
                let consumers = self.coord_consumers(epoch, owner, j);
                for &c in &consumers {
                    gather.push(Access::read(c, self.coord_block(owner, j)));
                }
                if flicker_rng.gen_bool(self.boundary_flicker.clamp(0.0, 1.0)) {
                    let pool: Vec<NodeId> = (0..self.nodes)
                        .filter(|&n| n != owner)
                        .map(NodeId::new)
                        .filter(|n| !consumers.contains(n))
                        .collect();
                    if let Some(&extra) = pool.get(
                        flicker_rng
                            .gen_range(0..pool.len().max(1))
                            .min(pool.len().saturating_sub(1)),
                    ) {
                        gather.push(Access::read(extra, self.coord_block(owner, j)));
                    }
                }
            }
        }
        plan.push(gather);

        // Reduction: each contributor adds its private contribution to the
        // shared force array inside a critical section, in a stable turn
        // order — lock hand-off settles into the same sequence every
        // iteration, which is what makes the migratory directory traffic
        // predictable even at depth 1. The unlearnable residue that caps
        // the paper's directory accuracy near 79% is the cut-off-radius
        // flicker above, not the reduction order.
        for turn in 0..self.contributors {
            let mut reduce = Phase::new(self.nodes);
            for e in 0..self.force_elements {
                let contribs = self.force_contributors(epoch, e);
                if let Some(&w) = contribs.get(turn) {
                    reduce.push(Access::rmw(w, self.force_block(e)));
                }
            }
            plan.push(reduce);
        }
        push_quiet_phase(
            &mut plan,
            QUIET_REGION,
            self.quiet_blocks,
            self.nodes,
            iteration,
            self.iterations,
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_trace;
    use simx::SystemConfig;
    use stache::{MsgType, ProtocolConfig, Role};
    use trace::{ArcKey, ArcTable};

    #[test]
    fn interaction_list_is_stable_within_an_epoch() {
        let w = Moldyn::default();
        assert_eq!(w.force_contributors(0, 5), w.force_contributors(0, 5));
        assert_eq!(w.coord_consumers(1, 2, 0), w.coord_consumers(1, 2, 0));
        // Across epochs it (almost surely, for this seed) changes.
        assert_ne!(w.force_contributors(0, 5), w.force_contributors(1, 5));
    }

    #[test]
    fn epoch_boundaries_follow_rebuild_every() {
        let w = Moldyn {
            rebuild_every: 20,
            ..Moldyn::default()
        };
        assert_eq!(w.epoch(0), 0);
        assert_eq!(w.epoch(19), 0);
        assert_eq!(w.epoch(20), 1);
    }

    #[test]
    fn migratory_signature_present() {
        let mut w = Moldyn::small();
        let t = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
        let arcs = ArcTable::from_bundle(&t);
        // Figure 7's migratory cache signature: get_ro_response followed
        // by upgrade_response.
        let a = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRoResponse,
            next: MsgType::UpgradeResponse,
        };
        let b = ArcKey {
            role: Role::Cache,
            prev: MsgType::UpgradeResponse,
            next: MsgType::InvalRwRequest,
        };
        assert!(
            arcs.share(a) > 0.05,
            "get_ro->upgrade share {}",
            arcs.share(a)
        );
        assert!(
            arcs.share(b) > 0.05,
            "upgrade->inval_rw share {}",
            arcs.share(b)
        );
    }

    #[test]
    fn coordinates_have_multiple_consumers() {
        let w = Moldyn::default();
        let total: usize = (0..w.nodes).map(|o| w.coord_consumers(0, o, 0).len()).sum();
        let mean = total as f64 / w.nodes as f64;
        assert!(mean > 3.0, "mean consumers {mean} too low for 4.9 target");
    }
}
