//! Benchmark metadata — the paper's Table 4.

/// A row of Table 4: what each benchmark is and how it is sized here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BenchmarkMeta {
    /// Benchmark name.
    pub name: &'static str,
    /// One-line description (paper §5.2).
    pub description: &'static str,
    /// Origin noted in the paper's Table 4 caption.
    pub origin: &'static str,
    /// The dominant sharing patterns §6.1 attributes to it.
    pub patterns: &'static str,
    /// Default iterations in this reproduction's evaluation runs.
    pub iterations: u32,
}

/// Table 4, in the paper's row order.
pub fn table4() -> Vec<BenchmarkMeta> {
    vec![
        BenchmarkMeta {
            name: "appbt",
            description: "3D computational fluid dynamics; 3D arrays split into per-processor sub-blocks, boundary sharing with neighbours",
            origin: "NAS / NASA Ames, parallelised at Wisconsin",
            patterns: "producer-consumer (1 consumer); false sharing on two structures",
            iterations: 60,
        },
        BenchmarkMeta {
            name: "barnes",
            description: "Barnes-Hut hierarchical N-body; octree rebuilt and traversed per body each iteration",
            origin: "Stanford SPLASH-2",
            patterns: "irregular; logical patterns stable but octree addresses reassigned every iteration",
            iterations: 40,
        },
        BenchmarkMeta {
            name: "dsmc",
            description: "discrete simulation Monte Carlo of gas particles in a Cartesian cell grid; particles migrate between cells via shared buffers",
            origin: "Universities of Maryland and Wisconsin",
            patterns: "producer-consumer buffer handoffs (producer writes without reading); slow-stabilising contended buffers; rarely-touched cells",
            iterations: 400,
        },
        BenchmarkMeta {
            name: "moldyn",
            description: "molecular dynamics (CHARMM-like non-bonded force calculation); force array reduced in critical sections, coordinates broadcast",
            origin: "Universities of Maryland and Wisconsin",
            patterns: "migratory (force array) + producer-consumer with mean 4.9 consumers (coordinates); interaction list rebuilt every 20 iterations",
            iterations: 60,
        },
        BenchmarkMeta {
            name: "unstructured",
            description: "CFD over a static unstructured mesh partitioned by recursive coordinate bisection; loops over nodes, edges, faces",
            origin: "Universities of Maryland and Wisconsin",
            patterns: "oscillates per phase between migratory and producer-consumer (producer also consumes; mean 2.6 consumers)",
            iterations: 50,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<BenchmarkMeta> {
    table4().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_in_paper_order() {
        let rows = table4();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].name, "appbt");
        assert_eq!(rows[4].name, "unstructured");
    }

    #[test]
    fn metadata_iterations_match_the_default_generators() {
        // Table 4's advertised sizes are the generators' actual defaults.
        use crate::paper_suite;
        for w in paper_suite() {
            let meta = by_name(w.name()).expect("metadata row exists");
            assert_eq!(
                meta.iterations,
                w.iterations(),
                "{}: Table 4 says {} iterations, generator runs {}",
                w.name(),
                meta.iterations,
                w.iterations()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("dsmc").is_some());
        assert_eq!(by_name("dsmc").unwrap().iterations, 400);
        assert!(by_name("spice").is_none());
    }
}
