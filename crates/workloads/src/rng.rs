//! Deterministic randomness helpers.
//!
//! Workloads must be reproducible: same parameters → same plans → same
//! traces → same accuracies. Every stochastic choice therefore draws from a
//! [`SmallRng`] seeded from `(workload seed, iteration, stream)` so a plan
//! for iteration *i* does not depend on whether earlier plans were built.
//!
//! The generator is a self-contained xoshiro256++ (the algorithm behind the
//! `rand` crate's non-portable `SmallRng` on 64-bit targets), hand-rolled
//! here so the workspace builds with no external crates. Statistical
//! quality is far beyond what plan generation needs; what matters is that
//! the byte-for-byte output stream is frozen by this file alone.

use std::ops::{Range, RangeInclusive};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step — used both to mix `(seed, iteration, stream)` and
/// to expand a single u64 seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator from a single seed, SplitMix64-expanded into the
    /// full state (the standard seeding recipe, which also guards against
    /// the all-zero state xoshiro cannot leave).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next uniformly distributed `u64`.
    pub fn gen(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw; `p` is clamped to `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from a (non-empty) `usize` range, exclusive or
    /// inclusive.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        range.sample(self)
    }

    /// A uniform draw from `[0, n)` via the widening-multiply map. The
    /// modulo bias is at most `n / 2^64` — invisible at workload scales.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        ((self.gen() as u128 * n as u128) >> 64) as u64
    }
}

/// Ranges [`SmallRng::gen_range`] can sample.
pub trait SampleRange {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> usize;
}

impl SampleRange for Range<usize> {
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn sample(self, rng: &mut SmallRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        start + rng.below((end - start) as u64 + 1) as usize
    }
}

/// A per-(iteration, stream) RNG derived from a workload seed.
pub fn iter_rng(seed: u64, iteration: u32, stream: u64) -> SmallRng {
    // SplitMix64-style mixing keeps distinct (iteration, stream) pairs
    // decorrelated even for small seeds.
    let mut z =
        seed ^ (iteration as u64).wrapping_mul(GOLDEN) ^ stream.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Samples a consumer count with the given mean, clamped to `[1, max]`.
///
/// The paper reports *average* consumers per producer (4.9 for moldyn, 2.6
/// for unstructured); a geometric-ish spread around the mean reproduces the
/// "back-to-back `get_ro_request`s" effect without a heavy tail.
pub fn consumer_count(rng: &mut SmallRng, mean: f64, max: usize) -> usize {
    debug_assert!(mean >= 1.0, "at least one consumer");
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    let n = base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
    // Jitter by ±1 with small probability to avoid a degenerate constant.
    let jittered = match rng.gen_range(0..10) {
        0 => n.saturating_sub(1),
        1 => n + 1,
        _ => n,
    };
    jittered.clamp(1, max)
}

/// Chooses `k` distinct items from `pool` (k clamped to the pool size),
/// via the first `k` steps of a Fisher–Yates shuffle.
pub fn choose_distinct<T: Copy>(rng: &mut SmallRng, pool: &[T], k: usize) -> Vec<T> {
    let k = k.min(pool.len());
    let mut picked: Vec<T> = pool.to_vec();
    for i in 0..k {
        let j = i + rng.gen_range(0..picked.len() - i);
        picked.swap(i, j);
    }
    picked.truncate(k);
    picked
}

/// A uniformly random permutation of `0..n` (full Fisher–Yates).
pub fn permutation(rng: &mut SmallRng, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in 0..n.saturating_sub(1) {
        let j = i + rng.gen_range(0..n - i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_rng_is_deterministic_and_stream_separated() {
        let a: Vec<u64> = (0..5).map(|_| iter_rng(7, 3, 0).gen()).collect();
        let b: Vec<u64> = (0..5).map(|_| iter_rng(7, 3, 0).gen()).collect();
        assert_eq!(a, b);
        let c: u64 = iter_rng(7, 3, 1).gen();
        assert_ne!(a[0], c);
        let d: u64 = iter_rng(7, 4, 0).gen();
        assert_ne!(a[0], d);
    }

    #[test]
    fn gen_f64_stays_in_unit_interval() {
        let mut rng = iter_rng(9, 0, 0);
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_and_exclusive_bounds() {
        let mut rng = iter_rng(11, 0, 0);
        let mut seen_ex = [false; 5];
        let mut seen_in = [false; 5];
        for _ in 0..1000 {
            seen_ex[rng.gen_range(0..5)] = true;
            let v = rng.gen_range(1..=4);
            assert!((1..=4).contains(&v));
            seen_in[v] = true;
        }
        assert!(seen_ex.iter().all(|&b| b));
        assert!(seen_in[1..].iter().all(|&b| b) && !seen_in[0]);
    }

    #[test]
    fn consumer_count_targets_the_mean() {
        let mut rng = iter_rng(1, 0, 0);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| consumer_count(&mut rng, 4.9, 15)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.9).abs() < 0.15, "mean {mean} too far from 4.9");
    }

    #[test]
    fn consumer_count_respects_bounds() {
        let mut rng = iter_rng(2, 0, 0);
        for _ in 0..1000 {
            let c = consumer_count(&mut rng, 2.6, 3);
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn choose_distinct_is_distinct() {
        let mut rng = iter_rng(3, 0, 0);
        let pool: Vec<u32> = (0..10).collect();
        for _ in 0..100 {
            let mut picked = choose_distinct(&mut rng, &pool, 4);
            assert_eq!(picked.len(), 4);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 4);
        }
        assert_eq!(choose_distinct(&mut rng, &pool, 99).len(), 10);
    }

    #[test]
    fn choose_distinct_is_actually_random() {
        // Regression: a broken selection that always takes the vector
        // front would make every k=1 draw return pool[0].
        let pool: Vec<u32> = (0..14).collect();
        let mut seen = std::collections::HashSet::new();
        for stream in 0..50 {
            let mut rng = iter_rng(7, 0, stream);
            seen.insert(choose_distinct(&mut rng, &pool, 1)[0]);
        }
        assert!(seen.len() > 5, "k=1 draws hit only {seen:?}");
        // And draws differ across iteration parity for most streams.
        let differs = (0..20)
            .filter(|&s| {
                choose_distinct(&mut iter_rng(7, 0, s), &pool, 1)
                    != choose_distinct(&mut iter_rng(7, 1, s), &pool, 1)
            })
            .count();
        assert!(differs > 10, "only {differs}/20 parity draws differ");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = iter_rng(4, 0, 0);
        let mut p = permutation(&mut rng, 50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }
}
