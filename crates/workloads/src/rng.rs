//! Deterministic randomness helpers.
//!
//! Workloads must be reproducible: same parameters → same plans → same
//! traces → same accuracies. Every stochastic choice therefore draws from a
//! [`SmallRng`] seeded from `(workload seed, iteration, stream)` so a plan
//! for iteration *i* does not depend on whether earlier plans were built.
//!
//! The PRNG core (xoshiro256++, SplitMix64 mixing) lives in [`simx::rng`]
//! so the simulator's fault-injection layer can draw from the same
//! generator without a dependency cycle; it is re-exported here unchanged
//! — the byte-for-byte output streams are identical to when the core was
//! defined in this file. The workload-specific sampling helpers below stay
//! here.

pub use simx::rng::{iter_rng, SampleRange, SmallRng};

/// Samples a consumer count with the given mean, clamped to `[1, max]`.
///
/// The paper reports *average* consumers per producer (4.9 for moldyn, 2.6
/// for unstructured); a geometric-ish spread around the mean reproduces the
/// "back-to-back `get_ro_request`s" effect without a heavy tail.
pub fn consumer_count(rng: &mut SmallRng, mean: f64, max: usize) -> usize {
    debug_assert!(mean >= 1.0, "at least one consumer");
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    let n = base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
    // Jitter by ±1 with small probability to avoid a degenerate constant.
    let jittered = match rng.gen_range(0..10) {
        0 => n.saturating_sub(1),
        1 => n + 1,
        _ => n,
    };
    jittered.clamp(1, max)
}

/// Chooses `k` distinct items from `pool` (k clamped to the pool size),
/// via the first `k` steps of a Fisher–Yates shuffle.
pub fn choose_distinct<T: Copy>(rng: &mut SmallRng, pool: &[T], k: usize) -> Vec<T> {
    let k = k.min(pool.len());
    let mut picked: Vec<T> = pool.to_vec();
    for i in 0..k {
        let j = i + rng.gen_range(0..picked.len() - i);
        picked.swap(i, j);
    }
    picked.truncate(k);
    picked
}

/// A uniformly random permutation of `0..n` (full Fisher–Yates).
pub fn permutation(rng: &mut SmallRng, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in 0..n.saturating_sub(1) {
        let j = i + rng.gen_range(0..n - i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_core_is_deterministic() {
        // The core moved to `simx::rng`; the re-export must keep both the
        // API and the byte stream (pinned in simx's own tests).
        let a: Vec<u64> = (0..5).map(|_| iter_rng(7, 3, 0).gen()).collect();
        let b: Vec<u64> = (0..5).map(|_| iter_rng(7, 3, 0).gen()).collect();
        assert_eq!(a, b);
        assert_eq!(SmallRng::seed_from_u64(0).gen(), 5987356902031041503);
    }

    #[test]
    fn consumer_count_targets_the_mean() {
        let mut rng = iter_rng(1, 0, 0);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| consumer_count(&mut rng, 4.9, 15)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.9).abs() < 0.15, "mean {mean} too far from 4.9");
    }

    #[test]
    fn consumer_count_respects_bounds() {
        let mut rng = iter_rng(2, 0, 0);
        for _ in 0..1000 {
            let c = consumer_count(&mut rng, 2.6, 3);
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn choose_distinct_is_distinct() {
        let mut rng = iter_rng(3, 0, 0);
        let pool: Vec<u32> = (0..10).collect();
        for _ in 0..100 {
            let mut picked = choose_distinct(&mut rng, &pool, 4);
            assert_eq!(picked.len(), 4);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 4);
        }
        assert_eq!(choose_distinct(&mut rng, &pool, 99).len(), 10);
    }

    #[test]
    fn choose_distinct_is_actually_random() {
        // Regression: a broken selection that always takes the vector
        // front would make every k=1 draw return pool[0].
        let pool: Vec<u32> = (0..14).collect();
        let mut seen = std::collections::HashSet::new();
        for stream in 0..50 {
            let mut rng = iter_rng(7, 0, stream);
            seen.insert(choose_distinct(&mut rng, &pool, 1)[0]);
        }
        assert!(seen.len() > 5, "k=1 draws hit only {seen:?}");
        // And draws differ across iteration parity for most streams.
        let differs = (0..20)
            .filter(|&s| {
                choose_distinct(&mut iter_rng(7, 0, s), &pool, 1)
                    != choose_distinct(&mut iter_rng(7, 1, s), &pool, 1)
            })
            .count();
        assert!(differs > 10, "only {differs}/20 parity draws differ");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = iter_rng(4, 0, 0);
        let mut p = permutation(&mut rng, 50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }
}
