#![warn(missing_docs)]

//! # workloads — synthetic access-stream generators for the paper's five
//! benchmarks
//!
//! The paper traces five parallel scientific applications (Table 4):
//! **appbt**, **barnes**, **dsmc**, **moldyn**, and **unstructured**. The
//! original binaries and the Wisconsin Wind Tunnel II are unavailable, so
//! this crate generates memory-access streams that reproduce the *sharing
//! patterns* §5.2/§6.1 document for each application — the property that
//! determines Cosmos' behaviour. Each generator is parameterised and
//! seeded, so runs are deterministic and scalable.
//!
//! | Workload | Dominant patterns modelled |
//! |---|---|
//! | [`appbt`] | 3D-stencil producer-consumer (producer reads, writes; one consumer reads), false sharing on two structures |
//! | [`barnes`] | octree rebuilt each iteration — stable logical patterns at *reassigned* block addresses; irregular reader sets |
//! | [`dsmc`] | buffer handoffs (write-without-read producer), slowly-stabilising contended buffers, rarely-touched cells |
//! | [`moldyn`] | migratory force-array reduction + producer-consumer coordinates (mean 4.9 consumers), interaction list rebuilt every 20 iterations |
//! | [`unstructured`] | per-phase oscillation between migratory and producer-consumer (producer also consumes; mean 2.6 consumers) |
//!
//! The [`Workload`] trait yields one [`IterationPlan`] per iteration;
//! [`run_to_trace`] drives a plan stream through a [`simx::Machine`] and
//! returns the coherence message trace Cosmos is evaluated on.
//!
//! ## Example
//!
//! ```
//! use workloads::{micro::ProducerConsumer, run_to_trace, Workload};
//! use stache::ProtocolConfig;
//! use simx::SystemConfig;
//!
//! let mut w = ProducerConsumer::default();
//! let trace = run_to_trace(&mut w, ProtocolConfig::paper(), SystemConfig::paper()).unwrap();
//! assert!(!trace.is_empty());
//! assert_eq!(trace.meta().app, "producer-consumer");
//! ```

pub mod appbt;
pub mod barnes;
pub mod dsmc;
pub mod meta;
pub mod micro;
pub mod moldyn;
pub mod rng;
pub mod scale;
pub mod unstructured;

use simx::{driver, IterationPlan, Machine, SimError, SystemConfig};
use stache::ProtocolConfig;
use trace::TraceBundle;

pub use appbt::Appbt;
pub use barnes::Barnes;
pub use dsmc::Dsmc;
pub use moldyn::Moldyn;
pub use scale::Scale;
pub use unstructured::Unstructured;

/// A benchmark: a named, deterministic stream of per-iteration access plans.
///
/// `Send` so suites of boxed workloads can be generated on worker threads.
pub trait Workload: Send {
    /// The workload's name (trace metadata / table row label).
    fn name(&self) -> &'static str;

    /// Number of processors the workload is written for.
    fn nodes(&self) -> usize;

    /// Number of iterations a full run executes.
    fn iterations(&self) -> u32;

    /// Builds the access plan for one iteration. Implementations must be
    /// deterministic: calling `plan(i)` twice on identically-constructed
    /// workloads yields identical plans.
    fn plan(&mut self, iteration: u32) -> IterationPlan;
}

/// Appends a phase touching a slice of the workload's *quiet* blocks —
/// data referenced once in the whole run (array interiors, unshared mesh
/// nodes). Each quiet block gets a single read by a fixed remote node,
/// costing two coherence messages. Quiet blocks dominate the MHR
/// population of real applications and never earn a PHT entry, which is
/// what keeps Table 7's PHT/MHR ratios near the paper's magnitudes.
///
/// Blocks are spread evenly across iterations so no single iteration's
/// accuracy craters from the cold misses.
pub fn push_quiet_phase(
    plan: &mut IterationPlan,
    region: u64,
    quiet_blocks: usize,
    nodes: usize,
    iteration: u32,
    iterations: u32,
) {
    if quiet_blocks == 0 {
        return;
    }
    let per_iter = (quiet_blocks as u32).div_ceil(iterations.max(1)) as usize;
    let base = iteration as usize * per_iter;
    let mut phase = simx::Phase::new(nodes);
    for idx in base..(base + per_iter).min(quiet_blocks) {
        let block = stache::BlockAddr::new(region + idx as u64);
        // A reader one node over from the block's position: remote from
        // the home for the overwhelming majority of blocks.
        let reader = stache::NodeId::new((idx + 1) % nodes);
        phase.push(simx::Access::read(reader, block));
    }
    if !phase.is_empty() {
        plan.push(phase);
    }
}

/// Runs a workload to completion on a fresh machine and returns its
/// coherence-message trace.
///
/// # Errors
///
/// Propagates any [`SimError`] — with correct generators this indicates a
/// bug in the protocol substrate, so tests treat it as fatal.
pub fn run_to_trace<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> Result<TraceBundle, SimError> {
    let (trace, _) = run_to_trace_with_stats(workload, proto, sys)?;
    Ok(trace)
}

/// Like [`run_to_trace`] but also returns the machine statistics.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_to_trace_with_stats<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> Result<(TraceBundle, simx::MachineStats), SimError> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let mut machine = Machine::new(proto, sys);
    machine.set_app(workload.name(), workload.iterations());
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        driver::run_iteration(&mut machine, &plan, it)?;
    }
    machine.verify_coherence()?;
    let stats = machine.stats().clone();
    Ok((machine.into_trace(), stats))
}

/// Runs a workload on the *concurrent* message-level engine
/// ([`simx::concurrent`]) and returns its trace. Per-block message orders
/// match the serialized [`run_to_trace`]; timestamps reflect genuine
/// overlap of independent transactions.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_to_trace_concurrent<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> Result<TraceBundle, SimError> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let name = workload.name();
    let iterations = workload.iterations();
    let machine =
        simx::concurrent::run_workload(name, iterations, |it| workload.plan(it), proto, sys)?;
    Ok(machine.into_trace())
}

/// Runs a workload on the *sharded* parallel engine ([`simx::shard`])
/// and returns the finished machine. Output — trace, statistics,
/// tallies, obs snapshot — is byte-identical to a `shards = 1` run for
/// every shard count (see `tests/shard_identity.rs`); `shards` only
/// changes how many threads execute each synchronisation window.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_sharded<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
    shards: usize,
) -> Result<simx::ShardedMachine, SimError> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let name = workload.name();
    let iterations = workload.iterations();
    simx::shard::run_workload_sharded(name, iterations, |it| workload.plan(it), proto, sys, shards)
}

/// A failure inside [`run_sharded_streaming`]: either the simulation
/// itself, or the caller's record sink (e.g. a packed-trace writer
/// hitting a full disk).
#[derive(Debug)]
pub enum StreamingRunError<E> {
    /// The simulation failed.
    Sim(SimError),
    /// The record sink failed; the run stops at the failing iteration.
    Sink(E),
}

impl<E: std::fmt::Display> std::fmt::Display for StreamingRunError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingRunError::Sim(e) => write!(f, "simulation failed: {e}"),
            StreamingRunError::Sink(e) => write!(f, "trace sink failed: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StreamingRunError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamingRunError::Sim(e) => Some(e),
            StreamingRunError::Sink(e) => Some(e),
        }
    }
}

/// Runs a workload on the sharded engine, draining the captured trace
/// into `sink` after every iteration instead of accumulating it — the
/// producer half of the packed-trace streaming pipeline. Peak memory is
/// one iteration's records, so runs whose full traces would never fit in
/// RAM (the ≥10⁸-message `scale` configurations) stream straight to
/// disk. Record order across drains is exactly the order
/// [`run_sharded`]'s accumulated bundle would hold.
///
/// `configure` runs once on the fresh machine before iteration 0 — scale
/// runs use it to disable the event ring and per-barrier audits.
/// `verify_sample` bounds the end-of-run coherence audit (`None` = walk
/// every block, `Some(n)` = sample `n`), since a full walk at scale
/// costs more than the run.
///
/// # Errors
///
/// Propagates simulation errors and sink errors, tagged by origin.
pub fn run_sharded_streaming<W: Workload + ?Sized, E>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
    shards: usize,
    verify_sample: Option<usize>,
    configure: impl FnOnce(&mut simx::ShardedMachine),
    mut sink: impl FnMut(Vec<trace::MsgRecord>) -> Result<(), E>,
) -> Result<simx::ShardedMachine, StreamingRunError<E>> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let mut machine = simx::ShardedMachine::new(proto, sys, shards);
    machine.set_app(workload.name(), workload.iterations());
    configure(&mut machine);
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        machine
            .run_plan(&plan, it)
            .map_err(StreamingRunError::Sim)?;
        let records = machine.drain_trace_records();
        if !records.is_empty() {
            sink(records).map_err(StreamingRunError::Sink)?;
        }
    }
    match verify_sample {
        None => machine.verify_coherence(),
        Some(n) => machine.verify_coherence_sampled(n),
    }
    .map_err(StreamingRunError::Sim)?;
    Ok(machine)
}

/// Like [`run_to_trace`] but with causal span tracing enabled: returns
/// the trace bundle *and* the run's [`obs::SpanLog`] — one span tree per
/// coherence transaction, stamped with the serialized engine's exact
/// simulated times. Any span still open after the final barrier is
/// flagged `"orphaned"` rather than dropped.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_traced<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> Result<(TraceBundle, obs::SpanLog), SimError> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let mut machine = Machine::new(proto, sys);
    machine.enable_tracing();
    machine.set_app(workload.name(), workload.iterations());
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        driver::run_iteration(&mut machine, &plan, it)?;
    }
    machine.verify_coherence()?;
    machine.flag_orphaned_spans();
    let spans = machine.take_spans();
    Ok((machine.into_trace(), spans))
}

/// Like [`run_to_trace_concurrent`] but with causal span tracing enabled;
/// see [`run_traced`].
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_traced_concurrent<W: Workload + ?Sized>(
    workload: &mut W,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> Result<(TraceBundle, obs::SpanLog), SimError> {
    assert!(
        workload.nodes() <= proto.nodes,
        "workload needs {} nodes but machine has {}",
        workload.nodes(),
        proto.nodes
    );
    let mut machine = simx::concurrent::ConcurrentMachine::new(proto, sys);
    machine.enable_tracing();
    machine.set_app(workload.name(), workload.iterations());
    for it in 0..workload.iterations() {
        let plan = workload.plan(it);
        machine.run_plan(&plan, it)?;
    }
    machine.verify_coherence()?;
    machine.flag_orphaned_spans();
    let spans = machine.take_spans();
    Ok((machine.into_trace(), spans))
}

/// The five paper benchmarks at evaluation scale, boxed behind the trait.
pub fn paper_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Appbt::default()),
        Box::new(Barnes::default()),
        Box::new(Dsmc::default()),
        Box::new(Moldyn::default()),
        Box::new(Unstructured::default()),
    ]
}

/// The five benchmarks at reduced scale, for fast tests.
pub fn small_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Appbt::small()),
        Box::new(Barnes::small()),
        Box::new(Dsmc::small()),
        Box::new(Moldyn::small()),
        Box::new(Unstructured::small()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_five_benchmarks() {
        assert_eq!(paper_suite().len(), 5);
        assert_eq!(small_suite().len(), 5);
        let names: Vec<&str> = paper_suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["appbt", "barnes", "dsmc", "moldyn", "unstructured"]
        );
    }

    #[test]
    fn small_suite_runs_clean() {
        for mut w in small_suite() {
            let trace = run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(!trace.is_empty(), "{} produced no messages", w.name());
        }
    }

    #[test]
    fn streaming_drains_match_the_accumulated_bundle() {
        let make = || micro::ProducerConsumer {
            blocks: 3,
            iterations: 6,
            ..Default::default()
        };
        let whole = run_sharded(
            &mut make(),
            ProtocolConfig::paper(),
            SystemConfig::paper(),
            1,
        )
        .unwrap()
        .into_trace();
        let mut streamed: Vec<trace::MsgRecord> = Vec::new();
        let mut drains = 0usize;
        let machine = run_sharded_streaming(
            &mut make(),
            ProtocolConfig::paper(),
            SystemConfig::paper(),
            1,
            None,
            |_| {},
            |batch| {
                drains += 1;
                streamed.extend(batch);
                Ok::<(), std::convert::Infallible>(())
            },
        )
        .unwrap();
        assert_eq!(streamed, whole.records(), "same records, same order");
        assert!(drains > 1, "drained per iteration, not once at the end");
        assert!(
            machine.trace().is_empty(),
            "nothing left accumulated in the machine"
        );
    }

    #[test]
    fn streaming_sink_errors_stop_the_run() {
        let mut w = micro::ProducerConsumer {
            blocks: 2,
            iterations: 5,
            ..Default::default()
        };
        let err = run_sharded_streaming(
            &mut w,
            ProtocolConfig::paper(),
            SystemConfig::paper(),
            1,
            Some(16),
            |_| {},
            |_| Err("disk full"),
        )
        .unwrap_err();
        assert!(matches!(err, StreamingRunError::Sink("disk full")));
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn plans_are_deterministic() {
        for (mut a, mut b) in small_suite().into_iter().zip(small_suite()) {
            for it in 0..a.iterations().min(3) {
                assert_eq!(a.plan(it), b.plan(it), "{} not deterministic", a.name());
            }
        }
    }
}
