//! Trace (de)serialisation.
//!
//! Two encodings are provided:
//!
//! * a **binary** codec ([`encode`]/[`decode`]) — fixed-width records
//!   behind a small header; compact and fast, suitable for archiving the
//!   multi-million-message traces the benchmark harness produces;
//! * a **text** codec ([`to_text`]/[`from_text`]) — one record per line in
//!   the paper's message vocabulary; handy for eyeballing and diffing.

use crate::bundle::{TraceBundle, TraceMeta};
use crate::record::MsgRecord;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::error::Error;
use std::fmt;

/// Magic bytes identifying a binary trace.
const MAGIC: &[u8; 4] = b"CTR1";

/// A malformed trace encountered while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with the trace magic.
    BadMagic,
    /// The input ended mid-structure.
    Truncated,
    /// A field held an out-of-range value.
    BadField {
        /// Which field was malformed.
        field: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a trace: bad magic"),
            DecodeError::Truncated => write!(f, "trace truncated"),
            DecodeError::BadField { field } => write!(f, "malformed trace field: {field}"),
        }
    }
}

impl Error for DecodeError {}

/// A bundle whose metadata does not fit the binary header's field widths.
///
/// The header stores the app-name length in a `u16` and the node count in
/// a `u32`; encoding used to cast unchecked, silently truncating oversized
/// values into a header that decodes to a *different* bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// `meta.app` is longer than a `u16` length field can record.
    AppTooLong {
        /// The offending length in bytes.
        len: usize,
    },
    /// `meta.nodes` exceeds the header's `u32` field.
    TooManyNodes {
        /// The offending node count.
        nodes: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::AppTooLong { len } => {
                write!(f, "app name of {len} bytes exceeds the u16 header field")
            }
            EncodeError::TooManyNodes { nodes } => {
                write!(f, "node count {nodes} exceeds the u32 header field")
            }
        }
    }
}

impl Error for EncodeError {}

/// Validates that a bundle's metadata fits the binary header fields.
///
/// # Errors
///
/// Returns the first field that would be truncated.
pub(crate) fn check_header_bounds(meta: &TraceMeta) -> Result<(), EncodeError> {
    if meta.app.len() > u16::MAX as usize {
        return Err(EncodeError::AppTooLong {
            len: meta.app.len(),
        });
    }
    if u32::try_from(meta.nodes).is_err() {
        return Err(EncodeError::TooManyNodes { nodes: meta.nodes });
    }
    Ok(())
}

/// A big-endian cursor over the input being decoded.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.data.len() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.need(n)?;
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Encodes a bundle to the binary format.
///
/// # Errors
///
/// Returns an [`EncodeError`] when the metadata does not fit the header's
/// field widths (app name length in a `u16`, node count in a `u32`) —
/// previously those casts truncated silently.
pub fn encode(bundle: &TraceBundle) -> Result<Vec<u8>, EncodeError> {
    let meta = bundle.meta();
    check_header_bounds(meta)?;
    let mut buf = Vec::with_capacity(32 + meta.app.len() + bundle.len() * 26);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(meta.app.len() as u16).to_be_bytes());
    buf.extend_from_slice(meta.app.as_bytes());
    buf.extend_from_slice(&(meta.nodes as u32).to_be_bytes());
    buf.extend_from_slice(&meta.iterations.to_be_bytes());
    buf.extend_from_slice(&(bundle.len() as u64).to_be_bytes());
    for r in bundle.records() {
        buf.extend_from_slice(&r.time_ns.to_be_bytes());
        buf.extend_from_slice(&r.node.raw().to_be_bytes());
        buf.push(match r.role {
            Role::Cache => 0,
            Role::Directory => 1,
        });
        buf.extend_from_slice(&r.block.number().to_be_bytes());
        buf.extend_from_slice(&r.sender.raw().to_be_bytes());
        buf.push(r.mtype.code());
        buf.extend_from_slice(&r.iteration.to_be_bytes());
    }
    Ok(buf)
}

/// Decodes a bundle from the binary format.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input; never panics.
pub fn decode(data: &[u8]) -> Result<TraceBundle, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let app_len = r.u16()? as usize;
    let app = String::from_utf8(r.take(app_len)?.to_vec())
        .map_err(|_| DecodeError::BadField { field: "app" })?;
    let nodes = r.u32()? as usize;
    let iterations = r.u32()?;
    let count = r.u64()? as usize;

    let mut bundle = TraceBundle::new(TraceMeta::new(app, nodes, iterations));
    for _ in 0..count {
        r.need(26)?;
        let time_ns = r.u64()?;
        let node = NodeId::from_raw(r.u16()?).ok_or(DecodeError::BadField { field: "node" })?;
        let role = match r.u8()? {
            0 => Role::Cache,
            1 => Role::Directory,
            _ => return Err(DecodeError::BadField { field: "role" }),
        };
        let block = BlockAddr::new(r.u64()?);
        let sender = NodeId::from_raw(r.u16()?).ok_or(DecodeError::BadField { field: "sender" })?;
        let mtype = MsgType::from_code(r.u8()?).ok_or(DecodeError::BadField { field: "mtype" })?;
        let iteration = r.u32()?;
        bundle.push(MsgRecord {
            time_ns,
            node,
            role,
            block,
            sender,
            mtype,
            iteration,
        });
    }
    Ok(bundle)
}

/// Renders a bundle as text, one record per line.
pub fn to_text(bundle: &TraceBundle) -> String {
    use std::fmt::Write as _;
    let meta = bundle.meta();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# app={} nodes={} iterations={}",
        meta.app, meta.nodes, meta.iterations
    );
    for r in bundle.records() {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {}",
            r.time_ns,
            r.node.index(),
            match r.role {
                Role::Cache => "C",
                Role::Directory => "D",
            },
            r.block.number(),
            r.sender.index(),
            r.mtype.paper_name(),
            r.iteration,
        );
    }
    out
}

/// Parses the text format produced by [`to_text`].
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first malformed line.
pub fn from_text(text: &str) -> Result<TraceBundle, DecodeError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DecodeError::Truncated)?;
    let header = header.strip_prefix("# ").ok_or(DecodeError::BadMagic)?;
    let mut app = String::new();
    let mut nodes = 0usize;
    let mut iterations = 0u32;
    for kv in header.split_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .ok_or(DecodeError::BadField { field: "header" })?;
        match k {
            "app" => app = v.to_string(),
            "nodes" => {
                nodes = v
                    .parse()
                    .map_err(|_| DecodeError::BadField { field: "nodes" })?
            }
            "iterations" => {
                iterations = v.parse().map_err(|_| DecodeError::BadField {
                    field: "iterations",
                })?
            }
            _ => return Err(DecodeError::BadField { field: "header" }),
        }
    }
    let mut bundle = TraceBundle::new(TraceMeta::new(app, nodes, iterations));
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(DecodeError::BadField { field: "record" });
        }
        let parse_u64 = |s: &str, f: &'static str| {
            s.parse::<u64>()
                .map_err(|_| DecodeError::BadField { field: f })
        };
        let mtype = stache::msg::ALL_MSG_TYPES
            .iter()
            .copied()
            .find(|t| t.paper_name() == fields[5])
            .ok_or(DecodeError::BadField { field: "mtype" })?;
        // Checked: `NodeId::new` panics above the 12-bit id space, so an
        // out-of-range node in a text trace used to abort instead of
        // reporting the malformed field.
        let parse_node = |s: &str, f: &'static str| {
            parse_u64(s, f)
                .and_then(|v| u16::try_from(v).map_err(|_| DecodeError::BadField { field: f }))
                .and_then(|v| NodeId::from_raw(v).ok_or(DecodeError::BadField { field: f }))
        };
        bundle.push(MsgRecord {
            time_ns: parse_u64(fields[0], "time")?,
            node: parse_node(fields[1], "node")?,
            role: match fields[2] {
                "C" => Role::Cache,
                "D" => Role::Directory,
                _ => return Err(DecodeError::BadField { field: "role" }),
            },
            block: BlockAddr::new(parse_u64(fields[3], "block")?),
            sender: parse_node(fields[4], "sender")?,
            mtype,
            // Checked: a parsed value above u32::MAX used to wrap via `as`.
            iteration: u32::try_from(parse_u64(fields[6], "iteration")?)
                .map_err(|_| DecodeError::BadField { field: "iteration" })?,
        });
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("unit", 16, 5));
        for i in 0..20u64 {
            b.push(MsgRecord {
                time_ns: i * 40,
                node: NodeId::new((i % 16) as usize),
                role: if i % 2 == 0 {
                    Role::Cache
                } else {
                    Role::Directory
                },
                block: BlockAddr::new(i * 64),
                sender: NodeId::new(((i + 1) % 16) as usize),
                mtype: MsgType::from_code((i % 12) as u8).unwrap(),
                iteration: (i / 4) as u32,
            });
        }
        b
    }

    #[test]
    fn binary_roundtrip() {
        let b = sample();
        let encoded = encode(&b).unwrap();
        let decoded = decode(&encoded).unwrap();
        assert_eq!(b, decoded);
    }

    #[test]
    fn text_roundtrip() {
        let b = sample();
        let text = to_text(&b);
        let decoded = from_text(&text).unwrap();
        assert_eq!(b, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b"XX"), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncated_records_rejected() {
        let b = sample();
        let encoded = encode(&b).unwrap();
        let cut = &encoded[..encoded.len() - 5];
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn corrupt_mtype_rejected() {
        let b = sample();
        let mut bytes = encode(&b).unwrap().to_vec();
        // Last record's mtype byte sits 5 bytes from the end (mtype, iter u32).
        let idx = bytes.len() - 5;
        bytes[idx] = 200;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::BadField { field: "mtype" })
        );
    }

    #[test]
    fn text_out_of_range_node_is_rejected_not_a_panic() {
        // Regression: `NodeId::new(v as usize)` panicked for ids >= 4096.
        for line in [
            "0 4096 C 0 0 get_ro_request 0",
            "0 0 C 0 99999999999 get_ro_request 0",
        ] {
            let text = format!("# app=x nodes=1 iterations=1\n{line}\n");
            let err = from_text(&text).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::BadField {
                        field: "node" | "sender"
                    }
                ),
                "line {line:?} gave {err:?}"
            );
        }
        // The boundary id still parses.
        let ok = "# app=x nodes=1 iterations=1\n0 4095 C 0 4095 get_ro_request 0\n";
        assert_eq!(from_text(ok).unwrap().records()[0].node.index(), 4095);
    }

    #[test]
    fn text_bad_role_rejected() {
        let text = "# app=x nodes=1 iterations=1\n0 0 Z 0 0 get_ro_request 0\n";
        assert_eq!(
            from_text(text),
            Err(DecodeError::BadField { field: "role" })
        );
    }

    #[test]
    fn oversized_app_name_is_an_encode_error() {
        // Regression: `app.len() as u16` silently truncated, producing a
        // header whose length field disagreed with the bytes that follow.
        let long = "x".repeat(u16::MAX as usize + 1);
        let b = TraceBundle::new(TraceMeta::new(long, 2, 1));
        assert_eq!(
            encode(&b),
            Err(EncodeError::AppTooLong {
                len: u16::MAX as usize + 1
            })
        );
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_node_count_is_an_encode_error() {
        // Regression: `nodes as u32` silently wrapped the count.
        let b = TraceBundle::new(TraceMeta::new("big", u32::MAX as usize + 1, 1));
        assert_eq!(
            encode(&b),
            Err(EncodeError::TooManyNodes {
                nodes: u32::MAX as usize + 1
            })
        );
    }

    #[test]
    fn text_iteration_above_u32_is_rejected() {
        // Regression: the parsed u64 was cast with `as u32`, so 2^32
        // decoded as iteration 0 instead of failing.
        let text = "# app=x nodes=1 iterations=1\n0 0 C 0 0 get_ro_request 4294967296\n";
        assert_eq!(
            from_text(text),
            Err(DecodeError::BadField { field: "iteration" })
        );
        // The boundary value itself still parses.
        let ok = "# app=x nodes=1 iterations=1\n0 0 C 0 0 get_ro_request 4294967295\n";
        assert_eq!(from_text(ok).unwrap().records()[0].iteration, u32::MAX);
    }

    #[test]
    fn encode_errors_render() {
        assert!(EncodeError::AppTooLong { len: 70_000 }
            .to_string()
            .contains("u16"));
        assert!(EncodeError::TooManyNodes { nodes: 1 }
            .to_string()
            .contains("u32"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let b = TraceBundle::new(TraceMeta::new("empty", 2, 0));
        assert_eq!(decode(&encode(&b).unwrap()).unwrap(), b);
        assert_eq!(from_text(&to_text(&b)).unwrap(), b);
    }
}
