#![warn(missing_docs)]

//! # trace — coherence message traces
//!
//! The paper evaluates Cosmos on *traces of coherence messages* captured
//! from the Stache protocol (§5). This crate defines the trace format and
//! the tooling around it:
//!
//! * [`MsgRecord`] — one incoming-message observation: when, at which node
//!   and role (cache or directory), for which block, from whom, and what;
//! * [`TraceBundle`] — a full run's worth of records plus metadata, with
//!   iterators per receiver and per block;
//! * [`codec`] — a compact binary encoding (and a line-oriented text
//!   encoding) for writing traces to disk and reading them back;
//! * [`io`] — streaming readers/writers over `std::io` in the same binary
//!   format, for traces too large to hold in memory;
//! * [`pack`] — the chunked, compressed packed-trace format: streaming
//!   writers, indexed readers, and independent per-chunk decode for
//!   parallel replay with bounded memory;
//! * [`simpoint`] — SimPoint-style phase sampling: interval fingerprints
//!   over message-signature arcs, deterministic k-means clustering, and
//!   weighted representative selection;
//! * [`stats`] — message mix and volume statistics;
//! * [`signature`] — extraction of *message signatures*: the arcs
//!   (consecutive incoming-message pairs per block) whose reference shares
//!   the paper reports in Figures 6 and 7.
//!
//! ## Example
//!
//! ```
//! use stache::{BlockAddr, MsgType, NodeId, Role};
//! use trace::{MsgRecord, TraceBundle, TraceMeta};
//!
//! let mut bundle = TraceBundle::new(TraceMeta::new("example", 16, 10));
//! bundle.push(MsgRecord {
//!     time_ns: 100,
//!     node: NodeId::new(0),
//!     role: Role::Directory,
//!     block: BlockAddr::new(42),
//!     sender: NodeId::new(1),
//!     mtype: MsgType::GetRoRequest,
//!     iteration: 0,
//! });
//! assert_eq!(bundle.len(), 1);
//! assert_eq!(bundle.records()[0].mtype, MsgType::GetRoRequest);
//! ```

pub mod bundle;
pub mod codec;
pub mod io;
pub mod pack;
pub mod record;
pub mod signature;
pub mod simpoint;
pub mod stats;

pub use bundle::{TraceBundle, TraceMeta};
pub use record::MsgRecord;
pub use signature::{ArcKey, ArcTable};
pub use stats::TraceStats;
