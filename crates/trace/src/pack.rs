//! `pack` — the chunked, compressed, streaming on-disk trace format.
//!
//! The flat [`crate::codec`] format stores one fixed 26-byte record per
//! message; a billion-message `workloads::scale` run would be 26 GB and,
//! worse, the in-memory [`TraceBundle`] it decodes into would not fit in
//! RAM. This module stores the same records in independent fixed-size
//! **chunks** so writers stream records to disk as the simulator emits
//! them and readers replay them chunk-at-a-time with bounded memory
//! (peak RSS ≈ chunk size × decode workers, never the full trace).
//!
//! ## Frame layout
//!
//! ```text
//! file   := header chunk* index footer
//! header := "CPK1" version(u8) app_len(u16) app nodes(u32) iterations(u32)
//!           chunk_records(u32)
//! chunk  := "CHNK" records(u32) raw_len(u32) method(u8) comp_len(u32)
//!           crc32(u32)  payload[comp_len]
//! index  := "CIDX" count(u32) { offset(u64) records(u32) comp_len(u32)
//!           raw_len(u32) first_time(u64) }*
//! footer := total_records(u64) index_offset(u64) "CEND"
//! ```
//!
//! All integers are big-endian, matching the flat codec. The `crc32` is
//! over the *uncompressed* chunk payload, so corruption is detected
//! before malformed columns are parsed. `method` is [`METHOD_STORE`] or
//! [`METHOD_LZ`]; a chunk whose compressed form would be larger than its
//! raw form is stored verbatim. Each chunk carries its own column
//! dictionaries, so chunks decode independently — the property both the
//! parallel decode path and SimPoint random access rely on.
//!
//! ## Chunk payload (columnar)
//!
//! Within a chunk the record fields are stored as columns, each encoded
//! to exploit its own structure before the byte-level compressor runs:
//!
//! * **timestamps** — first value varint, then delta-of-delta zigzag
//!   varints (simulated clocks advance in near-constant steps, so the
//!   second difference is almost always a small integer);
//! * **block addresses** — zigzag-delta varints (workloads sweep block
//!   ranges, so consecutive records touch nearby addresses);
//! * **(node, role)**, **sender**, **mtype** — per-chunk dictionaries in
//!   first-appearance order, then one varint dictionary index per
//!   record (a chunk rarely sees more than a handful of distinct agents);
//! * **iterations** — zigzag-delta varints (monotone, mostly-zero
//!   deltas).
//!
//! The concatenated columns are then run through a hand-rolled LZ77
//! byte compressor (the workspace is dependency-free — no zstd): LZ4
//! block-style token streams of literal runs and `(offset, length)`
//! back-references with overlapping-copy support, which turns the long
//! zero runs the delta columns produce into a few bytes each.
//!
//! ## Example
//!
//! ```
//! use stache::{BlockAddr, MsgType, NodeId, Role};
//! use trace::pack::{pack_bundle, unpack_bundle};
//! use trace::{MsgRecord, TraceBundle, TraceMeta};
//!
//! let mut b = TraceBundle::new(TraceMeta::new("example", 4, 2));
//! for i in 0..100u64 {
//!     b.push(MsgRecord {
//!         time_ns: 40 * i,
//!         node: NodeId::new((i % 4) as usize),
//!         role: Role::Cache,
//!         block: BlockAddr::new(i / 2),
//!         sender: NodeId::new(((i + 1) % 4) as usize),
//!         mtype: MsgType::GetRoResponse,
//!         iteration: (i / 50) as u32,
//!     });
//! }
//! let bytes = pack_bundle(&b, 32).unwrap();
//! assert_eq!(unpack_bundle(&bytes).unwrap(), b);
//! ```

use crate::bundle::{TraceBundle, TraceMeta};
use crate::record::MsgRecord;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic.
const MAGIC: &[u8; 4] = b"CPK1";
/// Per-chunk magic.
const CHUNK_MAGIC: &[u8; 4] = b"CHNK";
/// Index magic.
const INDEX_MAGIC: &[u8; 4] = b"CIDX";
/// Footer magic.
const END_MAGIC: &[u8; 4] = b"CEND";
/// Format version.
const VERSION: u8 = 1;
/// Chunk payload stored verbatim.
pub const METHOD_STORE: u8 = 0;
/// Chunk payload LZ-compressed.
pub const METHOD_LZ: u8 = 1;
/// Fixed footer size: total_records + index_offset + magic.
const FOOTER_BYTES: u64 = 8 + 8 + 4;
/// Index entry size: offset + records + comp_len + raw_len + first_time.
const INDEX_ENTRY_BYTES: u64 = 8 + 4 + 4 + 4 + 8;
/// The flat codec's per-record cost, the compression-ratio baseline.
pub const FLAT_RECORD_BYTES: u64 = crate::io::RECORD_BYTES as u64;

/// A failure while packing or unpacking a trace.
#[derive(Debug)]
pub enum PackError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// A magic marker was wrong — not a packed trace, or not the
    /// expected structure at this offset.
    BadMagic {
        /// Which marker was malformed.
        what: &'static str,
    },
    /// The input ended mid-structure.
    Truncated,
    /// A field held an out-of-range or internally inconsistent value.
    Corrupt {
        /// Which field or structure was malformed.
        what: &'static str,
    },
    /// A chunk's uncompressed payload failed its checksum.
    CrcMismatch {
        /// The zero-based chunk number.
        chunk: usize,
    },
    /// The bundle's metadata does not fit the header fields.
    Encode(crate::codec::EncodeError),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io(e) => write!(f, "packed trace i/o failed: {e}"),
            PackError::BadMagic { what } => write!(f, "not a packed trace: bad {what} magic"),
            PackError::Truncated => write!(f, "packed trace truncated"),
            PackError::Corrupt { what } => write!(f, "packed trace corrupt: {what}"),
            PackError::CrcMismatch { chunk } => {
                write!(f, "packed trace chunk {chunk} failed its CRC check")
            }
            PackError::Encode(e) => write!(f, "trace header unencodable: {e}"),
        }
    }
}

impl Error for PackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PackError::Io(e) => Some(e),
            PackError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PackError {
    fn from(e: io::Error) -> Self {
        // EOF mid-structure is a malformed stream, not an I/O fault:
        // report it as the typed truncation every caller matches on.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PackError::Truncated
        } else {
            PackError::Io(e)
        }
    }
}

impl From<crate::codec::EncodeError> for PackError {
    fn from(e: crate::codec::EncodeError) -> Self {
        PackError::Encode(e)
    }
}

// ---------------------------------------------------------------------
// Varint + zigzag primitives.
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, PackError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(PackError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(PackError::Corrupt { what: "varint" });
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(PackError::Corrupt { what: "varint" });
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven).
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 of a byte slice (the checksum each chunk carries).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Byte-level LZ compressor (LZ4-block-style, dependency-free).
// ---------------------------------------------------------------------

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 0xFFFF;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn put_len(out: &mut Vec<u8>, mut rem: usize) {
    while rem >= 255 {
        out.push(255);
        rem -= 255;
    }
    out.push(rem as u8);
}

/// Compresses `src` with the hand-rolled LZ77 coder. The output is a
/// sequence of `(token, literals, offset, extension)` groups in the LZ4
/// block style; the final group is literals-only (no offset follows).
pub fn lz_compress(src: &[u8]) -> Vec<u8> {
    let n = src.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(src, i);
        let cand = head[h];
        head[h] = i as u32;
        let cand = cand as usize;
        if cand != u32::MAX as usize
            && i - cand <= MAX_OFFSET
            && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH]
        {
            let mut len = MIN_MATCH;
            while i + len < n && src[cand + len] == src[i + len] {
                len += 1;
            }
            let lit = i - lit_start;
            let token = ((lit.min(15) as u8) << 4) | ((len - MIN_MATCH).min(15) as u8);
            out.push(token);
            if lit >= 15 {
                put_len(&mut out, lit - 15);
            }
            out.extend_from_slice(&src[lit_start..i]);
            out.extend_from_slice(&((i - cand) as u16).to_be_bytes());
            if len - MIN_MATCH >= 15 {
                put_len(&mut out, len - MIN_MATCH - 15);
            }
            // Seed the hash table inside long matches at a coarse step so
            // repetitive columns still find nearby back-references.
            let end = i + len;
            let step = (len / 16).max(1);
            let mut j = i + step;
            while j + MIN_MATCH <= end.min(n - MIN_MATCH + 1) {
                head[hash4(src, j)] = j as u32;
                j += step;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Final literals-only group.
    let lit = n - lit_start;
    let token = (lit.min(15) as u8) << 4;
    out.push(token);
    if lit >= 15 {
        put_len(&mut out, lit - 15);
    }
    out.extend_from_slice(&src[lit_start..]);
    out
}

fn get_len(src: &[u8], pos: &mut usize, base: usize) -> Result<usize, PackError> {
    let mut len = base;
    if base == 15 {
        loop {
            let b = *src.get(*pos).ok_or(PackError::Truncated)?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompresses an [`lz_compress`] stream into exactly `raw_len` bytes.
///
/// # Errors
///
/// Returns a typed [`PackError`] on any malformed input; never panics.
pub fn lz_decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>, PackError> {
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    loop {
        let token = *src.get(pos).ok_or(PackError::Truncated)?;
        pos += 1;
        let lit = get_len(src, &mut pos, (token >> 4) as usize)?;
        if pos + lit > src.len() {
            return Err(PackError::Truncated);
        }
        out.extend_from_slice(&src[pos..pos + lit]);
        pos += lit;
        if pos == src.len() {
            break;
        }
        if pos + 2 > src.len() {
            return Err(PackError::Truncated);
        }
        let offset = u16::from_be_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(PackError::Corrupt { what: "lz offset" });
        }
        let mlen = get_len(src, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
        if out.len() + mlen > raw_len {
            return Err(PackError::Corrupt { what: "lz length" });
        }
        // Byte-by-byte so overlapping (RLE-style) copies replicate.
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(PackError::Corrupt { what: "raw length" });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Columnar chunk codec.
// ---------------------------------------------------------------------

/// Encodes one chunk's records into the uncompressed columnar payload.
fn encode_chunk_raw(records: &[MsgRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "chunks are never empty");
    let n = records.len();
    let mut out = Vec::with_capacity(n * 6);

    // Column 1: timestamps, delta-of-delta (wrapping, lossless).
    put_varint(&mut out, records[0].time_ns);
    let mut prev_time = records[0].time_ns;
    let mut prev_delta = 0u64;
    for r in &records[1..] {
        let delta = r.time_ns.wrapping_sub(prev_time);
        let dod = delta.wrapping_sub(prev_delta);
        put_varint(&mut out, zigzag(dod as i64));
        prev_time = r.time_ns;
        prev_delta = delta;
    }

    // Dictionaries, first-appearance order.
    let mut agents: Vec<(u16, u8)> = Vec::new();
    let mut senders: Vec<u16> = Vec::new();
    let mut mtypes: Vec<u8> = Vec::new();
    let mut agent_idx = Vec::with_capacity(n);
    let mut sender_idx = Vec::with_capacity(n);
    let mut mtype_idx = Vec::with_capacity(n);
    for r in records {
        let role = match r.role {
            Role::Cache => 0u8,
            Role::Directory => 1u8,
        };
        let a = (r.node.raw(), role);
        let ai = agents.iter().position(|&x| x == a).unwrap_or_else(|| {
            agents.push(a);
            agents.len() - 1
        });
        agent_idx.push(ai as u64);
        let s = r.sender.raw();
        let si = senders.iter().position(|&x| x == s).unwrap_or_else(|| {
            senders.push(s);
            senders.len() - 1
        });
        sender_idx.push(si as u64);
        let m = r.mtype.code();
        let mi = mtypes.iter().position(|&x| x == m).unwrap_or_else(|| {
            mtypes.push(m);
            mtypes.len() - 1
        });
        mtype_idx.push(mi as u64);
    }
    put_varint(&mut out, agents.len() as u64);
    for (node, role) in &agents {
        put_varint(&mut out, u64::from(*node));
        out.push(*role);
    }
    put_varint(&mut out, senders.len() as u64);
    for s in &senders {
        put_varint(&mut out, u64::from(*s));
    }
    put_varint(&mut out, mtypes.len() as u64);
    out.extend_from_slice(&mtypes);

    // Index columns, then delta columns, each contiguous.
    for &i in &agent_idx {
        put_varint(&mut out, i);
    }
    let mut prev_block = 0u64;
    for r in records {
        let delta = r.block.number().wrapping_sub(prev_block);
        put_varint(&mut out, zigzag(delta as i64));
        prev_block = r.block.number();
    }
    for &i in &sender_idx {
        put_varint(&mut out, i);
    }
    for &i in &mtype_idx {
        put_varint(&mut out, i);
    }
    let mut prev_iter = 0u32;
    for r in records {
        let delta = r.iteration.wrapping_sub(prev_iter);
        put_varint(&mut out, zigzag(i64::from(delta as i32)));
        prev_iter = r.iteration;
    }
    out
}

/// Decodes one chunk's uncompressed columnar payload.
fn decode_chunk_raw(data: &[u8], n: usize) -> Result<Vec<MsgRecord>, PackError> {
    if n == 0 {
        return Err(PackError::Corrupt {
            what: "empty chunk",
        });
    }
    let mut pos = 0usize;

    let mut times = Vec::with_capacity(n);
    let first = get_varint(data, &mut pos)?;
    times.push(first);
    let mut prev_time = first;
    let mut prev_delta = 0u64;
    for _ in 1..n {
        let dod = unzigzag(get_varint(data, &mut pos)?) as u64;
        let delta = prev_delta.wrapping_add(dod);
        prev_time = prev_time.wrapping_add(delta);
        prev_delta = delta;
        times.push(prev_time);
    }

    let agent_count = get_varint(data, &mut pos)? as usize;
    if agent_count == 0 || agent_count > n {
        return Err(PackError::Corrupt { what: "agent dict" });
    }
    let mut agents = Vec::with_capacity(agent_count);
    for _ in 0..agent_count {
        let raw = get_varint(data, &mut pos)?;
        let node = u16::try_from(raw)
            .ok()
            .and_then(NodeId::from_raw)
            .ok_or(PackError::Corrupt { what: "node" })?;
        let role = match *data.get(pos).ok_or(PackError::Truncated)? {
            0 => Role::Cache,
            1 => Role::Directory,
            _ => return Err(PackError::Corrupt { what: "role" }),
        };
        pos += 1;
        agents.push((node, role));
    }
    let sender_count = get_varint(data, &mut pos)? as usize;
    if sender_count == 0 || sender_count > n {
        return Err(PackError::Corrupt {
            what: "sender dict",
        });
    }
    let mut senders = Vec::with_capacity(sender_count);
    for _ in 0..sender_count {
        let raw = get_varint(data, &mut pos)?;
        let node = u16::try_from(raw)
            .ok()
            .and_then(NodeId::from_raw)
            .ok_or(PackError::Corrupt { what: "sender" })?;
        senders.push(node);
    }
    let mtype_count = get_varint(data, &mut pos)? as usize;
    if mtype_count == 0 || mtype_count > n {
        return Err(PackError::Corrupt { what: "mtype dict" });
    }
    let mut mtypes = Vec::with_capacity(mtype_count);
    for _ in 0..mtype_count {
        let code = *data.get(pos).ok_or(PackError::Truncated)?;
        pos += 1;
        mtypes.push(MsgType::from_code(code).ok_or(PackError::Corrupt { what: "mtype" })?);
    }

    let mut agent_idx = Vec::with_capacity(n);
    for _ in 0..n {
        let i = get_varint(data, &mut pos)? as usize;
        if i >= agent_count {
            return Err(PackError::Corrupt { what: "agent idx" });
        }
        agent_idx.push(i);
    }
    let mut blocks = Vec::with_capacity(n);
    let mut prev_block = 0u64;
    for _ in 0..n {
        let delta = unzigzag(get_varint(data, &mut pos)?) as u64;
        prev_block = prev_block.wrapping_add(delta);
        blocks.push(prev_block);
    }
    let mut sender_idx = Vec::with_capacity(n);
    for _ in 0..n {
        let i = get_varint(data, &mut pos)? as usize;
        if i >= sender_count {
            return Err(PackError::Corrupt { what: "sender idx" });
        }
        sender_idx.push(i);
    }
    let mut mtype_idx = Vec::with_capacity(n);
    for _ in 0..n {
        let i = get_varint(data, &mut pos)? as usize;
        if i >= mtype_count {
            return Err(PackError::Corrupt { what: "mtype idx" });
        }
        mtype_idx.push(i);
    }
    let mut records = Vec::with_capacity(n);
    let mut prev_iter = 0u32;
    for i in 0..n {
        let delta = unzigzag(get_varint(data, &mut pos)?) as i32 as u32;
        prev_iter = prev_iter.wrapping_add(delta);
        let (node, role) = agents[agent_idx[i]];
        records.push(MsgRecord {
            time_ns: times[i],
            node,
            role,
            block: BlockAddr::new(blocks[i]),
            sender: senders[sender_idx[i]],
            mtype: mtypes[mtype_idx[i]],
            iteration: prev_iter,
        });
    }
    if pos != data.len() {
        return Err(PackError::Corrupt {
            what: "chunk trailing bytes",
        });
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// Chunks on the wire.
// ---------------------------------------------------------------------

/// One chunk's index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// File offset of the chunk's `CHNK` marker.
    pub offset: u64,
    /// Records in the chunk.
    pub records: u32,
    /// Compressed payload bytes.
    pub comp_len: u32,
    /// Uncompressed payload bytes.
    pub raw_len: u32,
    /// Timestamp of the chunk's first record (coarse time index).
    pub first_time: u64,
}

/// A chunk as read from disk, before decoding: the decode side is pure
/// (`Send + Sync` inputs), so callers can fan chunk decodes out over a
/// worker pool while a single reader thread does the I/O.
#[derive(Debug, Clone)]
pub struct PackedChunk {
    /// Records in the chunk.
    pub records: u32,
    /// Uncompressed payload length.
    pub raw_len: u32,
    /// Compression method ([`METHOD_STORE`] or [`METHOD_LZ`]).
    pub method: u8,
    /// Expected CRC-32 of the uncompressed payload.
    pub crc: u32,
    /// The on-disk payload (compressed when `method == METHOD_LZ`).
    pub payload: Vec<u8>,
    /// Zero-based chunk number (for error attribution).
    pub number: usize,
}

impl PackedChunk {
    /// Decompresses, checks the CRC, and decodes the records.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PackError`] on corruption; never panics.
    pub fn decode(&self) -> Result<Vec<MsgRecord>, PackError> {
        let raw = match self.method {
            METHOD_STORE => {
                if self.payload.len() != self.raw_len as usize {
                    return Err(PackError::Corrupt { what: "stored len" });
                }
                self.payload.clone()
            }
            METHOD_LZ => lz_decompress(&self.payload, self.raw_len as usize)?,
            _ => return Err(PackError::Corrupt { what: "method" }),
        };
        if crc32(&raw) != self.crc {
            return Err(PackError::CrcMismatch { chunk: self.number });
        }
        decode_chunk_raw(&raw, self.records as usize)
    }
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Deterministic byte totals of one packing pass, for the
/// `trace.pack.*` metrics and the compression-ratio report. Wall-clock
/// timings are deliberately *not* here — they live with the bench
/// harness so obs snapshots stay byte-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Records written.
    pub records: u64,
    /// Chunks written.
    pub chunks: u64,
    /// What the flat 26-byte codec would have used for the records.
    pub flat_bytes: u64,
    /// Total packed file size (header + chunks + index + footer).
    pub packed_bytes: u64,
    /// Uncompressed columnar payload bytes (before LZ).
    pub raw_payload_bytes: u64,
    /// Compressed payload bytes (after LZ).
    pub comp_payload_bytes: u64,
}

impl PackStats {
    /// Compression ratio vs the flat codec (flat / packed); 0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.packed_bytes == 0 {
            return 0.0;
        }
        self.flat_bytes as f64 / self.packed_bytes as f64
    }

    /// Exports the deterministic totals under `trace.pack.*`.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("trace.pack.records", self.records);
        snap.counter("trace.pack.chunks", self.chunks);
        snap.counter("trace.pack.bytes_in", self.flat_bytes);
        snap.counter("trace.pack.bytes_out", self.packed_bytes);
        snap.counter("trace.pack.raw_payload_bytes", self.raw_payload_bytes);
        snap.counter("trace.pack.comp_payload_bytes", self.comp_payload_bytes);
        snap.gauge("trace.pack.ratio", self.ratio());
    }
}

/// Streams records into a packed trace without ever holding more than
/// one chunk's worth in memory.
#[derive(Debug)]
pub struct PackedTraceWriter<W: Write + Seek> {
    sink: W,
    chunk_records: u32,
    buf: Vec<MsgRecord>,
    index: Vec<ChunkInfo>,
    stats: PackStats,
    offset: u64,
}

impl<W: Write + Seek> PackedTraceWriter<W> {
    /// Starts a packed trace: writes the header.
    ///
    /// # Errors
    ///
    /// Rejects metadata that does not fit the header fields and
    /// propagates sink errors.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn new(mut sink: W, meta: &TraceMeta, chunk_records: u32) -> Result<Self, PackError> {
        assert!(chunk_records > 0, "chunk_records must be nonzero");
        crate::codec::check_header_bounds(meta)?;
        let mut header = Vec::with_capacity(32 + meta.app.len());
        header.extend_from_slice(MAGIC);
        header.push(VERSION);
        header.extend_from_slice(&(meta.app.len() as u16).to_be_bytes());
        header.extend_from_slice(meta.app.as_bytes());
        header.extend_from_slice(&(meta.nodes as u32).to_be_bytes());
        header.extend_from_slice(&meta.iterations.to_be_bytes());
        header.extend_from_slice(&chunk_records.to_be_bytes());
        sink.write_all(&header)?;
        Ok(PackedTraceWriter {
            sink,
            chunk_records,
            buf: Vec::with_capacity(chunk_records as usize),
            index: Vec::new(),
            stats: PackStats::default(),
            offset: header.len() as u64,
        })
    }

    /// Appends one record, flushing a chunk when the buffer fills.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn push(&mut self, r: MsgRecord) -> Result<(), PackError> {
        self.buf.push(r);
        if self.buf.len() == self.chunk_records as usize {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a batch of records.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn push_all(&mut self, records: &[MsgRecord]) -> Result<(), PackError> {
        for r in records {
            self.push(*r)?;
        }
        Ok(())
    }

    /// Records buffered but not yet flushed (bounded by the chunk size).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn flush_chunk(&mut self) -> Result<(), PackError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let raw = encode_chunk_raw(&self.buf);
        let crc = crc32(&raw);
        let lz = lz_compress(&raw);
        let (method, payload) = if lz.len() < raw.len() {
            (METHOD_LZ, &lz)
        } else {
            (METHOD_STORE, &raw)
        };
        let mut head = [0u8; 21];
        head[0..4].copy_from_slice(CHUNK_MAGIC);
        head[4..8].copy_from_slice(&(self.buf.len() as u32).to_be_bytes());
        head[8..12].copy_from_slice(&(raw.len() as u32).to_be_bytes());
        head[12] = method;
        head[13..17].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        head[17..21].copy_from_slice(&crc.to_be_bytes());
        self.sink.write_all(&head)?;
        self.sink.write_all(payload)?;
        self.index.push(ChunkInfo {
            offset: self.offset,
            records: self.buf.len() as u32,
            comp_len: payload.len() as u32,
            raw_len: raw.len() as u32,
            first_time: self.buf[0].time_ns,
        });
        self.offset += (head.len() + payload.len()) as u64;
        self.stats.records += self.buf.len() as u64;
        self.stats.chunks += 1;
        self.stats.flat_bytes += self.buf.len() as u64 * FLAT_RECORD_BYTES;
        self.stats.raw_payload_bytes += raw.len() as u64;
        self.stats.comp_payload_bytes += payload.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the trailing partial chunk, writes the index and footer,
    /// and returns the sink plus the byte totals.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn finish(mut self) -> Result<(W, PackStats), PackError> {
        self.flush_chunk()?;
        let index_offset = self.offset;
        let mut tail = Vec::with_capacity(8 + self.index.len() * INDEX_ENTRY_BYTES as usize + 20);
        tail.extend_from_slice(INDEX_MAGIC);
        tail.extend_from_slice(&(self.index.len() as u32).to_be_bytes());
        for c in &self.index {
            tail.extend_from_slice(&c.offset.to_be_bytes());
            tail.extend_from_slice(&c.records.to_be_bytes());
            tail.extend_from_slice(&c.comp_len.to_be_bytes());
            tail.extend_from_slice(&c.raw_len.to_be_bytes());
            tail.extend_from_slice(&c.first_time.to_be_bytes());
        }
        tail.extend_from_slice(&self.stats.records.to_be_bytes());
        tail.extend_from_slice(&index_offset.to_be_bytes());
        tail.extend_from_slice(END_MAGIC);
        self.sink.write_all(&tail)?;
        self.sink.flush()?;
        self.stats.packed_bytes = self.offset + tail.len() as u64;
        Ok((self.sink, self.stats))
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// Reads a packed trace: sequential chunk iteration plus random chunk
/// access through the index.
#[derive(Debug)]
pub struct PackedTraceReader<R: Read + Seek> {
    source: R,
    meta: TraceMeta,
    chunk_records: u32,
    total_records: u64,
    index: Vec<ChunkInfo>,
}

impl PackedTraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens a packed trace file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and malformed content.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PackError> {
        let file = std::fs::File::open(path).map_err(PackError::Io)?;
        PackedTraceReader::new(std::io::BufReader::new(file))
    }
}

impl<R: Read + Seek> PackedTraceReader<R> {
    /// Validates the header, footer, and chunk index.
    ///
    /// # Errors
    ///
    /// Fails with a typed [`PackError`] on any malformed structure.
    pub fn new(mut source: R) -> Result<Self, PackError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PackError::BadMagic { what: "file" });
        }
        let mut b1 = [0u8; 1];
        source.read_exact(&mut b1)?;
        if b1[0] != VERSION {
            return Err(PackError::Corrupt { what: "version" });
        }
        let mut b2 = [0u8; 2];
        source.read_exact(&mut b2)?;
        let app_len = u16::from_be_bytes(b2) as usize;
        let mut app = vec![0u8; app_len];
        source.read_exact(&mut app)?;
        let app = String::from_utf8(app).map_err(|_| PackError::Corrupt { what: "app" })?;
        let mut b4 = [0u8; 4];
        source.read_exact(&mut b4)?;
        let nodes = u32::from_be_bytes(b4) as usize;
        source.read_exact(&mut b4)?;
        let iterations = u32::from_be_bytes(b4);
        source.read_exact(&mut b4)?;
        let chunk_records = u32::from_be_bytes(b4);
        if chunk_records == 0 {
            return Err(PackError::Corrupt {
                what: "chunk_records",
            });
        }
        let header_end = source.stream_position()?;

        let file_len = source.seek(SeekFrom::End(0))?;
        if file_len < header_end + FOOTER_BYTES {
            return Err(PackError::Truncated);
        }
        source.seek(SeekFrom::End(-(FOOTER_BYTES as i64)))?;
        let mut footer = [0u8; FOOTER_BYTES as usize];
        source.read_exact(&mut footer)?;
        if &footer[16..20] != END_MAGIC {
            return Err(PackError::BadMagic { what: "footer" });
        }
        let total_records = u64::from_be_bytes(footer[0..8].try_into().expect("8 bytes"));
        let index_offset = u64::from_be_bytes(footer[8..16].try_into().expect("8 bytes"));
        if index_offset < header_end || index_offset > file_len - FOOTER_BYTES {
            return Err(PackError::Corrupt {
                what: "index offset",
            });
        }
        source.seek(SeekFrom::Start(index_offset))?;
        source.read_exact(&mut magic)?;
        if &magic != INDEX_MAGIC {
            return Err(PackError::BadMagic { what: "index" });
        }
        source.read_exact(&mut b4)?;
        let count = u32::from_be_bytes(b4) as usize;
        let index_bytes = (file_len - FOOTER_BYTES).saturating_sub(index_offset + 8);
        if count as u64 * INDEX_ENTRY_BYTES != index_bytes {
            return Err(PackError::Corrupt {
                what: "index length",
            });
        }
        let mut index = Vec::with_capacity(count);
        let mut entry = [0u8; INDEX_ENTRY_BYTES as usize];
        let mut sum = 0u64;
        for _ in 0..count {
            source.read_exact(&mut entry)?;
            let info = ChunkInfo {
                offset: u64::from_be_bytes(entry[0..8].try_into().expect("8 bytes")),
                records: u32::from_be_bytes(entry[8..12].try_into().expect("4 bytes")),
                comp_len: u32::from_be_bytes(entry[12..16].try_into().expect("4 bytes")),
                raw_len: u32::from_be_bytes(entry[16..20].try_into().expect("4 bytes")),
                first_time: u64::from_be_bytes(entry[20..28].try_into().expect("8 bytes")),
            };
            if info.offset < header_end || info.offset >= index_offset || info.records == 0 {
                return Err(PackError::Corrupt {
                    what: "index entry",
                });
            }
            sum += u64::from(info.records);
            index.push(info);
        }
        if sum != total_records {
            return Err(PackError::Corrupt {
                what: "record count",
            });
        }
        Ok(PackedTraceReader {
            source,
            meta: TraceMeta::new(app, nodes, iterations),
            chunk_records,
            total_records,
            index,
        })
    }

    /// The trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records per full chunk (the interval size SimPoint aligns to).
    pub fn chunk_records(&self) -> u32 {
        self.chunk_records
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// Total records in the trace.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The chunk index.
    pub fn index(&self) -> &[ChunkInfo] {
        &self.index
    }

    /// Reads chunk `i`'s bytes without decoding (the parallel-decode
    /// split: I/O here, [`PackedChunk::decode`] on any thread).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed chunk header.
    pub fn read_chunk_raw(&mut self, i: usize) -> Result<PackedChunk, PackError> {
        let info = *self.index.get(i).ok_or(PackError::Corrupt {
            what: "chunk number",
        })?;
        self.source.seek(SeekFrom::Start(info.offset))?;
        let mut head = [0u8; 21];
        self.source.read_exact(&mut head)?;
        if &head[0..4] != CHUNK_MAGIC {
            return Err(PackError::BadMagic { what: "chunk" });
        }
        let records = u32::from_be_bytes(head[4..8].try_into().expect("4 bytes"));
        let raw_len = u32::from_be_bytes(head[8..12].try_into().expect("4 bytes"));
        let method = head[12];
        let comp_len = u32::from_be_bytes(head[13..17].try_into().expect("4 bytes"));
        let crc = u32::from_be_bytes(head[17..21].try_into().expect("4 bytes"));
        if records != info.records || comp_len != info.comp_len || raw_len != info.raw_len {
            return Err(PackError::Corrupt {
                what: "chunk header",
            });
        }
        let mut payload = vec![0u8; comp_len as usize];
        self.source.read_exact(&mut payload)?;
        Ok(PackedChunk {
            records,
            raw_len,
            method,
            crc,
            payload,
            number: i,
        })
    }

    /// Reads and decodes chunk `i`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corruption.
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<MsgRecord>, PackError> {
        self.read_chunk_raw(i)?.decode()
    }

    /// Streams every chunk through `f` in order — the bounded-memory
    /// replay path: at most one decoded chunk is live at a time.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corruption; `f` is not called again after
    /// an error.
    pub fn for_each_chunk(&mut self, mut f: impl FnMut(&[MsgRecord])) -> Result<(), PackError> {
        for i in 0..self.index.len() {
            let records = self.read_chunk(i)?;
            f(&records);
        }
        Ok(())
    }

    /// Drains the whole trace into a bundle (tests and small traces; the
    /// scale path should use [`for_each_chunk`](Self::for_each_chunk)).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corruption.
    pub fn read_bundle(&mut self) -> Result<TraceBundle, PackError> {
        let mut bundle = TraceBundle::new(self.meta.clone());
        self.for_each_chunk(|records| bundle.extend_records(records.iter().copied()))?;
        Ok(bundle)
    }
}

// ---------------------------------------------------------------------
// One-shot helpers.
// ---------------------------------------------------------------------

/// Packs a bundle into an in-memory packed trace.
///
/// # Errors
///
/// Fails when the metadata does not fit the header fields.
pub fn pack_bundle(bundle: &TraceBundle, chunk_records: u32) -> Result<Vec<u8>, PackError> {
    let cursor = std::io::Cursor::new(Vec::new());
    let mut w = PackedTraceWriter::new(cursor, bundle.meta(), chunk_records)?;
    w.push_all(bundle.records())?;
    let (cursor, _) = w.finish()?;
    Ok(cursor.into_inner())
}

/// Packs a bundle and returns the byte totals alongside the bytes.
///
/// # Errors
///
/// Fails when the metadata does not fit the header fields.
pub fn pack_bundle_with_stats(
    bundle: &TraceBundle,
    chunk_records: u32,
) -> Result<(Vec<u8>, PackStats), PackError> {
    let cursor = std::io::Cursor::new(Vec::new());
    let mut w = PackedTraceWriter::new(cursor, bundle.meta(), chunk_records)?;
    w.push_all(bundle.records())?;
    let (cursor, stats) = w.finish()?;
    Ok((cursor.into_inner(), stats))
}

/// Unpacks an in-memory packed trace into a bundle.
///
/// # Errors
///
/// Fails with a typed [`PackError`] on malformed input; never panics.
pub fn unpack_bundle(bytes: &[u8]) -> Result<TraceBundle, PackError> {
    PackedTraceReader::new(std::io::Cursor::new(bytes))?.read_bundle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> MsgRecord {
        MsgRecord {
            time_ns: 40 * i + (i % 3),
            node: NodeId::new((i % 16) as usize),
            role: if i.is_multiple_of(2) {
                Role::Cache
            } else {
                Role::Directory
            },
            block: BlockAddr::new((i / 2) * 64),
            sender: NodeId::new(((i + 5) % 16) as usize),
            mtype: MsgType::from_code((i % 12) as u8).unwrap(),
            iteration: (i / 40) as u32,
        }
    }

    fn sample(n: u64) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("pack-test", 16, 8));
        for i in 0..n {
            b.push(rec(i));
        }
        b
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_overlong_is_corrupt() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(PackError::Corrupt { what: "varint" })
        ));
        let mut pos = 0;
        assert!(matches!(
            get_varint(&[0x80], &mut pos),
            Err(PackError::Truncated)
        ));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn lz_roundtrip_on_mixed_data() {
        let mut data = Vec::new();
        for i in 0..4000u32 {
            data.push((i % 7) as u8);
            if i % 5 == 0 {
                data.extend_from_slice(b"repeated-motif-");
            }
        }
        let comp = lz_compress(&data);
        assert!(comp.len() < data.len(), "repetitive input must shrink");
        assert_eq!(lz_decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip_on_incompressible_and_tiny_data() {
        // A de-correlated byte stream (xorshift) with no 4-byte repeats.
        let mut x = 0x9E37_79B9u32;
        let data: Vec<u8> = (0..512)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let comp = lz_compress(&data);
        assert_eq!(lz_decompress(&comp, data.len()).unwrap(), data);
        for n in 0..8 {
            let tiny = &data[..n];
            let c = lz_compress(tiny);
            assert_eq!(lz_decompress(&c, n).unwrap(), tiny);
        }
    }

    #[test]
    fn lz_decompress_rejects_corruption() {
        let data = vec![7u8; 300];
        let comp = lz_compress(&data);
        // Truncation.
        assert!(lz_decompress(&comp[..comp.len() - 1], data.len()).is_err());
        // Wrong expected length.
        assert!(lz_decompress(&comp, data.len() + 1).is_err());
        // A zero offset is never valid.
        let bad = vec![0x00u8, 0x00, 0x00];
        assert!(matches!(
            lz_decompress(&bad, 100),
            Err(PackError::Corrupt { what: "lz offset" })
        ));
    }

    #[test]
    fn packed_roundtrip_various_chunk_sizes() {
        for n in [1u64, 2, 31, 32, 33, 500] {
            let b = sample(n);
            for chunk in [1u32, 7, 32, 4096] {
                let bytes = pack_bundle(&b, chunk).unwrap();
                let decoded = unpack_bundle(&bytes).unwrap();
                assert_eq!(decoded, b, "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let b = TraceBundle::new(TraceMeta::new("empty", 2, 0));
        let bytes = pack_bundle(&b, 64).unwrap();
        let mut r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.chunk_count(), 0);
        assert_eq!(r.total_records(), 0);
        assert_eq!(r.read_bundle().unwrap(), b);
    }

    #[test]
    fn compresses_structured_traces_at_least_2x() {
        let b = sample(20_000);
        let (bytes, stats) = pack_bundle_with_stats(&b, 4096).unwrap();
        assert_eq!(stats.packed_bytes, bytes.len() as u64);
        assert_eq!(stats.flat_bytes, 20_000 * FLAT_RECORD_BYTES);
        assert!(
            stats.ratio() >= 2.0,
            "structured trace must compress >= 2x, got {:.2}",
            stats.ratio()
        );
    }

    #[test]
    fn random_chunk_access_matches_sequential() {
        let b = sample(1000);
        let bytes = pack_bundle(&b, 128).unwrap();
        let mut r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        assert_eq!(r.chunk_count(), 8);
        // Read out of order; each chunk decodes independently.
        for i in [5usize, 0, 7, 3] {
            let records = r.read_chunk(i).unwrap();
            let lo = i * 128;
            let hi = (lo + records.len()).min(1000);
            assert_eq!(&records[..], &b.records()[lo..hi], "chunk {i}");
            assert_eq!(r.index()[i].first_time, b.records()[lo].time_ns);
        }
    }

    #[test]
    fn parallel_style_decode_from_raw_chunks() {
        let b = sample(600);
        let bytes = pack_bundle(&b, 100).unwrap();
        let mut r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        let raw: Vec<PackedChunk> = (0..r.chunk_count())
            .map(|i| r.read_chunk_raw(i).unwrap())
            .collect();
        // Decode on worker threads (the I/O-free half of the split).
        let decoded: Vec<Vec<MsgRecord>> = std::thread::scope(|s| {
            let handles: Vec<_> = raw
                .iter()
                .map(|c| s.spawn(move || c.decode().unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let flat: Vec<MsgRecord> = decoded.into_iter().flatten().collect();
        assert_eq!(&flat[..], b.records());
    }

    #[test]
    fn bad_magic_everywhere_is_typed() {
        assert!(matches!(
            unpack_bundle(b"NOPE"),
            Err(PackError::BadMagic { what: "file" })
        ));
        assert!(matches!(unpack_bundle(b"CP"), Err(PackError::Truncated)));
        let b = sample(50);
        let mut bytes = pack_bundle(&b, 16).unwrap();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(b"XXXX");
        assert!(matches!(
            unpack_bundle(&bytes),
            Err(PackError::BadMagic { what: "footer" })
        ));
    }

    #[test]
    fn truncated_file_is_typed() {
        let b = sample(50);
        let bytes = pack_bundle(&b, 16).unwrap();
        for cut in [3usize, 10, bytes.len() - 3] {
            let err = unpack_bundle(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PackError::Truncated | PackError::Corrupt { .. } | PackError::BadMagic { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_chunk_payload_fails_crc() {
        let b = sample(200);
        let mut bytes = pack_bundle(&b, 64).unwrap();
        let r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        let info = r.index()[1];
        // Flip a byte in the middle of chunk 1's payload.
        let at = info.offset as usize + 21 + info.comp_len as usize / 2;
        bytes[at] ^= 0xA5;
        let mut r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        let err = r.read_chunk(1).unwrap_err();
        assert!(
            matches!(
                err,
                PackError::CrcMismatch { chunk: 1 }
                    | PackError::Corrupt { .. }
                    | PackError::Truncated
            ),
            "got {err:?}"
        );
        // Chunk 0 still decodes: chunks are independent.
        assert_eq!(&r.read_chunk(0).unwrap()[..], &b.records()[..64]);
    }

    #[test]
    fn corrupt_length_fields_are_typed() {
        let b = sample(100);
        let bytes = pack_bundle(&b, 32).unwrap();
        // Oversize the index count.
        let mut bad = bytes.clone();
        let r = PackedTraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        let index_offset =
            (bytes.len() as u64 - FOOTER_BYTES - 8 - r.index().len() as u64 * INDEX_ENTRY_BYTES)
                as usize;
        bad[index_offset + 4..index_offset + 8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            unpack_bundle(&bad),
            Err(PackError::Corrupt { .. })
        ));
        // Point the footer's index offset outside the file.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 12..n - 4].copy_from_slice(&(n as u64 * 2).to_be_bytes());
        assert!(matches!(
            unpack_bundle(&bad),
            Err(PackError::Corrupt {
                what: "index offset"
            })
        ));
    }

    #[test]
    fn streaming_writer_bounds_memory() {
        let meta = TraceMeta::new("stream", 16, 4);
        let mut w = PackedTraceWriter::new(std::io::Cursor::new(Vec::new()), &meta, 64).unwrap();
        for i in 0..1000u64 {
            w.push(rec(i)).unwrap();
            assert!(w.buffered() < 64, "buffer must flush at the chunk size");
        }
        let (cursor, stats) = w.finish().unwrap();
        assert_eq!(stats.records, 1000);
        assert_eq!(stats.chunks, 16); // 15 full + 1 partial
        let decoded = unpack_bundle(&cursor.into_inner()).unwrap();
        assert_eq!(decoded.records(), sample(1000).records());
    }

    #[test]
    fn oversized_metadata_is_an_encode_error() {
        let long = "x".repeat(u16::MAX as usize + 1);
        let meta = TraceMeta::new(long, 2, 1);
        assert!(matches!(
            PackedTraceWriter::new(std::io::Cursor::new(Vec::new()), &meta, 8),
            Err(PackError::Encode(_))
        ));
    }

    #[test]
    fn stats_export_obs_under_trace_pack() {
        let b = sample(500);
        let (_, stats) = pack_bundle_with_stats(&b, 128).unwrap();
        let mut snap = obs::Snapshot::new();
        stats.export_obs(&mut snap);
        assert!(snap.names().iter().all(|n| n.starts_with("trace.pack.")));
        assert_eq!(
            snap.get("trace.pack.records"),
            Some(&obs::MetricValue::Counter(500))
        );
        assert!(matches!(
            snap.get("trace.pack.ratio"),
            Some(obs::MetricValue::Gauge(r)) if *r > 1.0
        ));
    }

    #[test]
    fn errors_render() {
        assert!(PackError::Truncated.to_string().contains("truncated"));
        assert!(PackError::CrcMismatch { chunk: 3 }
            .to_string()
            .contains('3'));
        assert!(PackError::BadMagic { what: "file" }
            .to_string()
            .contains("magic"));
        assert!(PackError::Corrupt { what: "varint" }
            .to_string()
            .contains("varint"));
    }
}
