//! Trace bundles: a run's records plus metadata.

use crate::record::MsgRecord;
use stache::{BlockAddr, NodeId, Role};
use std::collections::BTreeSet;

/// Metadata describing the run a trace came from.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceMeta {
    /// Workload name (e.g. `"appbt"`).
    pub app: String,
    /// Number of nodes in the simulated machine.
    pub nodes: usize,
    /// Number of workload iterations traced.
    pub iterations: u32,
}

impl TraceMeta {
    /// Creates trace metadata.
    pub fn new(app: impl Into<String>, nodes: usize, iterations: u32) -> Self {
        TraceMeta {
            app: app.into(),
            nodes,
            iterations,
        }
    }
}

/// A complete message trace: time-ordered records plus metadata.
///
/// Records are kept in reception order, which for a serialized simulation
/// is also (node-local) program order per block — the order in which a
/// predictor sitting at the receiving agent would observe them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceBundle {
    meta: TraceMeta,
    records: Vec<MsgRecord>,
}

impl TraceBundle {
    /// Creates an empty bundle.
    pub fn new(meta: TraceMeta) -> Self {
        TraceBundle {
            meta,
            records: Vec::new(),
        }
    }

    /// The run metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// All records in reception order.
    pub fn records(&self) -> &[MsgRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record (caller is responsible for time order; `simx`
    /// produces records already ordered).
    pub fn push(&mut self, record: MsgRecord) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend_records(&mut self, records: impl IntoIterator<Item = MsgRecord>) {
        self.records.extend(records);
    }

    /// Takes the records out, leaving the bundle empty (metadata intact).
    /// The drain half of the streaming pipeline: callers hand the batch to
    /// a [`crate::pack::PackedTraceWriter`] and let it go, so memory stays
    /// bounded by the batch rather than the whole run.
    pub fn take_records(&mut self) -> Vec<MsgRecord> {
        std::mem::take(&mut self.records)
    }

    /// Records received by a particular agent.
    pub fn for_receiver(&self, node: NodeId, role: Role) -> impl Iterator<Item = &MsgRecord> {
        self.records
            .iter()
            .filter(move |r| r.node == node && r.role == role)
    }

    /// Records received by agents of a role, at any node.
    pub fn for_role(&self, role: Role) -> impl Iterator<Item = &MsgRecord> {
        self.records.iter().filter(move |r| r.role == role)
    }

    /// Records for a particular block, at any agent.
    pub fn for_block(&self, block: BlockAddr) -> impl Iterator<Item = &MsgRecord> {
        self.records.iter().filter(move |r| r.block == block)
    }

    /// The distinct blocks appearing in the trace, in address order.
    pub fn blocks(&self) -> Vec<BlockAddr> {
        let set: BTreeSet<BlockAddr> = self.records.iter().map(|r| r.block).collect();
        set.into_iter().collect()
    }

    /// Drops all records from iterations before `first_kept`, mirroring the
    /// paper's exclusion of start-up-phase messages (§5).
    pub fn drop_warmup(&mut self, first_kept: u32) {
        self.records.retain(|r| r.iteration >= first_kept);
    }

    /// Splits the record stream at an iteration boundary; records with
    /// `iteration < at` go left.
    pub fn split_at_iteration(&self, at: u32) -> (Vec<MsgRecord>, Vec<MsgRecord>) {
        self.records.iter().partition(|r| r.iteration < at)
    }

    /// Counts of records received at caches and directories respectively.
    pub fn role_counts(&self) -> (usize, usize) {
        let cache = self.for_role(Role::Cache).count();
        (cache, self.len() - cache)
    }
}

impl Extend<MsgRecord> for TraceBundle {
    fn extend<I: IntoIterator<Item = MsgRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::MsgType;

    fn rec(
        t: u64,
        node: usize,
        role: Role,
        block: u64,
        sender: usize,
        mtype: MsgType,
        it: u32,
    ) -> MsgRecord {
        MsgRecord {
            time_ns: t,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(sender),
            mtype,
            iteration: it,
        }
    }

    fn sample() -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("t", 4, 3));
        b.push(rec(10, 0, Role::Directory, 1, 1, MsgType::GetRoRequest, 0));
        b.push(rec(20, 1, Role::Cache, 1, 0, MsgType::GetRoResponse, 0));
        b.push(rec(30, 0, Role::Directory, 2, 2, MsgType::GetRwRequest, 1));
        b.push(rec(40, 2, Role::Cache, 2, 0, MsgType::GetRwResponse, 2));
        b
    }

    #[test]
    fn receiver_filtering() {
        let b = sample();
        assert_eq!(b.for_receiver(NodeId::new(0), Role::Directory).count(), 2);
        assert_eq!(b.for_receiver(NodeId::new(0), Role::Cache).count(), 0);
        assert_eq!(b.for_role(Role::Cache).count(), 2);
        assert_eq!(b.role_counts(), (2, 2));
    }

    #[test]
    fn block_listing_is_sorted_and_deduped() {
        let b = sample();
        assert_eq!(b.blocks(), vec![BlockAddr::new(1), BlockAddr::new(2)]);
        assert_eq!(b.for_block(BlockAddr::new(1)).count(), 2);
    }

    #[test]
    fn warmup_drop() {
        let mut b = sample();
        b.drop_warmup(1);
        assert_eq!(b.len(), 2);
        assert!(b.records().iter().all(|r| r.iteration >= 1));
    }

    #[test]
    fn split_at_iteration() {
        let b = sample();
        let (early, late) = b.split_at_iteration(2);
        assert_eq!(early.len(), 3);
        assert_eq!(late.len(), 1);
    }

    #[test]
    fn empty_bundle() {
        let b = TraceBundle::new(TraceMeta::new("empty", 1, 0));
        assert!(b.is_empty());
        assert!(b.blocks().is_empty());
        assert_eq!(b.role_counts(), (0, 0));
    }
}
