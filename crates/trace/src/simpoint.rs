//! `simpoint` — SimPoint-style phase sampling over packed traces.
//!
//! SimPoint (Sherwood et al.) observed that long program executions are
//! built from a small number of recurring *phases*, so a handful of
//! representative intervals, weighted by how much of the run their phase
//! covers, reproduce whole-program behaviour. Coherence-message traffic
//! has the same structure — workload phases induce recognisable message
//! mixes — so the same trick lets a predictor be *evaluated* on a few
//! percent of a billion-message trace.
//!
//! The pipeline, all deterministic:
//!
//! 1. **Fingerprint** ([`Fingerprinter`]): the trace is cut into
//!    fixed-length intervals (a divisor of the packed chunk length, so
//!    chunk-at-a-time decoding feeds it naturally). Each interval gets a
//!    vector analogous to SimPoint's basic-block vector: normalized
//!    counts over the [`crate::signature`] arc space — `(role, prev
//!    mtype, next mtype)` triples, the same arcs the paper's Figures 6–7
//!    report — plus one dimension for first-touch (cold) records.
//!    Per-`(node, role, block)` last-message state carries *across*
//!    interval boundaries, exactly as [`crate::signature::ArcTable`]
//!    would observe the stream. Two *guide* dimensions are appended
//!    (see [`GUIDE_DIMS`]): the hit rate of a tiny depth-1 reference
//!    predictor over the interval, and the interval's position in the
//!    run. Arc mixes alone cannot separate intervals that look alike
//!    but predict differently — a fleet early in its learning curve and
//!    the same fleet warmed see identical message mixes — so the guides
//!    inject exactly the two covariates accuracy actually follows.
//! 2. **Cluster** ([`kmeans`]): seeded k-means over the vectors with
//!    k-means++ initialisation driven by a splitmix64 stream;
//!    lowest-index tie-breaking everywhere, so the clustering is a pure
//!    function of `(vectors, k, seed)`.
//! 3. **Pick** ([`choose`]) or **plan** ([`plan`]): `choose` is classic
//!    SimPoint — per cluster, the member closest to the centroid
//!    becomes the representative, weighted by the cluster's share of
//!    trace records. `plan` adds Neyman-style variance targeting: tight
//!    clusters keep a single representative, while the clusters with
//!    the largest record-weighted spread (where one representative is a
//!    poor stand-in) are scored exhaustively, up to a scoring budget.
//!    Evaluating a predictor on the scored intervals only — training it
//!    on everything, scoring the selected intervals, in one streaming
//!    pass — and combining per-cluster rates by weight estimates the
//!    full-trace number.

use crate::record::MsgRecord;
use stache::msg::ALL_MSG_TYPES;
use stache::{BlockAddr, NodeId, Role};
use std::collections::HashMap;

/// Arc-space dimensions: role (2) × prev (12) × next (12).
const ARC_DIMS: usize = 2 * ALL_MSG_TYPES.len() * ALL_MSG_TYPES.len();
/// One extra dimension counting first-touch (no-previous-message) records.
pub const FINGERPRINT_DIMS: usize = ARC_DIMS + 1;
/// Guide dimensions appended after the normalized arc vector: the
/// depth-1 reference-predictor hit rate (weighted [`WEIGHT_RATE`]) and
/// the interval's position in the run (weighted [`WEIGHT_POSITION`]).
/// Full vectors are `FINGERPRINT_DIMS + GUIDE_DIMS` wide.
pub const GUIDE_DIMS: usize = 2;
/// Weight on the reference-rate guide dimension, relative to the
/// normalized (unit-sum) arc vector.
pub const WEIGHT_RATE: f64 = 2.0;
/// Weight on the position guide dimension. Deliberately the largest
/// scale in the vector: predictor accuracy follows the learning curve,
/// so clusters should stratify the run by position before anything else.
pub const WEIGHT_POSITION: f64 = 4.0;

/// One interval's fingerprint vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Normalized arc-share vector (first [`FINGERPRINT_DIMS`] entries
    /// sum to 1 for non-empty intervals) followed by [`GUIDE_DIMS`]
    /// weighted guide entries (reference rate, position).
    pub vector: Vec<f64>,
    /// Records in the interval (the final interval may be short).
    pub records: u64,
}

/// Per-`(node, role, block)` key of the reference predictor's tables.
type RefKey = (NodeId, Role, BlockAddr);
/// The reference predictor's `(sender, type)` observation tuple.
type RefObs = (NodeId, stache::MsgType);

/// Streams records and emits one [`Fingerprint`] per fixed-length
/// interval. Feed it the decoded chunks of a packed trace in order.
#[derive(Debug)]
pub struct Fingerprinter {
    interval_records: u64,
    last: HashMap<RefKey, stache::MsgType>,
    counts: Vec<u64>,
    seen: u64,
    /// Depth-1 reference predictor, carried across intervals like
    /// `last`: last `(sender, type)` per key, and a pattern table from
    /// `(key, previous tuple)` to the tuple that followed. Its hit rate
    /// per interval is the first guide dimension — a cheap proxy for
    /// how predictable the interval actually is, which the arc mix
    /// alone cannot express.
    ref_last: HashMap<RefKey, RefObs>,
    ref_pht: HashMap<(RefKey, RefObs), RefObs>,
    ref_hits: u64,
    done: Vec<Fingerprint>,
}

impl Fingerprinter {
    /// Creates a fingerprinter cutting intervals of `interval_records`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_records` is zero.
    pub fn new(interval_records: u64) -> Self {
        assert!(interval_records > 0, "interval length must be nonzero");
        Fingerprinter {
            interval_records,
            last: HashMap::new(),
            counts: vec![0; FINGERPRINT_DIMS],
            seen: 0,
            ref_last: HashMap::new(),
            ref_pht: HashMap::new(),
            ref_hits: 0,
            done: Vec::new(),
        }
    }

    /// Observes one record.
    pub fn push(&mut self, r: &MsgRecord) {
        let key = (r.node, r.role, r.block);
        let dim = match self.last.insert(key, r.mtype) {
            Some(prev) => {
                let role = match r.role {
                    Role::Cache => 0usize,
                    Role::Directory => 1usize,
                };
                role * ALL_MSG_TYPES.len() * ALL_MSG_TYPES.len()
                    + prev.code() as usize * ALL_MSG_TYPES.len()
                    + r.mtype.code() as usize
            }
            None => ARC_DIMS,
        };
        self.counts[dim] += 1;
        let obs: RefObs = (r.sender, r.mtype);
        if let Some(prev) = self.ref_last.insert(key, obs) {
            if self.ref_pht.get(&(key, prev)) == Some(&obs) {
                self.ref_hits += 1;
            }
            self.ref_pht.insert((key, prev), obs);
        }
        self.seen += 1;
        if self.seen == self.interval_records {
            self.seal();
        }
    }

    /// Observes a batch (typically one decoded chunk).
    pub fn push_all(&mut self, records: &[MsgRecord]) {
        for r in records {
            self.push(r);
        }
    }

    fn seal(&mut self) {
        let total = self.seen as f64;
        let mut vector = self
            .counts
            .iter()
            .map(|&c| c as f64 / total)
            .collect::<Vec<f64>>();
        vector.push(WEIGHT_RATE * self.ref_hits as f64 / total);
        self.done.push(Fingerprint {
            vector,
            records: self.seen,
        });
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.seen = 0;
        self.ref_hits = 0;
    }

    /// Seals the trailing partial interval (if any) and returns the
    /// fingerprints, one per interval in trace order. The position
    /// guide dimension is appended here, once the interval count is
    /// known.
    pub fn finish(mut self) -> Vec<Fingerprint> {
        if self.seen > 0 {
            self.seal();
        }
        let n = self.done.len();
        for (i, f) in self.done.iter_mut().enumerate() {
            f.vector.push(WEIGHT_POSITION * i as f64 / n as f64);
        }
        self.done
    }
}

// ---------------------------------------------------------------------
// Deterministic k-means.
// ---------------------------------------------------------------------

/// splitmix64 — the workspace's standard seed-expansion stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A k-means clustering of interval fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster id per interval.
    pub assignment: Vec<usize>,
    /// Final centroids (k × dims).
    pub centroids: Vec<Vec<f64>>,
    /// Lloyd iterations run before convergence (or the cap).
    pub iterations: usize,
}

/// Seeded deterministic k-means++ / Lloyd over the fingerprint vectors.
///
/// `k` is clamped to the number of intervals. Ties (equidistant
/// centroids, equal weights) break toward the lowest index, and the
/// k-means++ sampling consumes a splitmix64 stream from `seed`, so the
/// result is a pure function of `(points, k, seed)` on every platform.
///
/// # Panics
///
/// Panics if `points` is empty or `k` is zero.
pub fn kmeans(points: &[Fingerprint], k: usize, seed: u64) -> Clustering {
    assert!(!points.is_empty(), "kmeans needs at least one interval");
    assert!(k > 0, "kmeans needs k >= 1");
    let k = k.min(points.len());
    let dims = points[0].vector.len();
    let mut rng = seed;

    // k-means++ initialisation: first centroid uniform, the rest D²-weighted.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (splitmix64(&mut rng) % points.len() as u64) as usize;
    centroids.push(points[first].vector.clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| dist2(&p.vector, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; fall back to uniform.
            (splitmix64(&mut rng) % points.len() as u64) as usize
        } else {
            // Map a 53-bit uniform draw onto the D² mass.
            let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            let target = u * total;
            let mut acc = 0.0;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if acc >= target {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].vector.clone());
        for (i, p) in points.iter().enumerate() {
            let d = dist2(&p.vector, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    // Lloyd iterations to a fixed point (or a generous cap).
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    const MAX_ITERS: usize = 100;
    loop {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(&p.vector, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iterations > 0 {
            break;
        }
        iterations += 1;
        if iterations > MAX_ITERS {
            break;
        }
        let mut sums = vec![vec![0.0f64; dims]; centroids.len()];
        let mut sizes = vec![0u64; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            sizes[assignment[i]] += 1;
            for (s, v) in sums[assignment[i]].iter_mut().zip(&p.vector) {
                *s += v;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if sizes[c] > 0 {
                centroids[c] = sum.into_iter().map(|s| s / sizes[c] as f64).collect();
            }
            // Empty clusters keep their centroid: deterministic, and the
            // pick phase simply never selects from them.
        }
    }
    Clustering {
        assignment,
        centroids,
        iterations,
    }
}

// ---------------------------------------------------------------------
// Representative selection.
// ---------------------------------------------------------------------

/// One selected representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pick {
    /// Zero-based interval (= packed chunk) number.
    pub interval: usize,
    /// Intervals in this pick's cluster.
    pub cluster_size: usize,
    /// This pick's share of the whole trace (cluster records / total
    /// records — record-weighted so a short tail interval is not
    /// over-counted).
    pub weight: f64,
    /// Records in the pick's own interval.
    pub records: u64,
}

/// The output of a sampling pass: the picks, heaviest first.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoints {
    /// Selected representatives, sorted by descending weight then
    /// ascending interval.
    pub picks: Vec<Pick>,
    /// Total intervals fingerprinted.
    pub intervals: usize,
    /// Total records fingerprinted.
    pub total_records: u64,
}

impl SimPoints {
    /// Fraction of the trace the picks' own intervals cover — the replay
    /// cost of the sampled evaluation relative to full replay.
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_records == 0 {
            return 0.0;
        }
        let sampled: u64 = self.picks.iter().map(|p| p.records).sum();
        sampled as f64 / self.total_records as f64
    }
}

/// Selects per-cluster representatives: the member interval closest to
/// its centroid (lowest index on ties), weighted by the cluster's share
/// of trace records.
pub fn choose(points: &[Fingerprint], clustering: &Clustering) -> SimPoints {
    let total_records: u64 = points.iter().map(|p| p.records).sum();
    let k = clustering.centroids.len();
    let mut best: Vec<Option<(usize, f64)>> = vec![None; k];
    let mut cluster_records = vec![0u64; k];
    let mut cluster_sizes = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let c = clustering.assignment[i];
        cluster_records[c] += p.records;
        cluster_sizes[c] += 1;
        let d = dist2(&p.vector, &clustering.centroids[c]);
        match best[c] {
            Some((_, bd)) if bd <= d => {}
            _ => best[c] = Some((i, d)),
        }
    }
    let mut picks: Vec<Pick> = (0..k)
        .filter_map(|c| {
            best[c].map(|(i, _)| Pick {
                interval: i,
                cluster_size: cluster_sizes[c],
                weight: if total_records == 0 {
                    0.0
                } else {
                    cluster_records[c] as f64 / total_records as f64
                },
                records: points[i].records,
            })
        })
        .collect();
    picks.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .expect("weights are finite")
            .then(a.interval.cmp(&b.interval))
    });
    SimPoints {
        picks,
        intervals: points.len(),
        total_records,
    }
}

// ---------------------------------------------------------------------
// Variance-budgeted scoring plans.
// ---------------------------------------------------------------------

/// One cluster's scoring assignment in a [`SamplePlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SampleGroup {
    /// Interval indices to score for this cluster — a single
    /// centroid-closest representative for tight clusters, every member
    /// for the high-spread clusters the budget covers.
    pub scored: Vec<usize>,
    /// Intervals in the cluster.
    pub cluster_size: usize,
    /// The cluster's share of trace records. The estimator combines
    /// per-group scored hit rates with these weights.
    pub weight: f64,
    /// Records covered by the scored intervals.
    pub scored_records: u64,
}

/// A variance-budgeted scoring plan: which intervals to score, grouped
/// by cluster, plus the weights that turn per-group rates into a
/// full-trace estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    /// One group per non-empty cluster, in cluster-id order.
    pub groups: Vec<SampleGroup>,
    /// Total intervals fingerprinted.
    pub intervals: usize,
    /// Total records fingerprinted.
    pub total_records: u64,
}

impl SamplePlan {
    /// Fraction of the trace the scored intervals cover.
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_records == 0 {
            return 0.0;
        }
        let scored: u64 = self.groups.iter().map(|g| g.scored_records).sum();
        scored as f64 / self.total_records as f64
    }

    /// Scored intervals across all groups.
    pub fn scored_intervals(&self) -> usize {
        self.groups.iter().map(|g| g.scored.len()).sum()
    }

    /// Per-interval scored flags, indexed by interval number.
    pub fn scored_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.intervals];
        for g in &self.groups {
            for &i in &g.scored {
                flags[i] = true;
            }
        }
        flags
    }
}

/// Builds a variance-budgeted scoring plan from a clustering.
///
/// Every cluster first gets its centroid-closest member (lowest index
/// on ties) as a lone representative, exactly like [`choose`]. Then
/// clusters are ranked by record-weighted spread — the sum over members
/// of squared centroid distance times records, i.e. how badly a single
/// representative misrepresents the cluster — and, in descending spread
/// order, each cluster is upgraded to exhaustive scoring if that keeps
/// the scored-record fraction within `budget`. Tight clusters stay
/// cheap; the heterogeneous ones that dominate estimator error get
/// scored exactly. Deterministic: ties break toward the lower cluster
/// id, and no randomness is consumed.
///
/// `budget` is the target ceiling on the scored fraction; the baseline
/// one-representative-per-cluster floor is kept even if it alone
/// exceeds the budget.
pub fn plan(points: &[Fingerprint], clustering: &Clustering, budget: f64) -> SamplePlan {
    let total_records: u64 = points.iter().map(|p| p.records).sum();
    let k = clustering.centroids.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in clustering.assignment.iter().enumerate() {
        members[c].push(i);
    }
    let cluster_records: Vec<u64> = members
        .iter()
        .map(|ms| ms.iter().map(|&i| points[i].records).sum())
        .collect();
    let dist = |i: usize, c: usize| dist2(&points[i].vector, &clustering.centroids[c]);

    // Baseline: the centroid-closest member of each non-empty cluster.
    let mut scored: Vec<Vec<usize>> = members
        .iter()
        .enumerate()
        .map(|(c, ms)| {
            let mut best: Option<(usize, f64)> = None;
            for &i in ms {
                let d = dist(i, c);
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((i, d)),
                }
            }
            best.map(|(i, _)| vec![i]).unwrap_or_default()
        })
        .collect();

    // Record-weighted spread, descending; lowest cluster id on ties.
    let mut spread: Vec<(f64, usize)> = (0..k)
        .map(|c| {
            let v: f64 = members[c]
                .iter()
                .map(|&i| dist(i, c) * points[i].records as f64)
                .sum();
            (v, c)
        })
        .collect();
    spread.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("spreads are finite")
            .then(a.1.cmp(&b.1))
    });

    let mut used: u64 = scored.iter().flatten().map(|&i| points[i].records).sum();
    for &(_, c) in &spread {
        let have: u64 = scored[c].iter().map(|&i| points[i].records).sum();
        let extra = cluster_records[c] - have;
        if total_records == 0 || (used + extra) as f64 / total_records as f64 > budget {
            continue;
        }
        scored[c] = members[c].clone();
        used += extra;
    }

    let groups = (0..k)
        .filter(|&c| !scored[c].is_empty())
        .map(|c| SampleGroup {
            scored: scored[c].clone(),
            cluster_size: members[c].len(),
            weight: if total_records == 0 {
                0.0
            } else {
                cluster_records[c] as f64 / total_records as f64
            },
            scored_records: scored[c].iter().map(|&i| points[i].records).sum(),
        })
        .collect();
    SamplePlan {
        groups,
        intervals: points.len(),
        total_records,
    }
}

/// One-call pipeline: fingerprint → cluster → choose.
///
/// `records_per_interval` should divide the packed trace's chunk size so
/// chunk-at-a-time decoding aligns with interval boundaries.
///
/// # Panics
///
/// Panics if the record stream is empty or `k` is zero.
pub fn sample<'a>(
    chunks: impl IntoIterator<Item = &'a [MsgRecord]>,
    records_per_interval: u64,
    k: usize,
    seed: u64,
) -> SimPoints {
    let mut fp = Fingerprinter::new(records_per_interval);
    for chunk in chunks {
        fp.push_all(chunk);
    }
    let points = fp.finish();
    let clustering = kmeans(&points, k, seed);
    choose(&points, &clustering)
}

/// One-call pipeline: fingerprint → cluster → [`plan`].
///
/// # Panics
///
/// Panics if the record stream is empty or `k` is zero.
pub fn sample_plan<'a>(
    chunks: impl IntoIterator<Item = &'a [MsgRecord]>,
    records_per_interval: u64,
    k: usize,
    seed: u64,
    budget: f64,
) -> SamplePlan {
    let mut fp = Fingerprinter::new(records_per_interval);
    for chunk in chunks {
        fp.push_all(chunk);
    }
    let points = fp.finish();
    let clustering = kmeans(&points, k, seed);
    plan(&points, &clustering, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::MsgType;

    fn rec(i: u64, block: u64, mtype: MsgType) -> MsgRecord {
        MsgRecord {
            time_ns: 10 * i,
            node: NodeId::new(0),
            role: Role::Cache,
            block: BlockAddr::new(block),
            sender: NodeId::new(1),
            mtype,
            iteration: 0,
        }
    }

    /// Two alternating synthetic phases with distinct message mixes.
    fn two_phase_trace(intervals: usize, len: u64) -> Vec<MsgRecord> {
        let mut out = Vec::new();
        let mut t = 0u64;
        for phase in 0..intervals {
            for j in 0..len {
                let m = if phase % 2 == 0 {
                    MsgType::GetRoResponse
                } else {
                    MsgType::InvalRoRequest
                };
                out.push(rec(t, j % 4, m));
                t += 1;
            }
        }
        out
    }

    /// Arc-share part of a fingerprint, guide dims stripped.
    fn arcs(p: &Fingerprint) -> &[f64] {
        &p.vector[..FINGERPRINT_DIMS]
    }

    #[test]
    fn fingerprints_cut_fixed_intervals() {
        let records = two_phase_trace(6, 50);
        let mut fp = Fingerprinter::new(50);
        fp.push_all(&records);
        let points = fp.finish();
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.records == 50));
        for p in &points {
            assert_eq!(p.vector.len(), FINGERPRINT_DIMS + GUIDE_DIMS);
            let sum: f64 = arcs(p).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "normalized arc part sums to 1");
        }
        // Interval 0 is cold (first touches); from interval 1 on, phases of
        // the same parity share a mix and opposite parities differ.
        assert!(dist2(arcs(&points[1]), arcs(&points[3])) < 1e-9);
        assert!(dist2(arcs(&points[2]), arcs(&points[4])) < 1e-9);
        assert!(dist2(arcs(&points[1]), arcs(&points[2])) > 0.1);
    }

    #[test]
    fn guide_dims_track_predictability_and_position() {
        // A strictly periodic single-block stream: once the reference
        // predictor has seen one period it never misses again.
        let records: Vec<MsgRecord> = (0..200u64)
            .map(|i| {
                let m = if i % 2 == 0 {
                    MsgType::GetRoResponse
                } else {
                    MsgType::InvalRoRequest
                };
                rec(i, 0, m)
            })
            .collect();
        let mut fp = Fingerprinter::new(50);
        fp.push_all(&records);
        let points = fp.finish();
        let rate_dim = FINGERPRINT_DIMS;
        let pos_dim = FINGERPRINT_DIMS + 1;
        // First interval is cold; later intervals approach the full rate.
        assert!(points[0].vector[rate_dim] < points[3].vector[rate_dim]);
        assert!(points[3].vector[rate_dim] > 0.9 * WEIGHT_RATE);
        // Position climbs linearly from 0.
        assert_eq!(points[0].vector[pos_dim], 0.0);
        for w in points.windows(2) {
            assert!(w[0].vector[pos_dim] < w[1].vector[pos_dim]);
        }
        let n = points.len() as f64;
        let last = points.last().unwrap().vector[pos_dim];
        assert!((last - WEIGHT_POSITION * (n - 1.0) / n).abs() < 1e-12);
    }

    #[test]
    fn trailing_partial_interval_is_kept() {
        let records = two_phase_trace(1, 30);
        let mut fp = Fingerprinter::new(20);
        fp.push_all(&records);
        let points = fp.finish();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].records, 10);
    }

    #[test]
    fn arc_state_carries_across_intervals() {
        // Block 0 gets one record per interval: without carried state every
        // record would be a first touch; with it, later intervals see arcs.
        let records: Vec<MsgRecord> = (0..4).map(|i| rec(i, 0, MsgType::GetRoResponse)).collect();
        let mut fp = Fingerprinter::new(1);
        fp.push_all(&records);
        let points = fp.finish();
        assert_eq!(points[0].vector[ARC_DIMS], 1.0, "first touch is cold");
        for p in &points[1..] {
            assert_eq!(p.vector[ARC_DIMS], 0.0, "carried state sees the arc");
        }
    }

    /// Strips guide dims so a test can cluster on arc mixes alone.
    fn arc_only(points: Vec<Fingerprint>) -> Vec<Fingerprint> {
        points
            .into_iter()
            .map(|mut p| {
                p.vector.truncate(FINGERPRINT_DIMS);
                p
            })
            .collect()
    }

    #[test]
    fn kmeans_separates_clear_phases() {
        let records = two_phase_trace(8, 100);
        let mut fp = Fingerprinter::new(100);
        fp.push_all(&records);
        let points = arc_only(fp.finish());
        let c = kmeans(&points, 2, 42);
        // Even intervals one cluster, odd the other.
        assert_eq!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.assignment[1], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[1]);
    }

    #[test]
    fn kmeans_is_deterministic_and_seed_sensitive() {
        let records = two_phase_trace(6, 40);
        let mut fp = Fingerprinter::new(40);
        fp.push_all(&records);
        let points = fp.finish();
        let a = kmeans(&points, 3, 7);
        let b = kmeans(&points, 3, 7);
        assert_eq!(a, b, "same seed, same clustering");
        // A different seed may legitimately converge to the same optimum on
        // this tiny input, so only check it runs and stays well-formed.
        let c = kmeans(&points, 3, 8);
        assert_eq!(c.assignment.len(), points.len());
    }

    #[test]
    fn kmeans_handles_k_exceeding_points_and_identical_points() {
        let records = two_phase_trace(1, 50);
        let mut fp = Fingerprinter::new(10);
        fp.push_all(&records);
        let points = fp.finish();
        let c = kmeans(&points, 30, 1);
        assert!(c.centroids.len() <= points.len());
        // All-identical vectors: degenerate D² mass, must still terminate.
        let same: Vec<Fingerprint> = (0..5)
            .map(|_| Fingerprint {
                vector: vec![0.5; 4],
                records: 10,
            })
            .collect();
        let c = kmeans(&same, 3, 9);
        assert_eq!(c.assignment.len(), 5);
    }

    #[test]
    fn choose_weights_sum_to_one_and_rank_by_mass() {
        let records = two_phase_trace(10, 60);
        let mut fp = Fingerprinter::new(60);
        fp.push_all(&records);
        let points = fp.finish();
        let clustering = kmeans(&points, 2, 3);
        let sp = choose(&points, &clustering);
        assert_eq!(sp.intervals, 10);
        assert_eq!(sp.total_records, 600);
        let total_weight: f64 = sp.picks.iter().map(|p| p.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-12);
        assert!(sp.picks.windows(2).all(|w| w[0].weight >= w[1].weight));
        let covered: usize = sp.picks.iter().map(|p| p.cluster_size).sum();
        assert_eq!(covered, 10, "every interval belongs to some pick");
        assert!(sp.sampled_fraction() <= 1.0 && sp.sampled_fraction() > 0.0);
    }

    #[test]
    fn sample_end_to_end_picks_representatives_covering_the_run() {
        let records = two_phase_trace(12, 80);
        let chunks: Vec<&[MsgRecord]> = records.chunks(80).collect();
        let sp = sample(chunks, 80, 2, 17);
        assert_eq!(sp.picks.len(), 2);
        // With the position guide dominating, two clusters stratify the
        // run: the picks come from different halves.
        let mut intervals: Vec<usize> = sp.picks.iter().map(|p| p.interval).collect();
        intervals.sort_unstable();
        assert!(intervals[0] < 6 && intervals[1] >= 6, "picks {intervals:?}");
        let total_weight: f64 = sp.picks.iter().map(|p| p.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-12);
        let covered: usize = sp.picks.iter().map(|p| p.cluster_size).sum();
        assert_eq!(covered, 12);
    }

    #[test]
    fn plan_upgrades_high_spread_clusters_within_budget() {
        let records = two_phase_trace(12, 80);
        let mut fp = Fingerprinter::new(80);
        fp.push_all(&records);
        let points = fp.finish();
        let clustering = kmeans(&points, 4, 17);
        let sp = plan(&points, &clustering, 0.6);
        // Structural invariants.
        let total_weight: f64 = sp.groups.iter().map(|g| g.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-12);
        let covered: usize = sp.groups.iter().map(|g| g.cluster_size).sum();
        assert_eq!(covered, 12);
        assert_eq!(sp.intervals, 12);
        assert_eq!(sp.total_records, 960);
        let flags = sp.scored_flags();
        assert_eq!(flags.iter().filter(|&&f| f).count(), sp.scored_intervals());
        // Budget respected, baseline floor present.
        assert!(sp.sampled_fraction() <= 0.6 + 1e-12);
        assert!(sp.groups.iter().all(|g| !g.scored.is_empty()));
        // At least one cluster got upgraded beyond its lone representative
        // (the budget leaves room) and at least one stayed cheap.
        assert!(sp.groups.iter().any(|g| g.scored.len() > 1));
        assert!(sp.scored_intervals() < 12, "must not score everything");
        // Deterministic.
        let again = plan(&points, &clustering, 0.6);
        assert_eq!(sp, again);
    }

    #[test]
    fn plan_with_tiny_budget_degenerates_to_choose() {
        let records = two_phase_trace(10, 60);
        let mut fp = Fingerprinter::new(60);
        fp.push_all(&records);
        let points = fp.finish();
        let clustering = kmeans(&points, 3, 17);
        let sp = plan(&points, &clustering, 0.0);
        let picks = choose(&points, &clustering);
        // Same representatives, same weights — just grouped per cluster.
        let mut plan_reps: Vec<usize> = sp.groups.iter().flat_map(|g| g.scored.clone()).collect();
        plan_reps.sort_unstable();
        let mut choose_reps: Vec<usize> = picks.picks.iter().map(|p| p.interval).collect();
        choose_reps.sort_unstable();
        assert_eq!(plan_reps, choose_reps);
        assert!((sp.sampled_fraction() - picks.sampled_fraction()).abs() < 1e-12);
    }
}
