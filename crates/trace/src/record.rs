//! A single trace record: one coherence message *reception*.

use stache::{BlockAddr, Msg, MsgType, NodeId, Role};
use std::fmt;

/// One incoming coherence message, as observed by the receiving agent.
///
/// This is the unit Cosmos predicts: given the history of records for
/// `(node, role, block)`, predict the `(sender, mtype)` of the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsgRecord {
    /// Simulated reception time in nanoseconds.
    pub time_ns: u64,
    /// The receiving node.
    pub node: NodeId,
    /// Whether the receiving agent is the node's cache or its directory.
    pub role: Role,
    /// The cache block the message concerns.
    pub block: BlockAddr,
    /// The sending node.
    pub sender: NodeId,
    /// The message type.
    pub mtype: MsgType,
    /// The workload iteration during which the message was received
    /// (the paper uses iterations as its time axis for adaptation studies).
    pub iteration: u32,
}

impl MsgRecord {
    /// Builds a record from an in-flight message plus reception context.
    pub fn from_msg(msg: &Msg, time_ns: u64, iteration: u32) -> Self {
        MsgRecord {
            time_ns,
            node: msg.receiver,
            role: msg.receiver_role(),
            block: msg.block,
            sender: msg.sender,
            mtype: msg.mtype,
            iteration,
        }
    }

    /// The `(sender, mtype)` pair — the quantity Cosmos predicts.
    pub fn tuple(&self) -> (NodeId, MsgType) {
        (self.sender, self.mtype)
    }
}

impl fmt::Display for MsgRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}ns it={} {}@{} [{}] <- {} {}",
            self.time_ns, self.iteration, self.role, self.node, self.block, self.sender, self.mtype
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_msg_derives_role_from_type() {
        let m = Msg::new(
            NodeId::new(1),
            NodeId::new(0),
            BlockAddr::new(5),
            MsgType::GetRwRequest,
        );
        let r = MsgRecord::from_msg(&m, 250, 3);
        assert_eq!(r.role, Role::Directory);
        assert_eq!(r.node, NodeId::new(0));
        assert_eq!(r.tuple(), (NodeId::new(1), MsgType::GetRwRequest));
        assert_eq!(r.iteration, 3);
    }

    #[test]
    fn display_mentions_everything() {
        let m = Msg::new(
            NodeId::new(2),
            NodeId::new(7),
            BlockAddr::new(9),
            MsgType::InvalRoRequest,
        );
        let r = MsgRecord::from_msg(&m, 40, 1);
        let s = r.to_string();
        assert!(s.contains("P2"));
        assert!(s.contains("P7"));
        assert!(s.contains("inval_ro_request"));
        assert!(s.contains("cache"));
    }
}
