//! Message-signature (arc) extraction for Figures 6 and 7.
//!
//! The paper visualises each application's *dominant incoming message
//! signatures* as a graph whose nodes are message types and whose arcs are
//! consecutive-arrival pairs for the same cache block at the same agent
//! role. Each arc is labelled `X/Y` where `Y` is the percentage of all
//! arc references the pair accounts for (computed here from the raw trace)
//! and `X` the prediction accuracy on that arc (computed by
//! `cosmos::eval`, which keys its per-arc accounting with the same
//! [`ArcKey`]).

use crate::bundle::TraceBundle;
use crate::record::MsgRecord;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;
use std::fmt;

/// An arc: at agents of `role`, a message of type `prev` for a block was
/// followed by one of type `next` for the same block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArcKey {
    /// The receiving agent's role.
    pub role: Role,
    /// Type of the earlier message.
    pub prev: MsgType,
    /// Type of the later message.
    pub next: MsgType,
}

impl fmt::Display for ArcKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}",
            self.role,
            self.prev.paper_name(),
            self.next.paper_name()
        )
    }
}

/// Aggregated arc reference counts for a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArcTable {
    counts: HashMap<ArcKey, usize>,
    total_by_role: HashMap<Role, usize>,
}

impl ArcTable {
    /// Builds the arc table for a trace.
    ///
    /// For every `(node, role, block)` stream, each consecutive pair of
    /// records contributes one arc reference.
    pub fn from_bundle(bundle: &TraceBundle) -> Self {
        let mut table = ArcTable::default();
        let mut last: HashMap<(NodeId, Role, BlockAddr), MsgType> = HashMap::new();
        for r in bundle.records() {
            table.observe(&mut last, r);
        }
        table
    }

    fn observe(&mut self, last: &mut HashMap<(NodeId, Role, BlockAddr), MsgType>, r: &MsgRecord) {
        let key = (r.node, r.role, r.block);
        if let Some(prev) = last.insert(key, r.mtype) {
            *self
                .counts
                .entry(ArcKey {
                    role: r.role,
                    prev,
                    next: r.mtype,
                })
                .or_insert(0) += 1;
            *self.total_by_role.entry(r.role).or_insert(0) += 1;
        }
    }

    /// Raw reference count for an arc.
    pub fn count(&self, key: ArcKey) -> usize {
        *self.counts.get(&key).unwrap_or(&0)
    }

    /// Total arc references at a role.
    pub fn total(&self, role: Role) -> usize {
        *self.total_by_role.get(&role).unwrap_or(&0)
    }

    /// Share of a role's arc references going to this arc (the paper's `Y`).
    pub fn share(&self, key: ArcKey) -> f64 {
        let total = self.total(key.role);
        if total == 0 {
            return 0.0;
        }
        self.count(key) as f64 / total as f64
    }

    /// Arcs at a role, sorted by descending reference count; the dominant
    /// signature is the prefix of this list.
    pub fn dominant(&self, role: Role) -> Vec<(ArcKey, usize)> {
        let mut arcs: Vec<(ArcKey, usize)> = self
            .counts
            .iter()
            .filter(|(k, _)| k.role == role)
            .map(|(k, c)| (*k, *c))
            .collect();
        arcs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        arcs
    }

    /// All arcs with counts, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (ArcKey, usize)> + '_ {
        self.counts.iter().map(|(k, c)| (*k, *c))
    }

    /// Number of distinct arcs observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no arcs were observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::TraceMeta;

    fn rec(t: u64, node: usize, role: Role, block: u64, mtype: MsgType) -> MsgRecord {
        MsgRecord {
            time_ns: t,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(15),
            mtype,
            iteration: 0,
        }
    }

    #[test]
    fn consecutive_pairs_per_block_stream() {
        let mut b = TraceBundle::new(TraceMeta::new("t", 16, 1));
        // Cache stream for block 1: get_ro_response -> inval_ro_request -> get_ro_response.
        b.push(rec(0, 0, Role::Cache, 1, MsgType::GetRoResponse));
        b.push(rec(1, 0, Role::Cache, 1, MsgType::InvalRoRequest));
        b.push(rec(2, 0, Role::Cache, 1, MsgType::GetRoResponse));
        // Unrelated block 2 must not contribute to block 1's arcs.
        b.push(rec(3, 0, Role::Cache, 2, MsgType::GetRwResponse));
        let arcs = ArcTable::from_bundle(&b);
        assert_eq!(arcs.total(Role::Cache), 2);
        assert_eq!(
            arcs.count(ArcKey {
                role: Role::Cache,
                prev: MsgType::GetRoResponse,
                next: MsgType::InvalRoRequest
            }),
            1
        );
        assert_eq!(
            arcs.count(ArcKey {
                role: Role::Cache,
                prev: MsgType::InvalRoRequest,
                next: MsgType::GetRoResponse
            }),
            1
        );
        assert_eq!(arcs.total(Role::Directory), 0);
    }

    #[test]
    fn streams_are_separated_by_node_and_role() {
        let mut b = TraceBundle::new(TraceMeta::new("t", 16, 1));
        b.push(rec(0, 0, Role::Cache, 1, MsgType::GetRoResponse));
        b.push(rec(1, 1, Role::Cache, 1, MsgType::InvalRoRequest));
        // Different nodes: no arc.
        let arcs = ArcTable::from_bundle(&b);
        assert!(arcs.is_empty());
    }

    #[test]
    fn dominant_sorting_and_share() {
        let mut b = TraceBundle::new(TraceMeta::new("t", 16, 1));
        for i in 0..3 {
            b.push(rec(i * 10, 0, Role::Cache, 1, MsgType::GetRoResponse));
            b.push(rec(i * 10 + 1, 0, Role::Cache, 1, MsgType::InvalRoRequest));
        }
        let arcs = ArcTable::from_bundle(&b);
        let dom = arcs.dominant(Role::Cache);
        assert_eq!(dom[0].0.prev, MsgType::GetRoResponse);
        assert_eq!(dom[0].1, 3);
        // 5 total arcs: 3 of RO->INV, 2 of INV->RO.
        assert!((arcs.share(dom[0].0) - 3.0 / 5.0).abs() < 1e-12);
    }
}
