//! Streaming trace I/O over `std::io` readers and writers.
//!
//! The in-memory codec ([`crate::codec`]) is convenient for tests; real
//! multi-hundred-megabyte traces want streaming. [`TraceWriter`] appends
//! records to any `Write` as they are produced; [`TraceReader`] iterates
//! them back from any `Read` without materialising the whole bundle.
//! The on-disk format is identical to [`crate::codec::encode`]'s, so the
//! two interoperate freely.

use crate::bundle::{TraceBundle, TraceMeta};
use crate::codec::{check_header_bounds, DecodeError, EncodeError};
use crate::record::MsgRecord;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CTR1";
/// The fixed encoded size of one record.
pub const RECORD_BYTES: usize = 26;

/// A failure while streaming a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The stream's contents were malformed.
    Decode(DecodeError),
    /// The bundle's metadata does not fit the binary header.
    Encode(EncodeError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Decode(e) => write!(f, "trace stream malformed: {e}"),
            TraceIoError::Encode(e) => write!(f, "trace header unencodable: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Decode(e) => Some(e),
            TraceIoError::Encode(e) => Some(e),
        }
    }
}

impl From<EncodeError> for TraceIoError {
    fn from(e: EncodeError) -> Self {
        TraceIoError::Encode(e)
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<DecodeError> for TraceIoError {
    fn from(e: DecodeError) -> Self {
        TraceIoError::Decode(e)
    }
}

/// `read_exact` with EOF mapped to the typed truncation error: running
/// out of bytes mid-structure means the *stream* is malformed, which
/// callers want to distinguish from a genuine I/O fault.
fn read_exact_typed<R: Read>(source: &mut R, buf: &mut [u8]) -> Result<(), TraceIoError> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Decode(DecodeError::Truncated)
        } else {
            TraceIoError::Io(e)
        }
    })
}

/// Streams records into any seekable writer.
///
/// The format keeps the record count in the header (byte-compatible with
/// [`crate::codec::encode`]), so the writer emits a zero placeholder up
/// front and back-patches it in [`finish`](TraceWriter::finish) — hence
/// the `Seek` bound. For in-memory encoding of a known bundle, use
/// [`TraceWriter::write_bundle`].
#[derive(Debug)]
pub struct TraceWriter<W: Write + io::Seek> {
    sink: W,
    written: u64,
}

impl<W: Write + io::Seek> TraceWriter<W> {
    /// Starts a trace stream: writes the header with a placeholder count.
    ///
    /// # Errors
    ///
    /// Propagates writer errors, and rejects metadata that does not fit
    /// the header fields (the casts below used to truncate silently).
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<Self, TraceIoError> {
        check_header_bounds(meta)?;
        sink.write_all(MAGIC)?;
        sink.write_all(&(meta.app.len() as u16).to_be_bytes())?;
        sink.write_all(meta.app.as_bytes())?;
        sink.write_all(&(meta.nodes as u32).to_be_bytes())?;
        sink.write_all(&meta.iterations.to_be_bytes())?;
        sink.write_all(&0u64.to_be_bytes())?; // patched by finish()
        Ok(TraceWriter { sink, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_record(&mut self, r: &MsgRecord) -> Result<(), TraceIoError> {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&r.time_ns.to_be_bytes());
        buf[8..10].copy_from_slice(&r.node.raw().to_be_bytes());
        buf[10] = match r.role {
            Role::Cache => 0,
            Role::Directory => 1,
        };
        buf[11..19].copy_from_slice(&r.block.number().to_be_bytes());
        buf[19..21].copy_from_slice(&r.sender.raw().to_be_bytes());
        buf[21] = r.mtype.code();
        buf[22..26].copy_from_slice(&r.iteration.to_be_bytes());
        self.sink.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Back-patches the record count and flushes; returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        let end = self.sink.stream_position()?;
        let count_pos = end - self.written * RECORD_BYTES as u64 - 8;
        self.sink.seek(io::SeekFrom::Start(count_pos))?;
        self.sink.write_all(&self.written.to_be_bytes())?;
        self.sink.seek(io::SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl TraceWriter<std::io::Cursor<Vec<u8>>> {
    /// One-shot: encodes a whole bundle (equivalent to
    /// [`crate::codec::encode`], streaming-path-tested).
    ///
    /// # Errors
    ///
    /// Propagates writer errors (none occur for in-memory sinks in
    /// practice).
    pub fn write_bundle(bundle: &TraceBundle) -> Result<Vec<u8>, TraceIoError> {
        let cursor = std::io::Cursor::new(Vec::new());
        let mut w = TraceWriter::new(cursor, bundle.meta())?;
        for r in bundle.records() {
            w.write_record(r)?;
        }
        Ok(w.finish()?.into_inner())
    }
}

/// Streams records out of any reader.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    remaining: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// Fails on reader errors or a malformed header; a stream that ends
    /// mid-header reports [`DecodeError::Truncated`], not an I/O error.
    pub fn new(mut source: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        read_exact_typed(&mut source, &mut magic)?;
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic.into());
        }
        let mut b2 = [0u8; 2];
        read_exact_typed(&mut source, &mut b2)?;
        let app_len = u16::from_be_bytes(b2) as usize;
        let mut app = vec![0u8; app_len];
        read_exact_typed(&mut source, &mut app)?;
        let app = String::from_utf8(app).map_err(|_| DecodeError::BadField { field: "app" })?;
        let mut b4 = [0u8; 4];
        read_exact_typed(&mut source, &mut b4)?;
        let nodes = u32::from_be_bytes(b4) as usize;
        read_exact_typed(&mut source, &mut b4)?;
        let iterations = u32::from_be_bytes(b4);
        let mut b8 = [0u8; 8];
        read_exact_typed(&mut source, &mut b8)?;
        let remaining = u64::from_be_bytes(b8);
        Ok(TraceReader {
            source,
            meta: TraceMeta::new(app, nodes, iterations),
            remaining,
        })
    }

    /// The stream's metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next record, or `None` at the end of the stream.
    ///
    /// # Errors
    ///
    /// Fails on reader errors or malformed records; a stream that ends
    /// before the header's record count is satisfied (e.g. a corrupt
    /// count field, or a truncated file) reports
    /// [`DecodeError::Truncated`].
    pub fn read_record(&mut self) -> Result<Option<MsgRecord>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_BYTES];
        read_exact_typed(&mut self.source, &mut buf)?;
        self.remaining -= 1;
        let node = NodeId::from_raw(u16::from_be_bytes([buf[8], buf[9]]))
            .ok_or(DecodeError::BadField { field: "node" })?;
        let role = match buf[10] {
            0 => Role::Cache,
            1 => Role::Directory,
            _ => return Err(DecodeError::BadField { field: "role" }.into()),
        };
        let sender = NodeId::from_raw(u16::from_be_bytes([buf[19], buf[20]]))
            .ok_or(DecodeError::BadField { field: "sender" })?;
        let mtype = MsgType::from_code(buf[21]).ok_or(DecodeError::BadField { field: "mtype" })?;
        Ok(Some(MsgRecord {
            time_ns: u64::from_be_bytes(buf[0..8].try_into().expect("8 bytes")),
            node,
            role,
            block: BlockAddr::new(u64::from_be_bytes(buf[11..19].try_into().expect("8 bytes"))),
            sender,
            mtype,
            iteration: u32::from_be_bytes(buf[22..26].try_into().expect("4 bytes")),
        }))
    }

    /// Drains the stream into a bundle.
    ///
    /// # Errors
    ///
    /// Fails on reader errors or malformed records.
    pub fn read_bundle(mut self) -> Result<TraceBundle, TraceIoError> {
        let mut bundle = TraceBundle::new(self.meta.clone());
        while let Some(r) = self.read_record()? {
            bundle.push(r);
        }
        Ok(bundle)
    }
}

/// Writes a bundle to a file in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(path: impl AsRef<Path>, bundle: &TraceBundle) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(file), bundle.meta())?;
    for r in bundle.records() {
        w.write_record(r)?;
    }
    w.finish()?;
    Ok(())
}

/// Reads a bundle from a file in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors and malformed content.
pub fn read_file(path: impl AsRef<Path>) -> Result<TraceBundle, TraceIoError> {
    let file = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(file))?.read_bundle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    fn sample(n: u64) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("io-test", 16, 3));
        for i in 0..n {
            b.push(MsgRecord {
                time_ns: i * 7,
                node: NodeId::new((i % 16) as usize),
                role: if i % 2 == 0 {
                    Role::Cache
                } else {
                    Role::Directory
                },
                block: BlockAddr::new(i),
                sender: NodeId::new(((i + 3) % 16) as usize),
                mtype: MsgType::from_code((i % 12) as u8).unwrap(),
                iteration: (i % 3) as u32,
            });
        }
        b
    }

    #[test]
    fn streaming_write_matches_in_memory_codec() {
        let b = sample(50);
        let streamed = TraceWriter::write_bundle(&b).unwrap();
        let in_memory = codec::encode(&b).unwrap();
        assert_eq!(streamed, in_memory.to_vec(), "byte-identical formats");
    }

    #[test]
    fn oversized_app_name_is_rejected_before_writing() {
        // Regression: the streaming header cast `app.len() as u16`
        // unchecked, writing a corrupt header for long names.
        let long = "y".repeat(u16::MAX as usize + 7);
        let meta = TraceMeta::new(long.clone(), 4, 1);
        let err = match TraceWriter::new(std::io::Cursor::new(Vec::new()), &meta) {
            Ok(_) => panic!("must fail"),
            Err(e) => e,
        };
        assert!(matches!(
            err,
            TraceIoError::Encode(EncodeError::AppTooLong { len }) if len == long.len()
        ));
        assert!(err.to_string().contains("unencodable"));
    }

    #[test]
    fn streaming_read_roundtrip() {
        let b = sample(40);
        let bytes = TraceWriter::write_bundle(&b).unwrap();
        let reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(reader.meta(), b.meta());
        assert_eq!(reader.remaining(), 40);
        assert_eq!(reader.read_bundle().unwrap(), b);
    }

    #[test]
    fn incremental_reading_stops_cleanly() {
        let b = sample(3);
        let bytes = TraceWriter::write_bundle(&b).unwrap();
        let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        for expected in b.records() {
            assert_eq!(reader.read_record().unwrap().as_ref(), Some(expected));
        }
        assert_eq!(reader.read_record().unwrap(), None);
        assert_eq!(reader.read_record().unwrap(), None, "idempotent at EOF");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cosmos-repro-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let b = sample(25);
        write_file(&path, &b).unwrap();
        assert_eq!(read_file(&path).unwrap(), b);
        // The in-memory decoder reads the file's bytes too.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(codec::decode(&bytes).unwrap(), b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_reported() {
        let err = match TraceReader::new(std::io::Cursor::new(b"NOPE------".to_vec())) {
            Err(e) => e,
            Ok(_) => panic!("must fail"),
        };
        assert!(matches!(err, TraceIoError::Decode(DecodeError::BadMagic)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn truncated_records_are_a_typed_decode_error() {
        // Regression: mid-record EOF used to surface as an opaque
        // `TraceIoError::Io(UnexpectedEof)` instead of `Truncated`.
        let b = sample(5);
        let mut bytes = TraceWriter::write_bundle(&b).unwrap();
        bytes.truncate(bytes.len() - 10);
        let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut result = Ok(None);
        for _ in 0..5 {
            result = reader.read_record();
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(
            result,
            Err(TraceIoError::Decode(DecodeError::Truncated))
        ));
    }

    #[test]
    fn truncated_header_is_a_typed_decode_error() {
        let b = sample(5);
        let bytes = TraceWriter::write_bundle(&b).unwrap();
        // Cut inside the magic, the app-name field, and the count field.
        for cut in [2usize, 8, 20] {
            let err = match TraceReader::new(std::io::Cursor::new(bytes[..cut].to_vec())) {
                Err(e) => e,
                Ok(_) => panic!("cut at {cut} must fail"),
            };
            assert!(
                matches!(err, TraceIoError::Decode(DecodeError::Truncated)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_count_field_is_a_typed_decode_error() {
        // Inflate the header's record count past the actual payload: the
        // reader must report truncation when the stream runs dry, not
        // panic or return a short bundle silently.
        let b = sample(4);
        let mut bytes = TraceWriter::write_bundle(&b).unwrap();
        let count_pos = bytes.len() - 4 * RECORD_BYTES - 8;
        bytes[count_pos..count_pos + 8].copy_from_slice(&1000u64.to_be_bytes());
        let reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(reader.remaining(), 1000);
        let err = reader.read_bundle().unwrap_err();
        assert!(matches!(err, TraceIoError::Decode(DecodeError::Truncated)));
    }

    #[test]
    fn genuine_io_faults_stay_io_errors() {
        // A reader that fails with a non-EOF kind must not be relabeled
        // as a decode problem.
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "boom"))
            }
        }
        let err = match TraceReader::new(Broken) {
            Err(e) => e,
            Ok(_) => panic!("must fail"),
        };
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
