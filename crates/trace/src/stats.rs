//! Trace statistics: message mix and volume.

use crate::bundle::TraceBundle;
use stache::msg::ALL_MSG_TYPES;
use stache::{MsgType, Role};
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics over a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records.
    pub total: usize,
    /// Records received at caches.
    pub at_cache: usize,
    /// Records received at directories.
    pub at_directory: usize,
    /// Count per message type.
    pub by_type: BTreeMap<MsgType, usize>,
    /// Count per iteration.
    pub by_iteration: BTreeMap<u32, usize>,
    /// Number of distinct blocks referenced.
    pub distinct_blocks: usize,
}

impl TraceStats {
    /// Computes statistics for a bundle.
    pub fn compute(bundle: &TraceBundle) -> Self {
        let mut by_type = BTreeMap::new();
        let mut by_iteration = BTreeMap::new();
        let mut at_cache = 0usize;
        for r in bundle.records() {
            *by_type.entry(r.mtype).or_insert(0) += 1;
            *by_iteration.entry(r.iteration).or_insert(0) += 1;
            if r.role == Role::Cache {
                at_cache += 1;
            }
        }
        TraceStats {
            total: bundle.len(),
            at_cache,
            at_directory: bundle.len() - at_cache,
            by_type,
            by_iteration,
            distinct_blocks: bundle.blocks().len(),
        }
    }

    /// Fraction of all messages with the given type (0 if the trace is empty).
    pub fn share(&self, mtype: MsgType) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.by_type.get(&mtype).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Requests and responses must pair up in a complete Stache run:
    /// every request elicits exactly one response. Returns the per-pair
    /// imbalance (request count minus response count) for diagnostics.
    pub fn pairing_imbalance(&self) -> BTreeMap<MsgType, i64> {
        let mut out = BTreeMap::new();
        for &t in &ALL_MSG_TYPES {
            if let Some(resp) = t.response() {
                let req = *self.by_type.get(&t).unwrap_or(&0) as i64;
                let rsp = *self.by_type.get(&resp).unwrap_or(&0) as i64;
                if req != rsp {
                    out.insert(t, req - rsp);
                }
            }
        }
        out
    }

    /// The per-type mix as an [`obs::Table`] (also the `Display` body).
    pub fn mix_table(&self) -> obs::Table {
        let mut t = obs::Table::new(vec!["message", "count", "share"]).with_aligns(vec![
            obs::Align::Left,
            obs::Align::Right,
            obs::Align::Right,
        ]);
        for (mtype, c) in &self.by_type {
            t.push_row(vec![
                mtype.paper_name().to_string(),
                c.to_string(),
                format!("{:.1}%", 100.0 * self.share(*mtype)),
            ]);
        }
        t
    }

    /// Exports into a metrics snapshot under the `trace.` prefix.
    pub fn export_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("trace.messages.total", self.total as u64);
        snap.counter("trace.messages.at_cache", self.at_cache as u64);
        snap.counter("trace.messages.at_directory", self.at_directory as u64);
        snap.counter("trace.blocks", self.distinct_blocks as u64);
        snap.counter("trace.iterations", self.by_iteration.len() as u64);
        for (mtype, c) in &self.by_type {
            snap.counter(&format!("trace.msg.{}", mtype.paper_name()), *c as u64);
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} messages ({} at caches, {} at directories), {} blocks",
            self.total, self.at_cache, self.at_directory, self.distinct_blocks
        )?;
        f.write_str(&self.mix_table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::TraceMeta;
    use crate::record::MsgRecord;
    use stache::{BlockAddr, NodeId};

    fn bundle_with(types: &[MsgType]) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("t", 4, 1));
        for (i, &t) in types.iter().enumerate() {
            b.push(MsgRecord {
                time_ns: i as u64,
                node: NodeId::new(0),
                role: t.receiver_role(),
                block: BlockAddr::new((i % 2) as u64),
                sender: NodeId::new(1),
                mtype: t,
                iteration: 0,
            });
        }
        b
    }

    #[test]
    fn counts_and_shares() {
        let b = bundle_with(&[
            MsgType::GetRoRequest,
            MsgType::GetRoResponse,
            MsgType::GetRoRequest,
            MsgType::GetRoResponse,
        ]);
        let s = TraceStats::compute(&b);
        assert_eq!(s.total, 4);
        assert_eq!(s.at_cache, 2);
        assert_eq!(s.at_directory, 2);
        assert_eq!(s.distinct_blocks, 2);
        assert!((s.share(MsgType::GetRoRequest) - 0.5).abs() < 1e-12);
        assert!(s.pairing_imbalance().is_empty());
    }

    #[test]
    fn imbalance_detected() {
        let b = bundle_with(&[MsgType::GetRwRequest]);
        let s = TraceStats::compute(&b);
        assert_eq!(s.pairing_imbalance().get(&MsgType::GetRwRequest), Some(&1));
    }

    #[test]
    fn empty_trace_statistics() {
        let b = TraceBundle::new(TraceMeta::new("e", 1, 0));
        let s = TraceStats::compute(&b);
        assert_eq!(s.total, 0);
        assert_eq!(s.share(MsgType::GetRoRequest), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
