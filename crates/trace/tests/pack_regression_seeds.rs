//! Proptest regression seeds for the packed-trace format, promoted to
//! named deterministic tests.
//!
//! `prop_pack.rs` is gated behind the `proptest-tests` feature (the
//! crate cannot be vendored yet), so the saved counterexamples in
//! `prop_pack.proptest-regressions` would only re-run in an environment
//! that has proptest. Each saved seed is replayed here verbatim as an
//! always-on unit test with a `promoted:` marker; CI checks that every
//! `cc` line has a matching marker.

use stache::{BlockAddr, MsgType, NodeId, Role};
use trace::pack;
use trace::{MsgRecord, TraceBundle, TraceMeta};

fn rec(
    time_ns: u64,
    node: usize,
    block: u64,
    sender: usize,
    code: u8,
    iteration: u32,
) -> MsgRecord {
    MsgRecord {
        time_ns,
        node: NodeId::new(node),
        role: if code < 6 {
            Role::Cache
        } else {
            Role::Directory
        },
        block: BlockAddr::new(block),
        sender: NodeId::new(sender),
        mtype: MsgType::from_code(code).unwrap(),
        iteration,
    }
}

fn bundle(records: Vec<MsgRecord>) -> TraceBundle {
    let mut b = TraceBundle::new(TraceMeta::new("seed", 4, 1));
    b.extend_records(records);
    b
}

fn roundtrip(b: &TraceBundle, chunk: u32) -> pack::PackStats {
    let (bytes, stats) = pack::pack_bundle_with_stats(b, chunk).expect("pack");
    let restored = pack::unpack_bundle(&bytes).expect("unpack");
    assert_eq!(b, &restored, "packed round-trip drifted");
    stats
}

/// promoted: db2f081adb6dbfaa4f5dae6b11542dc87bc8bb7bf4bb7ef7d129bcfefafbb83a
///
/// Record count an exact multiple of the chunk size (8 records, chunk
/// 4): the final chunk is full, so the writer must not emit an empty
/// tail chunk and the reader's index arithmetic must not expect one.
#[test]
fn seed_exact_chunk_multiple_has_no_phantom_tail() {
    let b = bundle(
        (0..8)
            .map(|i| rec(i * 10, 1, 0x40, 2, (i % 12) as u8, 0))
            .collect(),
    );
    let stats = roundtrip(&b, 4);
    assert_eq!(stats.records, 8);
    assert_eq!(stats.chunks, 2, "8 records / chunk 4 is exactly 2 chunks");
}

/// promoted: 4579ac1fa6722d1eae83756dc9f2d7e6a298147e77742344c3e7a1363a2b7b7d
///
/// Timestamps at `u64::MAX` then 0: the delta column's zigzag/varint
/// encoding sees the most negative and most positive deltas possible
/// in one chunk, so every continuation-byte path in the varint codec
/// runs — and a full chunk of such records must still round-trip.
#[test]
fn seed_extreme_timestamp_deltas_survive_varint_edges() {
    let mut records = vec![
        rec(u64::MAX, 0, u64::MAX, 4095, 11, u32::MAX),
        rec(0, 4095, 0, 0, 0, 0),
        rec(u64::MAX, 1, 1, 1, 5, 1),
    ];
    // Alternate the extremes across a whole chunk so carries propagate.
    for i in 0..64 {
        records.push(rec(
            if i % 2 == 0 { u64::MAX } else { 0 },
            i % 4096,
            u64::MAX - i as u64,
            (4095 - i) % 4096,
            (i % 12) as u8,
            i as u32,
        ));
    }
    roundtrip(&bundle(records), 299);
}

/// promoted: 3244c4b906f228ae783084ab0a844c50bb2cc5c17bcc4eac9fb09521dbdd8a31
///
/// A single-record bundle truncated at byte 0 (and every other prefix):
/// the smallest valid stream must round-trip, and no proper prefix of
/// it may decode as a different valid trace.
#[test]
fn seed_single_record_and_all_truncations_detected() {
    let b = bundle(vec![rec(7, 3, 0x80, 1, 2, 9)]);
    let bytes = pack::pack_bundle(&b, 1).expect("pack");
    assert_eq!(pack::unpack_bundle(&bytes).expect("unpack"), b);
    for cut in 0..bytes.len() {
        assert!(
            pack::unpack_bundle(&bytes[..cut]).is_err(),
            "truncation at byte {cut}/{} decoded silently",
            bytes.len()
        );
    }
}
