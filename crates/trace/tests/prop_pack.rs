//! Property tests for the chunked packed-trace format (`trace::pack`).

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::io::Cursor;
use trace::pack;
use trace::{MsgRecord, TraceBundle, TraceMeta};

fn record_strategy() -> impl Strategy<Value = MsgRecord> {
    (
        any::<u64>(),
        0usize..4096,
        any::<bool>(),
        any::<u64>(),
        0usize..4096,
        0u8..12,
        any::<u32>(),
    )
        .prop_map(
            |(time, node, is_dir, block, sender, code, iteration)| MsgRecord {
                time_ns: time,
                node: NodeId::new(node),
                role: if is_dir { Role::Directory } else { Role::Cache },
                block: BlockAddr::new(block),
                sender: NodeId::new(sender),
                mtype: MsgType::from_code(code).unwrap(),
                iteration,
            },
        )
}

fn bundle_strategy() -> impl Strategy<Value = TraceBundle> {
    (
        "[a-z]{1,12}",
        1usize..64,
        any::<u32>(),
        prop::collection::vec(record_strategy(), 0..200),
    )
        .prop_map(|(app, nodes, iterations, records)| {
            let mut b = TraceBundle::new(TraceMeta::new(app, nodes, iterations));
            b.extend_records(records);
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pack/unpack is the identity for every chunk size, including chunk
    /// sizes that divide the record count exactly (no partial tail) and
    /// chunk 1 (one record per chunk).
    #[test]
    fn packed_roundtrip(bundle in bundle_strategy(), chunk in 1u32..300) {
        let bytes = pack::pack_bundle(&bundle, chunk).unwrap();
        let decoded = pack::unpack_bundle(&bytes).unwrap();
        prop_assert_eq!(bundle, decoded);
    }

    /// The stats agree with the stream: record count, chunk count, and
    /// the flat baseline of 26 bytes per record.
    #[test]
    fn stats_are_consistent(bundle in bundle_strategy(), chunk in 1u32..300) {
        let (bytes, stats) = pack::pack_bundle_with_stats(&bundle, chunk).unwrap();
        prop_assert_eq!(stats.records, bundle.len() as u64);
        prop_assert_eq!(stats.flat_bytes, pack::FLAT_RECORD_BYTES * bundle.len() as u64);
        let expected_chunks = (bundle.len() as u64).div_ceil(u64::from(chunk));
        prop_assert_eq!(stats.chunks, expected_chunks);
        prop_assert_eq!(stats.packed_bytes, bytes.len() as u64);
    }

    /// Chunks decode independently and in any order: reading them in
    /// reverse reconstructs the same stream as reading forward.
    #[test]
    fn chunks_decode_independently(bundle in bundle_strategy(), chunk in 1u32..64) {
        prop_assume!(!bundle.is_empty());
        let bytes = pack::pack_bundle(&bundle, chunk).unwrap();
        let mut r = pack::PackedTraceReader::new(Cursor::new(&bytes[..])).unwrap();
        let n = r.chunk_count();
        let mut rev: Vec<Vec<MsgRecord>> = (0..n)
            .rev()
            .map(|i| r.read_chunk(i).unwrap())
            .collect();
        rev.reverse();
        let flat: Vec<MsgRecord> = rev.into_iter().flatten().collect();
        prop_assert_eq!(flat.as_slice(), bundle.records());
    }

    /// Unpacking never panics on arbitrary bytes — it returns an error.
    #[test]
    fn unpack_is_total(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = pack::unpack_bundle(&bytes);
    }

    /// Truncating a valid packed stream anywhere fails cleanly rather
    /// than yielding a different valid trace: the footer and per-chunk
    /// CRCs leave no window for a silent short read.
    #[test]
    fn truncation_detected(bundle in bundle_strategy(), chunk in 1u32..64, cut in any::<prop::sample::Index>()) {
        prop_assume!(!bundle.is_empty());
        let bytes = pack::pack_bundle(&bundle, chunk).unwrap();
        let cut = cut.index(bytes.len().max(1) - 1);
        prop_assert!(pack::unpack_bundle(&bytes[..cut]).is_err());
    }

    /// Corrupting any single byte of the packed stream is detected: the
    /// stream either fails to open, fails a CRC, or decodes to records
    /// that differ from the original (header fields like the app name
    /// are covered by their own checks).
    #[test]
    fn corruption_never_passes_silently(bundle in bundle_strategy(), chunk in 1u32..64, at in any::<prop::sample::Index>(), flip in 1u8..=255) {
        prop_assume!(!bundle.is_empty());
        let mut bytes = pack::pack_bundle(&bundle, chunk).unwrap();
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        match pack::unpack_bundle(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(bundle, decoded),
        }
    }
}
