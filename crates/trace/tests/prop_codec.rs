//! Property tests for the trace codecs and arc extraction.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use stache::{BlockAddr, MsgType, NodeId, Role};
use trace::codec;
use trace::{MsgRecord, TraceBundle, TraceMeta};

fn record_strategy() -> impl Strategy<Value = MsgRecord> {
    (
        any::<u64>(),
        0usize..4096,
        any::<bool>(),
        any::<u64>(),
        0usize..4096,
        0u8..12,
        any::<u32>(),
    )
        .prop_map(
            |(time, node, is_dir, block, sender, code, iteration)| MsgRecord {
                time_ns: time,
                node: NodeId::new(node),
                role: if is_dir { Role::Directory } else { Role::Cache },
                block: BlockAddr::new(block),
                sender: NodeId::new(sender),
                mtype: MsgType::from_code(code).unwrap(),
                iteration,
            },
        )
}

fn bundle_strategy() -> impl Strategy<Value = TraceBundle> {
    (
        "[a-z]{1,12}",
        1usize..64,
        any::<u32>(),
        prop::collection::vec(record_strategy(), 0..100),
    )
        .prop_map(|(app, nodes, iterations, records)| {
            let mut b = TraceBundle::new(TraceMeta::new(app, nodes, iterations));
            b.extend_records(records);
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Binary encode/decode is the identity.
    #[test]
    fn binary_roundtrip(bundle in bundle_strategy()) {
        let decoded = codec::decode(&codec::encode(&bundle).unwrap()).unwrap();
        prop_assert_eq!(bundle, decoded);
    }

    /// Text encode/decode is the identity.
    #[test]
    fn text_roundtrip(bundle in bundle_strategy()) {
        let decoded = codec::from_text(&codec::to_text(&bundle)).unwrap();
        prop_assert_eq!(bundle, decoded);
    }

    /// Decoding never panics on arbitrary bytes — it returns an error.
    #[test]
    fn decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = codec::decode(&bytes);
    }

    /// Truncating a valid encoding anywhere inside the payload fails
    /// cleanly rather than yielding a different valid trace.
    #[test]
    fn truncation_detected(bundle in bundle_strategy(), cut in any::<prop::sample::Index>()) {
        prop_assume!(!bundle.is_empty());
        let encoded = codec::encode(&bundle).unwrap();
        let cut = cut.index(encoded.len().max(1) - 1);
        match codec::decode(&encoded[..cut]) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(decoded.len() < bundle.len()),
        }
    }

    /// Arc counts: total arcs per role equals (records per key - 1) summed
    /// over keys of that role.
    #[test]
    fn arc_totals_match_stream_lengths(bundle in bundle_strategy()) {
        use std::collections::HashMap;
        let arcs = trace::ArcTable::from_bundle(&bundle);
        let mut streams: HashMap<(NodeId, Role, BlockAddr), usize> = HashMap::new();
        for r in bundle.records() {
            *streams.entry((r.node, r.role, r.block)).or_insert(0) += 1;
        }
        for role in [Role::Cache, Role::Directory] {
            let expected: usize = streams
                .iter()
                .filter(|((_, r, _), _)| *r == role)
                .map(|(_, &n)| n - 1)
                .sum();
            prop_assert_eq!(arcs.total(role), expected);
        }
    }
}
