//! First-level-table eviction — the §3.7 history-loss concern.
//!
//! "It may be possible to merge the first-level table with the cache
//! block state maintained at both directories and caches. However, this
//! may lead to a loss of Cosmos' history information when cache blocks
//! are replaced." This variant bounds the Message History Table to a
//! fixed number of block entries per agent; when a new block arrives and
//! the table is full, the least-recently-used block's *entire* predictor
//! state (MHR and PHT) is discarded — exactly what merging the tables
//! with finite cache state would do.
//!
//! Measuring accuracy as the capacity shrinks quantifies how much the
//! persistence that Stache's no-replacement policy provides (§5.1) is
//! worth.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::mhr::Mhr;
use crate::pht::Pht;
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;

#[derive(Debug, Clone)]
struct BlockState {
    mhr: Mhr,
    pht: Option<Pht>,
    /// Neighbour toward the MRU end of the intrusive recency list.
    prev: Option<BlockAddr>,
    /// Neighbour toward the LRU end of the intrusive recency list.
    next: Option<BlockAddr>,
}

/// A Cosmos predictor whose MHT holds at most `capacity` blocks (LRU).
///
/// Recency is an intrusive doubly-linked list threaded through the
/// block states (`head` = most recent, `tail` = victim), so a full
/// table evicts in O(1) — a min-scan over `capacity` entries per insert
/// melts down exactly in the regime this type exists for, a streaming
/// trace that touches far more blocks than the table holds.
#[derive(Debug, Clone)]
pub struct EvictingCosmos {
    depth: usize,
    filter_max: u8,
    capacity: usize,
    blocks: FastMap<BlockAddr, BlockState>,
    head: Option<BlockAddr>,
    tail: Option<BlockAddr>,
    /// Blocks whose history was discarded under capacity pressure.
    pub evictions: u64,
}

impl EvictingCosmos {
    /// Creates a predictor with at most `capacity` tracked blocks.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `capacity` is zero.
    pub fn new(depth: usize, filter_max: u8, capacity: usize) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(capacity > 0, "a zero-capacity MHT cannot predict");
        EvictingCosmos {
            depth,
            filter_max,
            capacity,
            blocks: FastMap::default(),
            head: None,
            tail: None,
            evictions: 0,
        }
    }

    /// The MHT capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, block: BlockAddr) {
        let (prev, next) = {
            let s = &self.blocks[&block];
            (s.prev, s.next)
        };
        match prev {
            Some(p) => self.blocks.get_mut(&p).expect("list link").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.blocks.get_mut(&n).expect("list link").prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, block: BlockAddr) {
        let old = self.head;
        {
            let s = self.blocks.get_mut(&block).expect("pushed block exists");
            s.prev = None;
            s.next = old;
        }
        match old {
            Some(o) => self.blocks.get_mut(&o).expect("list link").prev = Some(block),
            None => self.tail = Some(block),
        }
        self.head = Some(block);
    }

    fn evict_lru(&mut self) {
        // The tail is the least recently *observed* block (predictions
        // don't touch recency), matching the timestamp-scan this
        // replaced: deterministic regardless of table iteration order.
        if let Some(victim) = self.tail {
            self.unlink(victim);
            self.blocks.remove(&victim);
            self.evictions += 1;
        }
    }
}

impl MessagePredictor for EvictingCosmos {
    fn name(&self) -> &'static str {
        "cosmos-evicting"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let state = self.blocks.get(&block)?;
        let key = state.mhr.key()?;
        state.pht.as_ref()?.predict(key)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        if self.blocks.contains_key(&block) {
            self.unlink(block);
        } else {
            if self.blocks.len() >= self.capacity {
                self.evict_lru();
            }
            self.blocks.insert(
                block,
                BlockState {
                    mhr: Mhr::new(self.depth),
                    pht: None,
                    prev: None,
                    next: None,
                },
            );
        }
        self.push_front(block);
        let state = self.blocks.get_mut(&block).expect("just inserted");
        if let Some(key) = state.mhr.key() {
            state
                .pht
                .get_or_insert_with(Pht::new)
                .update(key, tuple, self.filter_max);
        }
        state.mhr.shift(tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.blocks.len(),
            pht_entries: self
                .blocks
                .values()
                .filter_map(|s| s.pht.as_ref())
                .map(Pht::len)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::CosmosPredictor;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn unbounded_capacity_matches_plain_cosmos() {
        let mut ev = EvictingCosmos::new(1, 0, 1000);
        let mut plain = CosmosPredictor::new(1, 0);
        for i in 0..60u64 {
            let blk = b(i % 5);
            let tuple = t(((i / 5) % 3) as usize, MsgType::GetRoRequest);
            assert_eq!(ev.predict(blk), plain.predict(blk));
            ev.observe(blk, tuple);
            plain.observe(blk, tuple);
        }
        assert_eq!(ev.memory(), plain.memory());
        assert_eq!(ev.evictions, 0);
    }

    #[test]
    fn eviction_discards_learned_history() {
        let mut ev = EvictingCosmos::new(1, 0, 1);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        // Learn a->b on block 1.
        for _ in 0..3 {
            ev.observe(b(1), a);
            ev.observe(b(1), bb);
        }
        ev.observe(b(1), a);
        assert_eq!(ev.predict(b(1)), Some(bb));
        // Touching block 2 evicts block 1's state entirely.
        ev.observe(b(2), a);
        assert_eq!(ev.evictions, 1);
        assert_eq!(ev.predict(b(1)), None, "history lost with the block");
        // And block 1 must relearn from scratch.
        ev.observe(b(1), a);
        assert_eq!(ev.predict(b(1)), None);
    }

    #[test]
    fn capacity_is_respected() {
        let mut ev = EvictingCosmos::new(1, 0, 4);
        for i in 0..100u64 {
            ev.observe(b(i), t(0, MsgType::GetRoRequest));
        }
        assert_eq!(ev.memory().mhr_entries, 4);
        assert_eq!(ev.evictions, 96);
    }

    #[test]
    fn lru_keeps_the_hot_block() {
        let mut ev = EvictingCosmos::new(1, 0, 2);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        for _ in 0..3 {
            ev.observe(b(1), a);
            ev.observe(b(1), bb);
        }
        ev.observe(b(2), a); // table now {1, 2}
        ev.observe(b(1), a); // block 1 most recent
        ev.observe(b(3), a); // evicts block 2, not block 1
        assert_eq!(ev.predict(b(1)), Some(bb), "hot block survived");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = EvictingCosmos::new(1, 0, 0);
    }
}
