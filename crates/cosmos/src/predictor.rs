//! The full two-level Cosmos predictor for one agent.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::mhr::Mhr;
use crate::packed;
use crate::pht::{Pht, PhtEntry};
use crate::tuple::PredTuple;
use crate::{CoreStats, MessagePredictor};
use stache::BlockAddr;
use std::cell::Cell;
use std::collections::HashMap;

/// Per-block predictor state: the MHR and its private PHT.
#[derive(Debug, Clone)]
struct BlockState {
    mhr: Mhr,
    /// Allocated lazily: a block gets a PHT only once its reference count
    /// exceeds the MHR depth (Table 7's accounting rule — blocks with at
    /// most `depth` references never allocate one).
    pht: Option<Pht>,
}

/// A Cosmos predictor instance, one per cache or directory module
/// (paper §3.2).
///
/// `depth` is the MHR depth (the paper evaluates 1–4); `filter_max` the
/// noise filter's maximum count (0 = no filter, matching Table 6's
/// column 0; the paper's single-bit counter is 1).
#[derive(Debug, Clone)]
pub struct CosmosPredictor {
    depth: usize,
    filter_max: u8,
    blocks: FastMap<BlockAddr, BlockState>,
    /// PHT probe count (lookups + updates), kept in a `Cell` so the
    /// `&self` predict path can account itself without atomics.
    probes: Cell<u64>,
}

impl CosmosPredictor {
    /// Creates a predictor with the given MHR depth and filter maximum.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds [`packed::MAX_DEPTH`].
    pub fn new(depth: usize, filter_max: u8) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(
            depth <= packed::MAX_DEPTH,
            "MHR depth {depth} exceeds the packed-word maximum of {}",
            packed::MAX_DEPTH
        );
        CosmosPredictor {
            depth,
            filter_max,
            blocks: FastMap::default(),
            probes: Cell::new(0),
        }
    }

    /// The configured MHR depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The configured filter maximum count.
    pub fn filter_max(&self) -> u8 {
        self.filter_max
    }

    /// Number of MHRs allocated (blocks seen at least once).
    pub fn mhr_entries(&self) -> usize {
        self.blocks.len()
    }

    /// Total PHT entries across all blocks.
    pub fn pht_entries(&self) -> usize {
        self.blocks
            .values()
            .filter_map(|b| b.pht.as_ref())
            .map(Pht::len)
            .sum()
    }

    /// Predicts a *chain* of up to `n` future messages for `block` by
    /// repeatedly applying the PHT to a simulated history — the mechanism
    /// behind §4.1's "executing a sequence of protocol actions, instead of
    /// executing a single action". The chain stops early at the first
    /// history with no learned successor.
    ///
    /// ```
    /// use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
    /// use stache::{BlockAddr, MsgType, NodeId};
    /// let mut p = CosmosPredictor::new(1, 0);
    /// let b = BlockAddr::new(1);
    /// let cycle = [
    ///     PredTuple::new(NodeId::new(0), MsgType::GetRoResponse),
    ///     PredTuple::new(NodeId::new(0), MsgType::UpgradeResponse),
    ///     PredTuple::new(NodeId::new(0), MsgType::InvalRwRequest),
    /// ];
    /// for t in cycle.iter().cycle().take(6) {
    ///     p.observe(b, *t);
    /// }
    /// // The whole migratory loop unrolls from the tables.
    /// assert_eq!(p.predict_chain(b, 3), cycle.to_vec());
    /// ```
    pub fn predict_chain(&self, block: BlockAddr, n: usize) -> Vec<PredTuple> {
        let mut chain = Vec::new();
        let Some(state) = self.blocks.get(&block) else {
            return chain;
        };
        let Some(key) = state.mhr.key() else {
            return chain;
        };
        let Some(pht) = state.pht.as_ref() else {
            return chain;
        };
        let mut history = key;
        for _ in 0..n {
            self.probes.set(self.probes.get() + 1);
            let Some(next) = pht.predict(history) else {
                break;
            };
            chain.push(next);
            history = packed::push_key(history, self.depth, next.pack());
        }
        chain
    }

    /// The per-block table contents in address order, for
    /// [`snapshot::save`](crate::snapshot::save).
    pub fn snapshot_blocks(&self) -> Vec<(BlockAddr, &Mhr, Option<&Pht>)> {
        let mut blocks: Vec<_> = self
            .blocks
            .iter()
            .map(|(addr, s)| (*addr, &s.mhr, s.pht.as_ref()))
            .collect();
        blocks.sort_by_key(|(addr, _, _)| *addr);
        blocks
    }

    /// Installs one block's state, replacing any existing entry — the
    /// restore half of [`crate::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the register's depth differs from the predictor's.
    pub fn restore_block(&mut self, addr: BlockAddr, mhr: Mhr, pht: Option<Pht>) {
        assert_eq!(mhr.depth(), self.depth, "MHR depth mismatch on restore");
        self.blocks.insert(addr, BlockState { mhr, pht });
    }

    /// Per-block PHT entry counts (for the preallocation analysis of §3.7).
    pub fn pht_entry_histogram(&self) -> HashMap<usize, usize> {
        let mut hist = HashMap::new();
        for b in self.blocks.values() {
            let n = b.pht.as_ref().map_or(0, Pht::len);
            *hist.entry(n).or_insert(0) += 1;
        }
        hist
    }

    /// PHT probes (lookups plus updates) performed so far.
    pub fn pht_probes(&self) -> u64 {
        self.probes.get()
    }

    /// Estimated bytes reserved by the predictor's hash tables (capacity,
    /// not occupancy) — the `cosmos.core.fastmap_capacity_bytes` gauge.
    pub fn table_capacity_bytes(&self) -> u64 {
        let block_slot = std::mem::size_of::<(BlockAddr, BlockState)>();
        let pht_slot = std::mem::size_of::<(u64, PhtEntry)>();
        let mut bytes = self.blocks.capacity() * block_slot;
        for b in self.blocks.values() {
            if let Some(pht) = &b.pht {
                bytes += pht.capacity() * pht_slot;
            }
        }
        bytes as u64
    }
}

impl MessagePredictor for CosmosPredictor {
    fn name(&self) -> &'static str {
        "cosmos"
    }

    /// §3.3: index the MHT by block, use the MHR as the PHT key, return
    /// the PHT's prediction if one exists.
    #[inline]
    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let state = self.blocks.get(&block)?;
        let key = state.mhr.key()?;
        let pht = state.pht.as_ref()?;
        self.probes.set(self.probes.get() + 1);
        pht.predict(key)
    }

    /// §3.4: write the observed tuple as the new prediction for the
    /// current history (subject to the filter), then left-shift it into
    /// the MHR.
    #[inline]
    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let depth = self.depth;
        let state = self.blocks.entry(block).or_insert_with(|| BlockState {
            mhr: Mhr::new(depth),
            pht: None,
        });
        if let Some(key) = state.mhr.key() {
            self.probes.set(self.probes.get() + 1);
            state
                .pht
                .get_or_insert_with(Pht::new)
                .update(key, tuple, self.filter_max);
        }
        state.mhr.shift(tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.mhr_entries(),
            pht_entries: self.pht_entries(),
        }
    }

    fn core_stats(&self) -> CoreStats {
        CoreStats {
            pht_probes: self.pht_probes(),
            table_capacity_bytes: self.table_capacity_bytes(),
        }
    }

    /// Table 7's tuple accounting, in bits: `depth` tuples per MHR plus
    /// `depth + 1` tuples per PHT entry, at 2 bytes per tuple.
    fn storage_bits(&self) -> u64 {
        self.memory().bytes(self.depth) as u64 * 8
    }
}

/// A sender-agnostic Cosmos variant for the §3.5 footnote-3 ablation: both
/// the history and the predictions collapse every sender to processor 0,
/// so only message *types* are tracked. Evaluate it with
/// [`EvalOptions::type_only`](crate::eval::EvalOptions) — its predictions
/// can never match a full tuple from a nonzero sender, which is exactly
/// the paper's point that dropping the sender loses actionability.
#[derive(Debug, Clone)]
pub struct TypeOnlyCosmos {
    inner: CosmosPredictor,
}

impl TypeOnlyCosmos {
    /// Creates a type-only predictor with the given depth and filter.
    pub fn new(depth: usize, filter_max: u8) -> Self {
        TypeOnlyCosmos {
            inner: CosmosPredictor::new(depth, filter_max),
        }
    }

    fn collapse(tuple: PredTuple) -> PredTuple {
        PredTuple::new(stache::NodeId::new(0), tuple.mtype)
    }
}

impl MessagePredictor for TypeOnlyCosmos {
    fn name(&self) -> &'static str {
        "cosmos-type-only"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.inner.predict(block)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.inner.observe(block, Self::collapse(tuple));
    }

    fn memory(&self) -> MemoryFootprint {
        self.inner.memory()
    }

    fn core_stats(&self) -> CoreStats {
        self.inner.core_stats()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn depth_one_learns_a_cycle() {
        let mut p = CosmosPredictor::new(1, 0);
        let cycle = [
            t(0, MsgType::GetRoResponse),
            t(0, MsgType::UpgradeResponse),
            t(0, MsgType::InvalRwRequest),
        ];
        // Two passes to learn all three transitions.
        for tuple in cycle.iter().cycle().take(6) {
            p.observe(b(1), *tuple);
        }
        // Third pass: every prediction correct.
        for tuple in cycle.iter().cycle().take(6) {
            assert_eq!(p.predict(b(1)), Some(*tuple));
            p.observe(b(1), *tuple);
        }
    }

    #[test]
    fn section_three_five_out_of_order_consumers() {
        // §3.5: after seeing both orders of two consumers' requests, a
        // depth-1 Cosmos predicts the *other* consumer after either one.
        let mut p = CosmosPredictor::new(1, 0);
        let p1 = t(1, MsgType::GetRoRequest);
        let p2 = t(2, MsgType::GetRoRequest);
        let inv = t(3, MsgType::InvalRwResponse);
        // Round A: P1 then P2; round B: P2 then P1.
        for round in [[p1, p2], [p2, p1]] {
            p.observe(b(9), inv);
            for m in round {
                p.observe(b(9), m);
            }
        }
        // The PHT now simultaneously holds P1's-request -> P2's-request
        // and P2's-request -> P1's-request: either arrival order of the
        // two consumers predicts the other consumer next.
        assert_eq!(p.predict(b(9)), Some(p2), "history ends with P1's request");
        p.observe(b(9), p2);
        assert_eq!(
            p.predict(b(9)),
            Some(p1),
            "history now ends with P2's request"
        );
    }

    #[test]
    fn depth_two_disambiguates_three_consumers() {
        // §3.5's depth-2 example: three consumers arriving in rotating
        // orders; depth 2 predicts the third from the first two.
        let mut p = CosmosPredictor::new(2, 0);
        let reqs = [
            t(1, MsgType::GetRoRequest),
            t(2, MsgType::GetRoRequest),
            t(3, MsgType::GetRoRequest),
        ];
        let sep = t(4, MsgType::InvalRwResponse);
        let orders = [[0, 1, 2], [1, 0, 2], [2, 1, 0], [0, 2, 1]];
        for ord in orders {
            p.observe(b(5), sep);
            for i in ord {
                p.observe(b(5), reqs[i]);
            }
        }
        // Replay a seen prefix: [sep, reqs[1]] was followed by reqs[0] in
        // the second round.
        let mut q = p.clone();
        q.observe(b(5), sep);
        q.observe(b(5), reqs[1]);
        assert_eq!(q.predict(b(5)), Some(reqs[0]));
    }

    #[test]
    fn blocks_are_independent() {
        let mut p = CosmosPredictor::new(1, 0);
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRoRequest));
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(2), t(1, MsgType::GetRoRequest));
        // Block 2 has no learned pattern despite block 1's history.
        assert_eq!(p.predict(b(2)), None);
        assert_eq!(p.predict(b(1)), Some(t(2, MsgType::GetRoRequest)));
    }

    #[test]
    fn pht_allocation_is_lazy() {
        let mut p = CosmosPredictor::new(3, 0);
        // Three observations = exactly depth: no PHT yet (Table 7 rule).
        for i in 1..=3 {
            p.observe(b(7), t(i, MsgType::GetRoRequest));
        }
        assert_eq!(p.mhr_entries(), 1);
        assert_eq!(p.pht_entries(), 0);
        // The fourth reference allocates and fills the PHT.
        p.observe(b(7), t(4, MsgType::GetRoRequest));
        assert_eq!(p.pht_entries(), 1);
    }

    #[test]
    fn filter_propagates_to_pht() {
        let mut p = CosmosPredictor::new(1, 1);
        let good = t(2, MsgType::GetRoRequest);
        let noise = t(3, MsgType::UpgradeRequest);
        let anchor = t(1, MsgType::InvalRwResponse);
        // Learn anchor -> good.
        for _ in 0..2 {
            p.observe(b(1), anchor);
            p.observe(b(1), good);
        }
        // One noisy occurrence must not flip the prediction.
        p.observe(b(1), anchor);
        p.observe(b(1), noise);
        p.observe(b(1), anchor);
        assert_eq!(p.predict(b(1)), Some(good));
    }

    #[test]
    fn histogram_counts_blocks_by_pht_size() {
        let mut p = CosmosPredictor::new(1, 0);
        // Block 1: two patterns; block 2: touched once (no PHT).
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRoRequest));
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(2), t(1, MsgType::GetRoRequest));
        let hist = p.pht_entry_histogram();
        assert_eq!(hist.get(&0), Some(&1));
        assert_eq!(hist.get(&2), Some(&1));
        let fp = p.memory();
        assert_eq!(fp.mhr_entries, 2);
        assert_eq!(fp.pht_entries, 2);
    }

    #[test]
    fn core_stats_count_probes_and_capacity() {
        let mut p = CosmosPredictor::new(1, 0);
        assert_eq!(p.core_stats(), CoreStats::default());
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRoRequest)); // 1 update probe
        let _ = p.predict(b(1)); // 1 lookup probe
        let stats = p.core_stats();
        assert_eq!(stats.pht_probes, 2);
        assert!(stats.table_capacity_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn over_deep_predictor_rejected() {
        let _ = CosmosPredictor::new(5, 0);
    }

    #[test]
    fn capacity_bytes_accounting_is_consistent_across_growth() {
        let mut p = CosmosPredictor::new(1, 0);
        assert_eq!(
            p.table_capacity_bytes(),
            0,
            "an empty predictor reserves nothing"
        );
        // Drive enough distinct blocks and per-block patterns to force
        // both the block table and the per-block PHTs through several
        // resizes; the gauge must never move backwards while growing.
        let mut last = 0u64;
        for block in 1..=256u64 {
            for sender in 0..8 {
                p.observe(b(block), t(sender, MsgType::GetRoRequest));
                p.observe(b(block), t(sender, MsgType::InvalRoResponse));
            }
            let now = p.table_capacity_bytes();
            assert!(
                now >= last,
                "capacity gauge regressed {last} -> {now} at block {block}"
            );
            last = now;
        }
        // The gauge is capacity-based, so it must dominate an
        // occupancy-based lower bound over the same slot types...
        let fp = p.memory();
        let occupied = fp.mhr_entries as u64 * 16 + fp.pht_entries as u64 * 16;
        assert!(
            last >= occupied,
            "capacity {last} below an occupancy floor of {occupied}"
        );
        // ...and agree with what core_stats() exports for obs.
        assert_eq!(p.core_stats().table_capacity_bytes, last);
    }
}
