//! Packed message histories: a whole MHR in one `u64`.
//!
//! [`PredTuple::pack`] realises the paper's 16-bit tuple encoding (12-bit
//! sender, 4-bit type, Table 7's caption), and the paper never evaluates an
//! MHR deeper than 4 — so an entire history fits in a single machine word,
//! four 16-bit lanes wide. [`PackedHistory`] stores it that way: shifting a
//! tuple in is one shift-or-mask instead of a `Vec::remove(0)` memmove, and
//! the full register *is* the PHT key — no heap-allocated `Vec<PredTuple>`
//! per probe, no per-tuple hashing.
//!
//! Lane layout: the **oldest** tuple lives in the highest occupied 16-bit
//! lane, the newest in bits 0..16. Two same-depth histories are equal iff
//! their words are equal, and the word compares/hashes in one operation.

use crate::tuple::PredTuple;

/// The deepest MHR the packed representation (and the paper) supports.
pub const MAX_DEPTH: usize = 4;

/// The packed-key mask for a given depth: the low `16 * depth` bits.
///
/// # Panics
///
/// Panics if `depth` is outside `1..=MAX_DEPTH`, in every build profile.
/// A debug-only guard here let release builds compute `key_mask(0) == 0`,
/// which silently pinned every [`push_key`] result to zero — a key that
/// aliases all histories — and saturated out-of-range depths to the full
/// word. Both are data corruption, not recoverable states.
#[inline]
pub fn key_mask(depth: usize) -> u64 {
    assert!(
        (1..=MAX_DEPTH).contains(&depth),
        "packed-key depth {depth} outside 1..={MAX_DEPTH}"
    );
    if depth >= MAX_DEPTH {
        u64::MAX
    } else {
        (1u64 << (16 * depth)) - 1
    }
}

/// Advances a full packed key by one tuple: shifts the oldest lane out and
/// the new tuple in. Used to simulate history evolution without touching
/// the tables (chain prediction, lookahead).
#[inline]
pub fn push_key(key: u64, depth: usize, packed: u16) -> u64 {
    ((key << 16) | u64::from(packed)) & key_mask(depth)
}

/// Packs a slice of tuples (oldest first) into a key word.
///
/// # Panics
///
/// Panics if more than [`MAX_DEPTH`] tuples are given.
pub fn pack_key(tuples: &[PredTuple]) -> u64 {
    assert!(tuples.len() <= MAX_DEPTH, "history deeper than one word");
    tuples
        .iter()
        .fold(0u64, |k, t| (k << 16) | u64::from(t.pack()))
}

/// Unpacks a key word of `depth` lanes back into tuples (oldest first).
/// Returns `None` if any lane holds an invalid tuple encoding.
///
/// # Panics
///
/// Panics if `depth` is outside `1..=MAX_DEPTH`, in every build profile.
pub fn unpack_key(key: u64, depth: usize) -> Option<Vec<PredTuple>> {
    assert!(
        (1..=MAX_DEPTH).contains(&depth),
        "packed-key depth {depth} outside 1..={MAX_DEPTH}"
    );
    (0..depth)
        .rev()
        .map(|lane| PredTuple::unpack((key >> (16 * lane)) as u16))
        .collect()
}

/// A fixed-depth shift register of packed prediction tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedHistory {
    depth: u8,
    len: u8,
    bits: u64,
}

impl PackedHistory {
    /// Creates an empty register.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds [`MAX_DEPTH`] — the packed
    /// layout is exactly one word wide.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(
            depth <= MAX_DEPTH,
            "MHR depth {depth} exceeds the packed-word maximum of {MAX_DEPTH}"
        );
        PackedHistory {
            depth: depth as u8,
            len: 0,
            bits: 0,
        }
    }

    /// The configured depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Tuples currently held (0 until warm, then always `depth`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no tuple has been shifted in yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `depth` tuples have been received.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.depth
    }

    /// Shifts a packed tuple in; once full, the oldest lane falls out.
    #[inline]
    pub fn push(&mut self, packed: u16) {
        self.bits = ((self.bits << 16) | u64::from(packed)) & key_mask(self.depth as usize);
        if self.len < self.depth {
            self.len += 1;
        }
    }

    /// The PHT key — the packed word — once the register is full.
    #[inline]
    pub fn key(&self) -> Option<u64> {
        self.is_full().then_some(self.bits)
    }

    /// The raw packed word regardless of fill level (low lanes occupied).
    #[inline]
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// The `i`-th occupied lane, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn lane(&self, i: usize) -> u16 {
        assert!(i < self.len(), "lane {i} of {}", self.len());
        (self.bits >> (16 * (self.len() - 1 - i))) as u16
    }

    /// The most recently pushed lane, if any.
    #[inline]
    pub fn last(&self) -> Option<u16> {
        (self.len > 0).then_some(self.bits as u16)
    }

    /// Unpacks the occupied lanes into tuples, oldest first.
    pub fn tuples(&self) -> Vec<PredTuple> {
        (0..self.len())
            .map(|i| PredTuple::unpack(self.lane(i)).expect("lane holds a packed tuple"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    #[test]
    fn masks_cover_each_depth() {
        assert_eq!(key_mask(1), 0xFFFF);
        assert_eq!(key_mask(2), 0xFFFF_FFFF);
        assert_eq!(key_mask(3), 0xFFFF_FFFF_FFFF);
        assert_eq!(key_mask(4), u64::MAX);
    }

    #[test]
    fn fills_then_shifts_like_a_fifo() {
        let mut h = PackedHistory::new(2);
        assert!(h.is_empty());
        assert_eq!(h.key(), None);
        let a = t(1, MsgType::GetRoRequest);
        let b = t(2, MsgType::GetRwRequest);
        let c = t(3, MsgType::UpgradeRequest);
        h.push(a.pack());
        assert_eq!(h.key(), None);
        assert_eq!(h.tuples(), vec![a]);
        h.push(b.pack());
        assert!(h.is_full());
        assert_eq!(h.key(), Some(pack_key(&[a, b])));
        h.push(c.pack());
        assert_eq!(h.key(), Some(pack_key(&[b, c])), "oldest lane fell out");
        assert_eq!(h.last(), Some(c.pack()));
        assert_eq!(h.tuples(), vec![b, c]);
    }

    #[test]
    fn depth_four_uses_the_full_word() {
        let mut h = PackedHistory::new(4);
        let ts: Vec<PredTuple> = (0..5).map(|i| t(i + 1, MsgType::GetRoRequest)).collect();
        for x in &ts {
            h.push(x.pack());
        }
        // The first tuple fell out; the remaining four fill all 64 bits.
        assert_eq!(h.key(), Some(pack_key(&ts[1..])));
        assert_eq!(h.tuples(), ts[1..].to_vec());
    }

    #[test]
    fn push_key_matches_register_evolution() {
        for depth in 1..=MAX_DEPTH {
            let mut h = PackedHistory::new(depth);
            let mut key = None;
            for i in 0..10 {
                let tuple = t((i * 7) % 13 + 1, MsgType::GetRoRequest);
                if let Some(k) = key {
                    key = Some(push_key(k, depth, tuple.pack()));
                }
                h.push(tuple.pack());
                if key.is_none() {
                    key = h.key();
                }
                if h.is_full() {
                    assert_eq!(h.key(), key, "depth {depth} step {i}");
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let ts = vec![
            t(4095, MsgType::GetRoRequest),
            t(0, MsgType::GetRwRequest),
            t(17, MsgType::UpgradeRequest),
        ];
        let key = pack_key(&ts);
        assert_eq!(unpack_key(key, 3), Some(ts));
    }

    #[test]
    fn unpack_rejects_invalid_lanes() {
        // Type code 13 is out of range.
        assert_eq!(unpack_key(13, 1), None);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn depth_zero_rejected() {
        let _ = PackedHistory::new(0);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn depth_five_rejected() {
        let _ = PackedHistory::new(5);
    }

    // The next four guard the release-mode regression: these asserts used
    // to be debug-only, so optimised builds returned mask 0 for depth 0
    // (pinning every pushed key to 0) and u64::MAX for depth > MAX_DEPTH.
    // They must panic in *every* profile.

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn key_mask_depth_zero_panics_in_all_profiles() {
        let _ = key_mask(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn key_mask_depth_five_panics_in_all_profiles() {
        let _ = key_mask(MAX_DEPTH + 1);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn push_key_depth_zero_panics_in_all_profiles() {
        let _ = push_key(0xABCD, 0, 0x1234);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn unpack_key_depth_zero_panics_in_all_profiles() {
        let _ = unpack_key(0, 0);
    }
}
