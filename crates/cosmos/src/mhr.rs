//! The Message History Register: the first predictor level.
//!
//! An MHR is a shift register of the last `depth` `<sender, type>` tuples
//! received for one cache block (paper §3.2). Its contents — once full —
//! form the key into the block's Pattern History Table.
//!
//! Since PR 3 the register is backed by [`PackedHistory`]: the whole
//! history lives in one `u64` (16 bits per tuple, depth ≤ 4), so a shift
//! is a word operation and the PHT key is the word itself.

use crate::packed::PackedHistory;
use crate::tuple::PredTuple;
use std::fmt;

/// A fixed-depth shift register of prediction tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mhr {
    packed: PackedHistory,
}

impl Mhr {
    /// Creates an empty register of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a depthless Cosmos has no first level —
    /// or exceeds [`crate::packed::MAX_DEPTH`] (the paper evaluates 1–4;
    /// the packed layout is one word wide).
    pub fn new(depth: usize) -> Self {
        Mhr {
            packed: PackedHistory::new(depth),
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.packed.depth()
    }

    /// Left-shifts a tuple in (paper §3.4); the oldest tuple falls out once
    /// the register is full.
    #[inline]
    pub fn shift(&mut self, tuple: PredTuple) {
        self.packed.push(tuple.pack());
    }

    /// Whether `depth` tuples have been received.
    pub fn is_full(&self) -> bool {
        self.packed.is_full()
    }

    /// The packed register contents, usable as a PHT key once full.
    #[inline]
    pub fn key(&self) -> Option<u64> {
        self.packed.key()
    }

    /// The register contents regardless of fill level (oldest first).
    pub fn contents(&self) -> Vec<PredTuple> {
        self.packed.tuples()
    }

    /// The most recent tuple, if any.
    pub fn last(&self) -> Option<PredTuple> {
        self.packed
            .last()
            .map(|bits| PredTuple::unpack(bits).expect("lane holds a packed tuple"))
    }
}

impl fmt::Display for Mhr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.contents().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack_key;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    #[test]
    fn fills_then_shifts() {
        let mut r = Mhr::new(2);
        assert!(!r.is_full());
        assert_eq!(r.key(), None);
        r.shift(t(1, MsgType::GetRoRequest));
        assert!(!r.is_full());
        r.shift(t(2, MsgType::GetRoRequest));
        assert!(r.is_full());
        assert_eq!(
            r.key().unwrap(),
            pack_key(&[t(1, MsgType::GetRoRequest), t(2, MsgType::GetRoRequest)])
        );
        r.shift(t(3, MsgType::UpgradeRequest));
        assert_eq!(
            r.key().unwrap(),
            pack_key(&[t(2, MsgType::GetRoRequest), t(3, MsgType::UpgradeRequest)])
        );
        assert_eq!(r.last(), Some(t(3, MsgType::UpgradeRequest)));
        assert_eq!(
            r.contents(),
            vec![t(2, MsgType::GetRoRequest), t(3, MsgType::UpgradeRequest)]
        );
    }

    #[test]
    fn depth_one_keeps_only_latest() {
        let mut r = Mhr::new(1);
        r.shift(t(1, MsgType::GetRoRequest));
        r.shift(t(2, MsgType::GetRwRequest));
        assert_eq!(r.key().unwrap(), pack_key(&[t(2, MsgType::GetRwRequest)]));
        assert_eq!(r.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = Mhr::new(0);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn over_deep_register_rejected() {
        let _ = Mhr::new(5);
    }

    #[test]
    fn display_shows_tuples() {
        let mut r = Mhr::new(2);
        r.shift(t(1, MsgType::GetRoRequest));
        assert_eq!(r.to_string(), "[<P1, get_ro_request>]");
    }
}
