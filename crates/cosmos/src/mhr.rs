//! The Message History Register: the first predictor level.
//!
//! An MHR is a shift register of the last `depth` `<sender, type>` tuples
//! received for one cache block (paper §3.2). Its contents — once full —
//! form the key into the block's Pattern History Table.

use crate::tuple::PredTuple;
use std::fmt;

/// A fixed-depth shift register of prediction tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mhr {
    depth: usize,
    /// Most recent tuple last.
    history: Vec<PredTuple>,
}

impl Mhr {
    /// Creates an empty register of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a depthless Cosmos has no first level.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        Mhr {
            depth,
            history: Vec::with_capacity(depth),
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Left-shifts a tuple in (paper §3.4); the oldest tuple falls out once
    /// the register is full.
    pub fn shift(&mut self, tuple: PredTuple) {
        if self.history.len() == self.depth {
            self.history.remove(0);
        }
        self.history.push(tuple);
    }

    /// Whether `depth` tuples have been received.
    pub fn is_full(&self) -> bool {
        self.history.len() == self.depth
    }

    /// The register contents (oldest first), usable as a PHT key once full.
    pub fn key(&self) -> Option<&[PredTuple]> {
        self.is_full().then_some(self.history.as_slice())
    }

    /// The register contents regardless of fill level (oldest first).
    pub fn contents(&self) -> &[PredTuple] {
        &self.history
    }

    /// The most recent tuple, if any.
    pub fn last(&self) -> Option<PredTuple> {
        self.history.last().copied()
    }
}

impl fmt::Display for Mhr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.history.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    #[test]
    fn fills_then_shifts() {
        let mut r = Mhr::new(2);
        assert!(!r.is_full());
        assert_eq!(r.key(), None);
        r.shift(t(1, MsgType::GetRoRequest));
        assert!(!r.is_full());
        r.shift(t(2, MsgType::GetRoRequest));
        assert!(r.is_full());
        assert_eq!(
            r.key().unwrap(),
            &[t(1, MsgType::GetRoRequest), t(2, MsgType::GetRoRequest)]
        );
        r.shift(t(3, MsgType::UpgradeRequest));
        assert_eq!(
            r.key().unwrap(),
            &[t(2, MsgType::GetRoRequest), t(3, MsgType::UpgradeRequest)]
        );
        assert_eq!(r.last(), Some(t(3, MsgType::UpgradeRequest)));
    }

    #[test]
    fn depth_one_keeps_only_latest() {
        let mut r = Mhr::new(1);
        r.shift(t(1, MsgType::GetRoRequest));
        r.shift(t(2, MsgType::GetRwRequest));
        assert_eq!(r.key().unwrap(), &[t(2, MsgType::GetRwRequest)]);
        assert_eq!(r.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = Mhr::new(0);
    }

    #[test]
    fn display_shows_tuples() {
        let mut r = Mhr::new(2);
        r.shift(t(1, MsgType::GetRoRequest));
        assert_eq!(r.to_string(), "[<P1, get_ro_request>]");
    }
}
