//! The analytic speedup model of §4.4 (Figure 5).
//!
//! If performance is determined purely by the number of coherence messages
//! on the critical path, and
//!
//! * `p` — prediction accuracy per message,
//! * `f` — fraction of delay still incurred by correctly-predicted
//!   messages (`f = 0` means fully overlapped),
//! * `r` — extra penalty on mispredicted messages (`r = 0.5` ⇒ 1.5× delay),
//!
//! then
//!
//! ```text
//! time(without prediction) / time(with prediction) = 1 / (p·f + (1−p)·(1+r))
//! ```

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeedupParams {
    /// Prediction accuracy per message, in [0, 1].
    pub p: f64,
    /// Fraction of delay on correctly-predicted messages, in [0, 1].
    pub f: f64,
    /// Mispredicted-message penalty, ≥ 0.
    pub r: f64,
}

/// The speedup ratio `time(without) / time(with)`.
///
/// # Panics
///
/// Panics (debug assertions) on parameters outside their documented
/// ranges, and always if the denominator is non-positive (which requires
/// `p = 1` and `f = 0` — infinite speedup is out of the model's scope, so
/// the function returns `f64::INFINITY` there instead of panicking).
pub fn speedup(params: SpeedupParams) -> f64 {
    let SpeedupParams { p, f, r } = params;
    debug_assert!((0.0..=1.0).contains(&p), "accuracy p out of range");
    debug_assert!((0.0..=1.0).contains(&f), "delay fraction f out of range");
    debug_assert!(r >= 0.0, "penalty r negative");
    let denom = p * f + (1.0 - p) * (1.0 + r);
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    1.0 / denom
}

/// Percentage speedup, `(speedup − 1) · 100`.
pub fn speedup_percent(params: SpeedupParams) -> f64 {
    (speedup(params) - 1.0) * 100.0
}

/// One point of a Figure 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// The parameters at this point.
    pub params: SpeedupParams,
    /// The resulting speedup ratio.
    pub speedup: f64,
}

/// Sweeps `f` across `[0, 1]` for each penalty in `penalties`, at fixed
/// accuracy `p` — the series Figure 5 plots (the paper fixes `p = 0.8`).
pub fn figure5_sweep(p: f64, penalties: &[f64], f_steps: usize) -> Vec<Vec<SweepPoint>> {
    assert!(f_steps >= 2, "a sweep needs at least two points");
    penalties
        .iter()
        .map(|&r| {
            (0..f_steps)
                .map(|i| {
                    let f = i as f64 / (f_steps - 1) as f64;
                    let params = SpeedupParams { p, f, r };
                    SweepPoint {
                        params,
                        speedup: speedup(params),
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_number() {
        // §4.4: p = 0.8, r = 1, f = 0.3 ⇒ speedup "as high as 56%".
        let s = speedup_percent(SpeedupParams {
            p: 0.8,
            f: 0.3,
            r: 1.0,
        });
        assert!((s - 56.25).abs() < 0.01, "got {s}%");
    }

    #[test]
    fn no_prediction_benefit_when_f_is_one_and_r_zero() {
        // Correct predictions save nothing and mispredictions cost nothing:
        // the model degenerates to no change.
        let s = speedup(SpeedupParams {
            p: 0.8,
            f: 1.0,
            r: 0.0,
        });
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_accuracy_never_hurts() {
        for f in [0.0, 0.3, 0.7] {
            for r in [0.0, 0.5, 1.0] {
                let lo = speedup(SpeedupParams { p: 0.5, f, r });
                let hi = speedup(SpeedupParams { p: 0.9, f, r });
                // With f <= 1 <= 1 + r, more accuracy means less time.
                assert!(hi >= lo, "f={f} r={r}: {hi} < {lo}");
            }
        }
    }

    #[test]
    fn perfect_overlapped_prediction_is_unbounded() {
        assert!(speedup(SpeedupParams {
            p: 1.0,
            f: 0.0,
            r: 9.0
        })
        .is_infinite());
    }

    #[test]
    fn misprediction_penalty_can_cause_slowdown() {
        // Low accuracy + heavy penalty + little overlap benefit: slower.
        let s = speedup(SpeedupParams {
            p: 0.2,
            f: 1.0,
            r: 1.0,
        });
        assert!(s < 1.0);
    }

    #[test]
    fn sweep_shape() {
        let series = figure5_sweep(0.8, &[0.0, 0.5, 1.0], 11);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].len(), 11);
        // Speedup decreases as f grows (less overlap benefit).
        for s in &series {
            for w in s.windows(2) {
                assert!(w[0].speedup >= w[1].speedup);
            }
        }
        // And decreases with penalty at fixed f.
        assert!(series[0][5].speedup >= series[2][5].speedup);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn degenerate_sweep_rejected() {
        let _ = figure5_sweep(0.8, &[0.0], 1);
    }
}
