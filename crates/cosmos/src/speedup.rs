//! The analytic speedup model of §4.4 (Figure 5).
//!
//! If performance is determined purely by the number of coherence messages
//! on the critical path, and
//!
//! * `p` — prediction accuracy per message,
//! * `f` — fraction of delay still incurred by correctly-predicted
//!   messages (`f = 0` means fully overlapped),
//! * `r` — extra penalty on mispredicted messages (`r = 0.5` ⇒ 1.5× delay),
//!
//! then
//!
//! ```text
//! time(without prediction) / time(with prediction) = 1 / (p·f + (1−p)·(1+r))
//! ```

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeedupParams {
    /// Prediction accuracy per message, in [0, 1].
    pub p: f64,
    /// Fraction of delay on correctly-predicted messages, in [0, 1].
    pub f: f64,
    /// Mispredicted-message penalty, ≥ 0.
    pub r: f64,
}

/// A parameter outside the model's documented domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupError {
    /// `p` outside `[0, 1]` (or NaN).
    AccuracyOutOfRange(f64),
    /// `f` outside `[0, 1]` (or NaN).
    DelayFractionOutOfRange(f64),
    /// `r` negative (or NaN).
    PenaltyNegative(f64),
}

impl std::fmt::Display for SpeedupError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeedupError::AccuracyOutOfRange(p) => {
                write!(out, "accuracy p = {p} outside [0, 1]")
            }
            SpeedupError::DelayFractionOutOfRange(f) => {
                write!(out, "delay fraction f = {f} outside [0, 1]")
            }
            SpeedupError::PenaltyNegative(r) => write!(out, "penalty r = {r} negative"),
        }
    }
}

impl std::error::Error for SpeedupError {}

/// The speedup ratio `time(without) / time(with)`, or an error if any
/// parameter is outside its documented range — the checked entry point for
/// callers fed by untrusted input (CLI flags, config files).
pub fn try_speedup(params: SpeedupParams) -> Result<f64, SpeedupError> {
    let SpeedupParams { p, f, r } = params;
    if !(0.0..=1.0).contains(&p) {
        return Err(SpeedupError::AccuracyOutOfRange(p));
    }
    if !(0.0..=1.0).contains(&f) {
        return Err(SpeedupError::DelayFractionOutOfRange(f));
    }
    if r < 0.0 || r.is_nan() {
        return Err(SpeedupError::PenaltyNegative(r));
    }
    let denom = p * f + (1.0 - p) * (1.0 + r);
    if denom <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(1.0 / denom)
}

/// The speedup ratio `time(without) / time(with)`.
///
/// # Panics
///
/// Panics — in every build profile — on parameters outside their
/// documented ranges. (These checks were previously `debug_assert!`s, so
/// release builds silently produced garbage ratios for out-of-range
/// inputs, e.g. a *negative* "speedup" for `p > 1`.) A non-positive
/// denominator requires `p = 1` and `f = 0`; infinite speedup is out of
/// the model's scope, so the function returns `f64::INFINITY` there
/// instead of panicking. Use [`try_speedup`] to handle bad parameters
/// without panicking.
pub fn speedup(params: SpeedupParams) -> f64 {
    match try_speedup(params) {
        Ok(s) => s,
        Err(e) => panic!("speedup model: {e}"),
    }
}

/// Percentage speedup, `(speedup − 1) · 100`.
pub fn speedup_percent(params: SpeedupParams) -> f64 {
    (speedup(params) - 1.0) * 100.0
}

/// One point of a Figure 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// The parameters at this point.
    pub params: SpeedupParams,
    /// The resulting speedup ratio.
    pub speedup: f64,
}

/// Sweeps `f` across `[0, 1]` for each penalty in `penalties`, at fixed
/// accuracy `p` — the series Figure 5 plots (the paper fixes `p = 0.8`).
pub fn figure5_sweep(p: f64, penalties: &[f64], f_steps: usize) -> Vec<Vec<SweepPoint>> {
    assert!(f_steps >= 2, "a sweep needs at least two points");
    penalties
        .iter()
        .map(|&r| {
            (0..f_steps)
                .map(|i| {
                    let f = i as f64 / (f_steps - 1) as f64;
                    let params = SpeedupParams { p, f, r };
                    SweepPoint {
                        params,
                        speedup: speedup(params),
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_number() {
        // §4.4: p = 0.8, r = 1, f = 0.3 ⇒ speedup "as high as 56%".
        let s = speedup_percent(SpeedupParams {
            p: 0.8,
            f: 0.3,
            r: 1.0,
        });
        assert!((s - 56.25).abs() < 0.01, "got {s}%");
    }

    #[test]
    fn no_prediction_benefit_when_f_is_one_and_r_zero() {
        // Correct predictions save nothing and mispredictions cost nothing:
        // the model degenerates to no change.
        let s = speedup(SpeedupParams {
            p: 0.8,
            f: 1.0,
            r: 0.0,
        });
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_accuracy_never_hurts() {
        for f in [0.0, 0.3, 0.7] {
            for r in [0.0, 0.5, 1.0] {
                let lo = speedup(SpeedupParams { p: 0.5, f, r });
                let hi = speedup(SpeedupParams { p: 0.9, f, r });
                // With f <= 1 <= 1 + r, more accuracy means less time.
                assert!(hi >= lo, "f={f} r={r}: {hi} < {lo}");
            }
        }
    }

    #[test]
    fn perfect_overlapped_prediction_is_unbounded() {
        assert!(speedup(SpeedupParams {
            p: 1.0,
            f: 0.0,
            r: 9.0
        })
        .is_infinite());
    }

    #[test]
    fn misprediction_penalty_can_cause_slowdown() {
        // Low accuracy + heavy penalty + little overlap benefit: slower.
        let s = speedup(SpeedupParams {
            p: 0.2,
            f: 1.0,
            r: 1.0,
        });
        assert!(s < 1.0);
    }

    #[test]
    fn sweep_shape() {
        let series = figure5_sweep(0.8, &[0.0, 0.5, 1.0], 11);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].len(), 11);
        // Speedup decreases as f grows (less overlap benefit).
        for s in &series {
            for w in s.windows(2) {
                assert!(w[0].speedup >= w[1].speedup);
            }
        }
        // And decreases with penalty at fixed f.
        assert!(series[0][5].speedup >= series[2][5].speedup);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn degenerate_sweep_rejected() {
        let _ = figure5_sweep(0.8, &[0.0], 1);
    }

    // Range checks must hold in release builds too: as `debug_assert!`s
    // they vanished under `--release`, and e.g. `p = 1.2` yielded a
    // negative denominator and a nonsensical negative "speedup".

    #[test]
    #[should_panic(expected = "accuracy p")]
    fn accuracy_above_one_panics_in_all_profiles() {
        let _ = speedup(SpeedupParams {
            p: 1.2,
            f: 0.3,
            r: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "delay fraction f")]
    fn negative_delay_fraction_panics_in_all_profiles() {
        let _ = speedup(SpeedupParams {
            p: 0.8,
            f: -0.1,
            r: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "penalty r")]
    fn negative_penalty_panics_in_all_profiles() {
        let _ = speedup(SpeedupParams {
            p: 0.8,
            f: 0.3,
            r: -1.0,
        });
    }

    #[test]
    fn try_speedup_reports_each_violation() {
        let ok = SpeedupParams {
            p: 0.8,
            f: 0.3,
            r: 1.0,
        };
        assert_eq!(try_speedup(ok), Ok(speedup(ok)));
        assert_eq!(
            try_speedup(SpeedupParams { p: -0.1, ..ok }),
            Err(SpeedupError::AccuracyOutOfRange(-0.1))
        );
        assert_eq!(
            try_speedup(SpeedupParams { f: 1.5, ..ok }),
            Err(SpeedupError::DelayFractionOutOfRange(1.5))
        );
        assert_eq!(
            try_speedup(SpeedupParams { r: -0.5, ..ok }),
            Err(SpeedupError::PenaltyNegative(-0.5))
        );
        assert!(try_speedup(SpeedupParams { p: f64::NAN, ..ok }).is_err());
        let msg = SpeedupError::PenaltyNegative(-0.5).to_string();
        assert!(msg.contains("penalty"), "{msg}");
    }
}
