//! The last-tuple baseline: predict a repeat of the previous message.

use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;
use std::collections::HashMap;

/// Predicts that the next incoming message for a block is identical to the
/// last one — the cheapest possible per-block predictor and a useful floor
/// for Cosmos comparisons.
#[derive(Debug, Clone, Default)]
pub struct LastTuple {
    last: HashMap<BlockAddr, PredTuple>,
}

impl LastTuple {
    /// Creates the predictor.
    pub fn new() -> Self {
        LastTuple::default()
    }
}

impl MessagePredictor for LastTuple {
    fn name(&self) -> &'static str {
        "last-tuple"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.last.get(&block).copied()
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.last.insert(block, tuple);
    }

    /// Per tracked block: one 16-bit `<sender, type>` tuple.
    fn storage_bits(&self) -> u64 {
        self.last.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    #[test]
    fn repeats_the_last_observation() {
        let mut p = LastTuple::new();
        let b = BlockAddr::new(1);
        assert_eq!(p.predict(b), None);
        let t1 = PredTuple::new(NodeId::new(1), MsgType::GetRoRequest);
        let t2 = PredTuple::new(NodeId::new(2), MsgType::GetRwRequest);
        p.observe(b, t1);
        assert_eq!(p.predict(b), Some(t1));
        p.observe(b, t2);
        assert_eq!(p.predict(b), Some(t2));
        assert_eq!(p.predict(BlockAddr::new(9)), None);
    }
}
