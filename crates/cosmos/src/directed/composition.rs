//! Stacking the directed predictors — §7's thought experiment.
//!
//! The paper argues that *composing* several directed optimisations into a
//! real protocol explodes the state space; as pure predictors they compose
//! trivially (first one with an opinion wins), which isolates the
//! *coverage* question: even composed, directed predictors cannot track a
//! pattern none of them was directed at, e.g. unstructured's
//! migratory↔producer-consumer oscillation.

use super::{DsiPredictor, MigratoryPredictor, RmwPredictor};
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::{BlockAddr, Role};

/// Migratory, then self-invalidation, then read-modify-write, in priority
/// order. All members observe every message; the first to offer a
/// prediction provides it.
#[derive(Debug, Clone)]
pub struct Composition {
    migratory: MigratoryPredictor,
    dsi: DsiPredictor,
    rmw: RmwPredictor,
}

impl Composition {
    /// Creates the composed predictor for an agent of the given role.
    pub fn new(role: Role) -> Self {
        Composition {
            migratory: MigratoryPredictor::new(role),
            dsi: DsiPredictor::new(role),
            rmw: RmwPredictor::new(role),
        }
    }
}

impl MessagePredictor for Composition {
    fn name(&self) -> &'static str {
        "directed-composition"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.migratory
            .predict(block)
            .or_else(|| self.dsi.predict(block))
            .or_else(|| self.rmw.predict(block))
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.migratory.observe(block, tuple);
        self.dsi.observe(block, tuple);
        self.rmw.observe(block, tuple);
    }

    fn storage_bits(&self) -> u64 {
        self.migratory.storage_bits() + self.dsi.storage_bits() + self.rmw.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    #[test]
    fn priority_order_prefers_migratory() {
        let mut p = Composition::new(Role::Cache);
        let b = BlockAddr::new(1);
        let home = NodeId::new(0);
        // After a shared fill, both the migratory (upgrade next) and DSI
        // (invalidation next) rules could fire; migratory wins.
        p.observe(b, PredTuple::new(home, MsgType::GetRoResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::UpgradeResponse))
        );
    }

    #[test]
    fn falls_through_to_dsi() {
        let mut p = Composition::new(Role::Cache);
        let b = BlockAddr::new(1);
        let home = NodeId::new(0);
        // get_rw_response: migratory has no rule, DSI does.
        p.observe(b, PredTuple::new(home, MsgType::GetRwResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::InvalRwRequest))
        );
    }

    #[test]
    fn silent_when_no_member_fires() {
        let mut p = Composition::new(Role::Directory);
        let b = BlockAddr::new(1);
        p.observe(b, PredTuple::new(NodeId::new(2), MsgType::InvalRoResponse));
        assert_eq!(p.predict(b), None);
    }
}
