//! The per-block modal baseline.

use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;
use std::collections::HashMap;

/// Predicts each block's most frequently observed tuple so far (ties break
/// toward the earliest-seen tuple). History-less in the Cosmos sense — no
/// pattern context — so it bounds what a static per-block hint could do.
#[derive(Debug, Clone, Default)]
pub struct MostCommon {
    counts: HashMap<BlockAddr, HashMap<PredTuple, (u64, u64)>>, // (count, first_seen_seq)
    seq: u64,
}

impl MostCommon {
    /// Creates the predictor.
    pub fn new() -> Self {
        MostCommon::default()
    }
}

impl MessagePredictor for MostCommon {
    fn name(&self) -> &'static str {
        "most-common"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let counts = self.counts.get(&block)?;
        counts
            .iter()
            .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
            .map(|(t, _)| *t)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.seq += 1;
        let entry = self
            .counts
            .entry(block)
            .or_default()
            .entry(tuple)
            .or_insert((0, self.seq));
        entry.0 += 1;
    }

    /// Per `(block, tuple)` bucket: the 16-bit tuple, a 32-bit count, and
    /// a 32-bit insertion sequence for the tie-break.
    fn storage_bits(&self) -> u64 {
        self.counts.values().map(|c| c.len() as u64).sum::<u64>() * (16 + 32 + 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    #[test]
    fn tracks_the_mode() {
        let mut p = MostCommon::new();
        let b = BlockAddr::new(1);
        let a = PredTuple::new(NodeId::new(1), MsgType::GetRoRequest);
        let c = PredTuple::new(NodeId::new(2), MsgType::GetRwRequest);
        p.observe(b, a);
        p.observe(b, c);
        p.observe(b, c);
        assert_eq!(p.predict(b), Some(c));
        p.observe(b, a);
        p.observe(b, a);
        assert_eq!(p.predict(b), Some(a));
    }

    #[test]
    fn ties_break_to_earliest_seen() {
        let mut p = MostCommon::new();
        let b = BlockAddr::new(1);
        let a = PredTuple::new(NodeId::new(1), MsgType::GetRoRequest);
        let c = PredTuple::new(NodeId::new(2), MsgType::GetRwRequest);
        p.observe(b, a);
        p.observe(b, c);
        assert_eq!(p.predict(b), Some(a));
    }
}
