//! Directed migratory-sharing prediction (Cox & Fowler '93, Stenström et
//! al. '93 — Figure 8(b)).
//!
//! Migratory sharing: a block is read then written by one processor, then
//! read then written by another, in turn. At a cache the incoming
//! signature is `get_ro_response → upgrade_response → inval_rw_request`;
//! at the directory, `get_ro_request(q) → inval_rw_response(p) →
//! upgrade_request(q) → get_ro_request(…)`.
//!
//! The predictor fires only when it recognises the pattern; outside it, it
//! offers no prediction — the directedness §7 contrasts with Cosmos.

use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;

/// Per-block directory-side tracking.
#[derive(Debug, Clone, Default)]
struct DirTrack {
    /// Sender of the most recent `get_ro_request` (the incoming migrator).
    reader: Option<NodeId>,
    /// The current exclusive owner, as far as requests reveal it.
    owner: Option<NodeId>,
    /// The previous owner (who the block migrated *from*).
    prev_owner: Option<NodeId>,
    last: Option<MsgType>,
}

/// Per-block cache-side tracking.
#[derive(Debug, Clone, Default)]
struct CacheTrack {
    last_two: [Option<MsgType>; 2],
    home: Option<NodeId>,
}

/// The directed migratory predictor for one agent.
#[derive(Debug, Clone)]
pub struct MigratoryPredictor {
    role: Role,
    dir: HashMap<BlockAddr, DirTrack>,
    cache: HashMap<BlockAddr, CacheTrack>,
}

impl MigratoryPredictor {
    /// Creates a predictor for an agent of the given role.
    pub fn new(role: Role) -> Self {
        MigratoryPredictor {
            role,
            dir: HashMap::new(),
            cache: HashMap::new(),
        }
    }
}

impl MessagePredictor for MigratoryPredictor {
    fn name(&self) -> &'static str {
        "migratory"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        match self.role {
            Role::Cache => {
                let t = self.cache.get(&block)?;
                let home = t.home?;
                match t.last_two {
                    // get_ro then upgrade: we are mid-migration; the next
                    // migrator's read will invalidate us.
                    [Some(MsgType::GetRoResponse), Some(MsgType::UpgradeResponse)] => {
                        Some(PredTuple::new(home, MsgType::InvalRwRequest))
                    }
                    // Just filled for reading inside a critical section:
                    // the write upgrade comes next.
                    [_, Some(MsgType::GetRoResponse)] => {
                        Some(PredTuple::new(home, MsgType::UpgradeResponse))
                    }
                    // Just invalidated: the block will migrate back.
                    [_, Some(MsgType::InvalRwRequest)] => {
                        Some(PredTuple::new(home, MsgType::GetRoResponse))
                    }
                    _ => None,
                }
            }
            Role::Directory => {
                let t = self.dir.get(&block)?;
                match t.last? {
                    // A migrator has asked to read: the old owner's
                    // writeback arrives next.
                    MsgType::GetRoRequest => {
                        t.owner.map(|p| PredTuple::new(p, MsgType::InvalRwResponse))
                    }
                    // Writeback received: the migrator upgrades.
                    MsgType::InvalRwResponse => {
                        t.reader.map(|q| PredTuple::new(q, MsgType::UpgradeRequest))
                    }
                    // Upgrade done: pairwise migration predicts the block
                    // migrates back to the previous owner.
                    MsgType::UpgradeRequest => t
                        .prev_owner
                        .map(|p| PredTuple::new(p, MsgType::GetRoRequest)),
                    _ => None,
                }
            }
        }
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        match self.role {
            Role::Cache => {
                let t = self.cache.entry(block).or_default();
                t.home = Some(tuple.sender);
                t.last_two = [t.last_two[1], Some(tuple.mtype)];
            }
            Role::Directory => {
                let t = self.dir.entry(block).or_default();
                match tuple.mtype {
                    MsgType::GetRoRequest => t.reader = Some(tuple.sender),
                    MsgType::UpgradeRequest | MsgType::GetRwRequest => {
                        // Keep the previous owner through the writeback gap
                        // (owner was cleared by the inval_rw_response).
                        if t.owner.is_some() {
                            t.prev_owner = t.owner;
                        }
                        t.owner = Some(tuple.sender);
                    }
                    MsgType::InvalRwResponse | MsgType::DowngradeResponse => {
                        // The owner gave the block up.
                        t.prev_owner = t.owner.take().or(t.prev_owner);
                    }
                    _ => {}
                }
                t.last = Some(tuple.mtype);
            }
        }
    }

    /// Per tracked block: the directory side holds three optional node
    /// ids (12 + 1 bits each) plus an optional message type (4 + 1); the
    /// cache side holds two optional types and an optional home node.
    fn storage_bits(&self) -> u64 {
        self.dir.len() as u64 * (3 * 13 + 5) + self.cache.len() as u64 * (2 * 5 + 13)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn cache_side_tracks_the_migratory_loop() {
        let mut p = MigratoryPredictor::new(Role::Cache);
        let b = BlockAddr::new(1);
        p.observe(b, PredTuple::new(home(), MsgType::GetRoResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home(), MsgType::UpgradeResponse))
        );
        p.observe(b, PredTuple::new(home(), MsgType::UpgradeResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home(), MsgType::InvalRwRequest))
        );
        p.observe(b, PredTuple::new(home(), MsgType::InvalRwRequest));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home(), MsgType::GetRoResponse))
        );
    }

    #[test]
    fn directory_side_predicts_writeback_then_upgrade() {
        let mut p = MigratoryPredictor::new(Role::Directory);
        let b = BlockAddr::new(1);
        let (p1, p2) = (NodeId::new(1), NodeId::new(2));
        // P1 owns the block (observed upgrade).
        p.observe(b, PredTuple::new(p1, MsgType::GetRoRequest));
        p.observe(b, PredTuple::new(p1, MsgType::UpgradeRequest));
        // P2 asks to read: predict P1's writeback.
        p.observe(b, PredTuple::new(p2, MsgType::GetRoRequest));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(p1, MsgType::InvalRwResponse))
        );
        p.observe(b, PredTuple::new(p1, MsgType::InvalRwResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(p2, MsgType::UpgradeRequest))
        );
        // After P2's upgrade, pairwise migration predicts P1 reads next.
        p.observe(b, PredTuple::new(p2, MsgType::UpgradeRequest));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(p1, MsgType::GetRoRequest))
        );
    }

    #[test]
    fn silent_outside_the_pattern() {
        let p = MigratoryPredictor::new(Role::Cache);
        assert_eq!(p.predict(BlockAddr::new(5)), None);
        let mut p = MigratoryPredictor::new(Role::Directory);
        let b = BlockAddr::new(5);
        p.observe(b, PredTuple::new(NodeId::new(1), MsgType::InvalRoResponse));
        assert_eq!(p.predict(b), None);
    }
}
