//! Directed predictors — the §7 comparison points.
//!
//! Existing protocols embed predictors *directed* at one sharing pattern
//! known a priori: migratory detection (Cox & Fowler; Stenström et al.),
//! dynamic self-invalidation (Lebeck & Wood), and the SGI Origin's
//! read-modify-write prediction. This module reimplements each as a
//! [`MessagePredictor`](crate::MessagePredictor) over the same incoming
//! message streams, so they can be scored head-to-head with Cosmos:
//!
//! * [`MigratoryPredictor`] — fires on Figure 8(b)'s migratory signature;
//! * [`DsiPredictor`] — fires on Figure 8(a)'s producer/consumer
//!   self-invalidation signatures (cache side only, as the technique is);
//! * [`RmwPredictor`] — predicts an upgrade after every read miss;
//! * [`LastTuple`] — predicts a repeat of the last tuple (a floor);
//! * [`MostCommon`] — predicts each block's modal tuple (a static ceiling
//!   for history-less predictors);
//! * [`Composition`] — the directed predictors stacked in priority order,
//!   the "composition of directed optimizations" §7 argues is complex to
//!   build into a real protocol (here it is three lines — but it still
//!   cannot track patterns it was not directed at).

mod composition;
mod dsi;
mod last_tuple;
mod migratory;
mod most_common;
mod rmw;

pub use composition::Composition;
pub use dsi::DsiPredictor;
pub use last_tuple::LastTuple;
pub use migratory::MigratoryPredictor;
pub use most_common::MostCommon;
pub use rmw::RmwPredictor;
