//! Directed dynamic-self-invalidation prediction (Lebeck & Wood '95 —
//! Figure 8(a)).
//!
//! Dynamic self-invalidation watches for blocks that are repeatedly filled
//! into a cache and then invalidated by a remote write or read — the
//! producer-consumer churn of Figure 4(a) — and replaces them early. As a
//! message predictor this is the cache-side rule set: after a fill,
//! predict the matching invalidation; after an invalidation, predict the
//! refill. It is cache-side only, like the technique itself, so directory
//! messages get no prediction.

use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;

/// The directed self-invalidation predictor for one agent.
#[derive(Debug, Clone)]
pub struct DsiPredictor {
    role: Role,
    last: HashMap<BlockAddr, (NodeId, MsgType)>,
}

impl DsiPredictor {
    /// Creates a predictor for an agent of the given role.
    pub fn new(role: Role) -> Self {
        DsiPredictor {
            role,
            last: HashMap::new(),
        }
    }
}

impl MessagePredictor for DsiPredictor {
    fn name(&self) -> &'static str {
        "self-invalidation"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        if self.role != Role::Cache {
            return None;
        }
        let &(home, last) = self.last.get(&block)?;
        let next = match last {
            // Producer loop (Figure 8a): exclusive fill, then the
            // consumer's read invalidates us (half-migratory).
            MsgType::GetRwResponse => MsgType::InvalRwRequest,
            MsgType::InvalRwRequest => MsgType::GetRwResponse,
            // Consumer loop: shared fill, then the producer's write
            // invalidates us.
            MsgType::GetRoResponse => MsgType::InvalRoRequest,
            MsgType::InvalRoRequest => MsgType::GetRoResponse,
            _ => return None,
        };
        Some(PredTuple::new(home, next))
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        if self.role == Role::Cache {
            self.last.insert(block, (tuple.sender, tuple.mtype));
        }
    }

    /// Per tracked block: one 16-bit `<sender, type>` tuple.
    fn storage_bits(&self) -> u64 {
        self.last.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_loop() {
        let mut p = DsiPredictor::new(Role::Cache);
        let b = BlockAddr::new(1);
        let home = NodeId::new(0);
        p.observe(b, PredTuple::new(home, MsgType::GetRwResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::InvalRwRequest))
        );
        p.observe(b, PredTuple::new(home, MsgType::InvalRwRequest));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::GetRwResponse))
        );
    }

    #[test]
    fn consumer_loop() {
        let mut p = DsiPredictor::new(Role::Cache);
        let b = BlockAddr::new(1);
        let home = NodeId::new(3);
        p.observe(b, PredTuple::new(home, MsgType::GetRoResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::InvalRoRequest))
        );
    }

    #[test]
    fn directory_side_is_silent() {
        let mut p = DsiPredictor::new(Role::Directory);
        let b = BlockAddr::new(1);
        p.observe(b, PredTuple::new(NodeId::new(1), MsgType::GetRwRequest));
        assert_eq!(p.predict(b), None);
    }

    #[test]
    fn silent_after_non_loop_messages() {
        let mut p = DsiPredictor::new(Role::Cache);
        let b = BlockAddr::new(1);
        p.observe(b, PredTuple::new(NodeId::new(0), MsgType::UpgradeResponse));
        assert_eq!(p.predict(b), None);
    }
}
