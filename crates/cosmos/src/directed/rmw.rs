//! Directed read-modify-write prediction (the SGI Origin protocol's
//! optimisation, paper §1).
//!
//! The Origin predicts that a processor reading a block will shortly write
//! it, and can answer a shared request with an exclusive grant. As a
//! message predictor: after a `get_ro_request` from `p`, the directory
//! predicts an `upgrade_request` from the same `p`; after a
//! `get_ro_response`, a cache predicts the matching `upgrade_response`.

use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::HashMap;

/// The directed read-modify-write predictor for one agent.
#[derive(Debug, Clone)]
pub struct RmwPredictor {
    role: Role,
    last: HashMap<BlockAddr, (NodeId, MsgType)>,
}

impl RmwPredictor {
    /// Creates a predictor for an agent of the given role.
    pub fn new(role: Role) -> Self {
        RmwPredictor {
            role,
            last: HashMap::new(),
        }
    }
}

impl MessagePredictor for RmwPredictor {
    fn name(&self) -> &'static str {
        "read-modify-write"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let &(sender, last) = self.last.get(&block)?;
        match (self.role, last) {
            (Role::Directory, MsgType::GetRoRequest) => {
                Some(PredTuple::new(sender, MsgType::UpgradeRequest))
            }
            (Role::Cache, MsgType::GetRoResponse) => {
                Some(PredTuple::new(sender, MsgType::UpgradeResponse))
            }
            _ => None,
        }
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.last.insert(block, (tuple.sender, tuple.mtype));
    }

    /// Per tracked block: one 16-bit `<sender, type>` tuple.
    fn storage_bits(&self) -> u64 {
        self.last.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_predicts_upgrade_after_read() {
        let mut p = RmwPredictor::new(Role::Directory);
        let b = BlockAddr::new(1);
        let reader = NodeId::new(4);
        p.observe(b, PredTuple::new(reader, MsgType::GetRoRequest));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(reader, MsgType::UpgradeRequest))
        );
        // After anything else it goes quiet.
        p.observe(b, PredTuple::new(reader, MsgType::UpgradeRequest));
        assert_eq!(p.predict(b), None);
    }

    #[test]
    fn cache_predicts_upgrade_response_after_fill() {
        let mut p = RmwPredictor::new(Role::Cache);
        let b = BlockAddr::new(1);
        let home = NodeId::new(0);
        p.observe(b, PredTuple::new(home, MsgType::GetRoResponse));
        assert_eq!(
            p.predict(b),
            Some(PredTuple::new(home, MsgType::UpgradeResponse))
        );
    }

    #[test]
    fn empty_history_gives_no_prediction() {
        let p = RmwPredictor::new(Role::Directory);
        assert_eq!(p.predict(BlockAddr::new(1)), None);
    }
}
