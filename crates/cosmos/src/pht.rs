//! The Pattern History Table: the second predictor level.
//!
//! One PHT exists per MHR (i.e. per cache block, paper §3.2). It maps a
//! history of `<sender, type>` tuples to a predicted next tuple. Unlike
//! PAp's two-bit counters, a Cosmos PHT entry "simply consists of a
//! prediction" — optionally guarded by a saturating-counter noise filter
//! (§3.6): the prediction is replaced only after `max_count + 1`
//! consecutive mispredictions for the same history.
//!
//! Since PR 3 the table is keyed by the **packed history word** (see
//! [`crate::packed`]) through the allocation-free [`FastMap`]: a probe
//! hashes one `u64` instead of a heap-allocated `Vec<PredTuple>`, and
//! updates take a single `entry` probe instead of a `get_mut`-then-`insert`
//! pair.

use crate::fasthash::FastMap;
use crate::tuple::PredTuple;
use std::collections::hash_map::Entry;

/// A PHT entry: the prediction, plus the filter's miss counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhtEntry {
    /// The predicted next tuple for this history.
    pub prediction: PredTuple,
    /// Consecutive mispredictions observed (saturates at the filter's
    /// maximum count).
    pub misses: u8,
}

/// A per-block pattern history table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pht {
    entries: FastMap<u64, PhtEntry>,
}

impl Pht {
    /// Creates an empty table.
    pub fn new() -> Self {
        Pht::default()
    }

    /// The prediction for a packed history, if one has been learned.
    #[inline]
    pub fn predict(&self, key: u64) -> Option<PredTuple> {
        self.entries.get(&key).map(|e| e.prediction)
    }

    /// Updates the entry for `key` with the actually-observed tuple,
    /// applying the noise filter with the given maximum count
    /// (`filter_max = 0` replaces the prediction on the first miss — the
    /// unfiltered configuration of Table 6's column 0).
    #[inline]
    pub fn update(&mut self, key: u64, observed: PredTuple, filter_max: u8) {
        match self.entries.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(PhtEntry {
                    prediction: observed,
                    misses: 0,
                });
            }
            Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                if entry.prediction == observed {
                    entry.misses = 0;
                } else if entry.misses < filter_max {
                    entry.misses += 1;
                } else {
                    *entry = PhtEntry {
                        prediction: observed,
                        misses: 0,
                    };
                }
            }
        }
    }

    /// Installs an entry verbatim (the restore half of
    /// [`crate::snapshot`]): no filter logic applies.
    pub fn restore_entry(&mut self, key: u64, prediction: PredTuple, misses: u8) {
        self.entries.insert(key, PhtEntry { prediction, misses });
    }

    /// Number of learned patterns (Table 7's per-block PHT entry count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no patterns have been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buckets the table has reserved (capacity, not occupancy) — feeds
    /// the `cosmos.core.fastmap_capacity_bytes` gauge.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Iterates `(packed history, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PhtEntry)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack_key;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn key1() -> u64 {
        pack_key(&[t(1, MsgType::GetRoRequest)])
    }

    #[test]
    fn learns_then_predicts() {
        let mut pht = Pht::new();
        assert_eq!(pht.predict(key1()), None);
        pht.update(key1(), t(2, MsgType::InvalRoResponse), 0);
        assert_eq!(pht.predict(key1()), Some(t(2, MsgType::InvalRoResponse)));
        assert_eq!(pht.len(), 1);
    }

    #[test]
    fn unfiltered_update_replaces_immediately() {
        let mut pht = Pht::new();
        pht.update(key1(), t(2, MsgType::InvalRoResponse), 0);
        pht.update(key1(), t(3, MsgType::UpgradeRequest), 0);
        assert_eq!(pht.predict(key1()), Some(t(3, MsgType::UpgradeRequest)));
    }

    #[test]
    fn single_bit_filter_needs_two_consecutive_misses() {
        // The paper's single-bit counter (§3.6): the prediction changes
        // only after two consecutive mispredictions.
        let mut pht = Pht::new();
        let good = t(2, MsgType::InvalRoResponse);
        let noise = t(3, MsgType::UpgradeRequest);
        pht.update(key1(), good, 1);
        pht.update(key1(), noise, 1); // first miss: filtered
        assert_eq!(pht.predict(key1()), Some(good));
        pht.update(key1(), good, 1); // correct again: counter resets
        pht.update(key1(), noise, 1); // miss 1
        assert_eq!(pht.predict(key1()), Some(good));
        pht.update(key1(), noise, 1); // miss 2: replaced
        assert_eq!(pht.predict(key1()), Some(noise));
    }

    #[test]
    fn max_count_two_needs_three_misses() {
        let mut pht = Pht::new();
        let good = t(2, MsgType::InvalRoResponse);
        let noise = t(3, MsgType::UpgradeRequest);
        pht.update(key1(), good, 2);
        pht.update(key1(), noise, 2);
        pht.update(key1(), noise, 2);
        assert_eq!(pht.predict(key1()), Some(good), "two misses filtered");
        pht.update(key1(), noise, 2);
        assert_eq!(pht.predict(key1()), Some(noise), "third miss replaces");
    }

    #[test]
    fn correct_observation_resets_the_counter() {
        let mut pht = Pht::new();
        let good = t(2, MsgType::InvalRoResponse);
        let noise = t(3, MsgType::UpgradeRequest);
        pht.update(key1(), good, 1);
        pht.update(key1(), noise, 1);
        pht.update(key1(), good, 1);
        // Counter is back to zero; a single miss must not replace.
        pht.update(key1(), noise, 1);
        assert_eq!(pht.predict(key1()), Some(good));
    }

    #[test]
    fn distinct_histories_are_independent() {
        let mut pht = Pht::new();
        let key_a = pack_key(&[t(1, MsgType::GetRoRequest), t(2, MsgType::GetRoRequest)]);
        let key_b = pack_key(&[t(2, MsgType::GetRoRequest), t(1, MsgType::GetRoRequest)]);
        pht.update(key_a, t(3, MsgType::UpgradeRequest), 0);
        pht.update(key_b, t(4, MsgType::GetRwRequest), 0);
        assert_eq!(pht.predict(key_a), Some(t(3, MsgType::UpgradeRequest)));
        assert_eq!(pht.predict(key_b), Some(t(4, MsgType::GetRwRequest)));
        assert_eq!(pht.len(), 2);
        assert_eq!(pht.iter().count(), 2);
    }
}
