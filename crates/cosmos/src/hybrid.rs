//! A tournament hybrid of two Cosmos depths.
//!
//! Table 5 shows no single depth wins everywhere: depth 1 adapts fastest
//! (barnes prefers it), depth 3 resolves rotations (dsmc needs it). Branch
//! prediction's classic answer is a *tournament*: run both, and let a
//! per-block chooser counter track which component has been right more
//! often recently. This is the same construction over coherence messages —
//! the kind of follow-on design the paper's §8 invites.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::{CoreStats, MessagePredictor};
use stache::BlockAddr;

/// Chooser saturation (2-bit counter: 0–1 favour the shallow component,
/// 2–3 the deep one).
const CHOOSER_MAX: u8 = 3;

/// A two-component tournament predictor.
#[derive(Debug, Clone)]
pub struct HybridCosmos {
    shallow: CosmosPredictor,
    deep: CosmosPredictor,
    /// Per-block chooser counters.
    choosers: FastMap<BlockAddr, u8>,
    /// Times the shallow component supplied the answer.
    pub shallow_used: u64,
    /// Times the deep component supplied the answer.
    pub deep_used: u64,
}

impl HybridCosmos {
    /// Creates a tournament between `shallow_depth` and `deep_depth`
    /// Cosmos components (both filterless; the chooser supplies the
    /// hysteresis a filter would).
    ///
    /// # Panics
    ///
    /// Panics if the depths are equal or zero.
    pub fn new(shallow_depth: usize, deep_depth: usize) -> Self {
        assert!(shallow_depth < deep_depth, "components must differ");
        HybridCosmos {
            shallow: CosmosPredictor::new(shallow_depth, 0),
            deep: CosmosPredictor::new(deep_depth, 0),
            choosers: FastMap::default(),
            shallow_used: 0,
            deep_used: 0,
        }
    }

    fn chooser(&self, block: BlockAddr) -> u8 {
        // Start leaning shallow: it warms up first.
        self.choosers.get(&block).copied().unwrap_or(1)
    }
}

impl MessagePredictor for HybridCosmos {
    fn name(&self) -> &'static str {
        "cosmos-hybrid"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let s = self.shallow.predict(block);
        let d = self.deep.predict(block);
        match (s, d) {
            (Some(s), Some(d)) => Some(if self.chooser(block) >= 2 { d } else { s }),
            // Whoever has an opinion, speaks.
            (Some(s), None) => Some(s),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        // Score the components before they learn from the observation.
        let s = self.shallow.predict(block);
        let d = self.deep.predict(block);
        let s_hit = s == Some(tuple);
        let d_hit = d == Some(tuple);
        if s_hit != d_hit {
            let c = self.choosers.entry(block).or_insert(1);
            if d_hit {
                *c = (*c + 1).min(CHOOSER_MAX);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        match (s.is_some(), d.is_some()) {
            (true, true) => {
                if self.chooser(block) >= 2 {
                    self.deep_used += 1;
                } else {
                    self.shallow_used += 1;
                }
            }
            (true, false) => self.shallow_used += 1,
            (false, true) => self.deep_used += 1,
            (false, false) => {}
        }
        self.shallow.observe(block, tuple);
        self.deep.observe(block, tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        self.shallow.memory() + self.deep.memory()
    }

    fn core_stats(&self) -> CoreStats {
        let mut stats = self.shallow.core_stats();
        stats.merge(self.deep.core_stats());
        stats
    }

    /// Both components' Table 7 bits plus one 2-bit chooser per block.
    fn storage_bits(&self) -> u64 {
        self.shallow.storage_bits() + self.deep.storage_bits() + 2 * self.choosers.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn warms_up_on_the_shallow_component() {
        let mut p = HybridCosmos::new(1, 3);
        let cycle = [
            t(0, MsgType::GetRoResponse),
            t(0, MsgType::UpgradeResponse),
            t(0, MsgType::InvalRwRequest),
        ];
        // After two periods the depth-1 component already predicts; the
        // depth-3 one is still cold. The hybrid must answer anyway.
        for tuple in cycle.iter().cycle().take(6) {
            p.observe(b(1), *tuple);
        }
        assert_eq!(p.predict(b(1)), Some(cycle[0]));
        assert!(p.shallow_used > 0);
    }

    #[test]
    fn chooser_migrates_to_the_deep_component() {
        // An alternating successor: A -> X, A -> Y, A -> X, ... with a
        // disambiguating prefix. Depth 1 flip-flops (always wrong); depth 2
        // learns it; the chooser must swing deep.
        let mut p = HybridCosmos::new(1, 2);
        let a = t(1, MsgType::GetRoRequest);
        let x = t(2, MsgType::GetRwRequest);
        let y = t(3, MsgType::UpgradeRequest);
        for _ in 0..12 {
            p.observe(b(1), x);
            p.observe(b(1), a);
            p.observe(b(1), y);
            p.observe(b(1), a);
        }
        // After [y, a] the successor is x; depth 2 knows, depth 1 cannot.
        assert_eq!(p.predict(b(1)), Some(x));
        assert!(p.deep_used > 0);
    }

    #[test]
    fn hybrid_tracks_the_better_component_on_both_streams() {
        // Stream A is depth-1-friendly, stream B needs depth 2; one hybrid
        // instance handles both blocks well simultaneously.
        let mut p = HybridCosmos::new(1, 2);
        let simple = [t(0, MsgType::GetRwResponse), t(0, MsgType::InvalRwRequest)];
        let a = t(1, MsgType::GetRoRequest);
        let x = t(2, MsgType::GetRwRequest);
        let y = t(3, MsgType::UpgradeRequest);
        for round in 0..14 {
            p.observe(b(1), simple[round % 2]);
            p.observe(b(2), if round % 2 == 0 { x } else { y });
            p.observe(b(2), a);
        }
        let mut hits = 0;
        let mut total = 0;
        for round in 14..20 {
            let expected_simple = simple[round % 2];
            total += 1;
            hits += u32::from(p.predict(b(1)) == Some(expected_simple));
            p.observe(b(1), expected_simple);
            let expected_alt = if round % 2 == 0 { x } else { y };
            total += 1;
            hits += u32::from(p.predict(b(2)) == Some(expected_alt));
            p.observe(b(2), expected_alt);
            p.observe(b(2), a);
        }
        assert!(hits * 10 >= total * 8, "hybrid hit {hits}/{total}");
    }

    #[test]
    fn memory_is_the_sum_of_components() {
        let mut p = HybridCosmos::new(1, 2);
        p.observe(b(1), t(0, MsgType::GetRoResponse));
        p.observe(b(1), t(0, MsgType::UpgradeResponse));
        p.observe(b(1), t(0, MsgType::InvalRwRequest));
        let m = p.memory();
        assert_eq!(m.mhr_entries, 2, "one MHR per component");
        assert!(m.pht_entries >= 2);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn equal_depths_rejected() {
        let _ = HybridCosmos::new(2, 2);
    }
}
