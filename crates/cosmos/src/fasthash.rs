//! A hand-rolled FxHash-style hasher for the predictor's hot tables.
//!
//! The predictor core keys every table by small fixed-width integers — a
//! packed history (`u64`), a [`BlockAddr`](stache::BlockAddr) (one `u64`),
//! or a pair of the two. `std`'s default SipHash is DoS-resistant but costs
//! tens of cycles per probe, which dominates the eval loop; these keys are
//! program-internal (never attacker-controlled), so the multiply-xor hash
//! used by rustc's own tables (`FxHash`) is the right trade. The repo policy
//! is zero external dependencies, so the hasher is written out here: per
//! 8-byte word, `hash = (hash.rotate_left(5) ^ word) * K` with Fx's odd
//! 64-bit constant.
//!
//! Unlike `RandomState`, [`FastHash`] is deterministic across processes —
//! table *iteration order* is therefore reproducible, which the eval
//! harness never relies on but which makes perf runs comparable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: a 64-bit constant derived from the golden ratio,
/// chosen (by the Firefox/rustc lineage of this hash) for good bit
/// dispersion under wrapping multiplication.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// The deterministic `BuildHasher` for [`FastMap`]/[`FastSet`].
pub type FastHash = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — the predictor core's table type.
pub type FastMap<K, V> = HashMap<K, V, FastHash>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FastSet<T> = HashSet<T, FastHash>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(|h| h.write_u64(0xdead_beef));
        let b = hash_of(|h| h.write_u64(0xdead_beef));
        assert_eq!(a, b);
        assert_eq!(
            FastHash::default().hash_one(42u64),
            FastHash::default().hash_one(42u64)
        );
    }

    #[test]
    fn distinct_keys_disperse() {
        // Consecutive u64 keys must not collide in the low bits (the part
        // a power-of-two table actually uses).
        let mut low_bits = FastSet::default();
        for k in 0u64..1024 {
            low_bits.insert(hash_of(|h| h.write_u64(k)) & 0xFFFF);
        }
        assert!(low_bits.len() > 1000, "only {} distinct", low_bits.len());
    }

    #[test]
    fn byte_writes_match_word_semantics_for_tail() {
        // A 10-byte slice hashes as one full word plus a zero-padded tail.
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let a = hash_of(|h| h.write(&bytes));
        let b = hash_of(|h| {
            h.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            h.write_u64(u64::from_le_bytes([9, 10, 0, 0, 0, 0, 0, 0]));
        });
        assert_eq!(a, b);
    }

    #[test]
    fn fastmap_works_as_a_map() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }
}
