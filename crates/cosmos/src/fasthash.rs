//! A hand-rolled FxHash-style hasher for the predictor's hot tables.
//!
//! The predictor core keys every table by small fixed-width integers — a
//! packed history (`u64`), a [`BlockAddr`](stache::BlockAddr) (one `u64`),
//! or a pair of the two. `std`'s default SipHash is DoS-resistant but costs
//! tens of cycles per probe, which dominates the eval loop; these keys are
//! program-internal (never attacker-controlled), so the multiply-xor hash
//! used by rustc's own tables (`FxHash`) is the right trade. The repo policy
//! is zero external dependencies, so the hasher is written out here: per
//! 8-byte word, `hash = (hash.rotate_left(5) ^ word) * K` with Fx's odd
//! 64-bit constant.
//!
//! Unlike `RandomState`, [`FastHash`] is deterministic across processes —
//! table *iteration order* is therefore reproducible, which the eval
//! harness never relies on but which makes perf runs comparable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: a 64-bit constant derived from the golden ratio,
/// chosen (by the Firefox/rustc lineage of this hash) for good bit
/// dispersion under wrapping multiplication.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// The deterministic `BuildHasher` for [`FastMap`]/[`FastSet`].
pub type FastHash = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — the predictor core's table type.
pub type FastMap<K, V> = HashMap<K, V, FastHash>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FastSet<T> = HashSet<T, FastHash>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(|h| h.write_u64(0xdead_beef));
        let b = hash_of(|h| h.write_u64(0xdead_beef));
        assert_eq!(a, b);
        assert_eq!(
            FastHash::default().hash_one(42u64),
            FastHash::default().hash_one(42u64)
        );
    }

    #[test]
    fn distinct_keys_disperse() {
        // Consecutive u64 keys must not collide in the low bits (the part
        // a power-of-two table actually uses).
        let mut low_bits = FastSet::default();
        for k in 0u64..1024 {
            low_bits.insert(hash_of(|h| h.write_u64(k)) & 0xFFFF);
        }
        assert!(low_bits.len() > 1000, "only {} distinct", low_bits.len());
    }

    #[test]
    fn byte_writes_match_word_semantics_for_tail() {
        // A 10-byte slice hashes as one full word plus a zero-padded tail.
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let a = hash_of(|h| h.write(&bytes));
        let b = hash_of(|h| {
            h.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            h.write_u64(u64::from_le_bytes([9, 10, 0, 0, 0, 0, 0, 0]));
        });
        assert_eq!(a, b);
    }

    #[test]
    fn fastmap_works_as_a_map() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    /// Keys whose hashes agree in the low `bits` bits — they land in the
    /// same bucket region of any table with at most `2^bits` buckets, so
    /// every insert past the first probes through a chain of collisions.
    fn colliding_keys(bits: u32, want: usize) -> Vec<u64> {
        let target = hash_of(|h| h.write_u64(0)) & ((1 << bits) - 1);
        (0u64..)
            .filter(|&k| hash_of(|h| h.write_u64(k)) & ((1 << bits) - 1) == target)
            .take(want)
            .collect()
    }

    #[test]
    fn forced_collisions_still_resolve_exactly() {
        // 32 keys in one 128-bucket region; the map must still treat
        // them as distinct and keep every binding addressable.
        let keys = colliding_keys(7, 32);
        assert_eq!(keys.len(), 32);
        let mut m: FastMap<u64, u64> = FastMap::default();
        for &k in &keys {
            m.insert(k, !k);
        }
        assert_eq!(m.len(), keys.len(), "collisions must not overwrite");
        for &k in &keys {
            assert_eq!(m.get(&k), Some(&!k), "key {k:#x} lost in the chain");
        }
        // A 33rd key from the same region but absent must miss cleanly
        // (probing walks the whole chain without a false hit).
        let absent = colliding_keys(7, 33)[32];
        assert_eq!(m.get(&absent), None);
    }

    #[test]
    fn deletions_inside_a_collision_chain_leave_no_shadows() {
        // Removing the middle of a collision chain exercises the table's
        // tombstone/backshift handling: later keys in the same chain must
        // stay reachable, and the dead key must not resurrect.
        let keys = colliding_keys(7, 16);
        let mut m: FastMap<u64, u64> = FastMap::default();
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.remove(&k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(m.get(&k), None, "removed key {k:#x} resurrected");
            } else {
                assert_eq!(m.get(&k), Some(&(k + 1)), "survivor {k:#x} lost");
            }
        }
        // Reinserting over the holes restores the full chain.
        for &k in keys.iter().step_by(2) {
            m.insert(k, k + 2);
        }
        assert_eq!(m.len(), keys.len());
        assert_eq!(m.get(&keys[0]), Some(&(keys[0] + 2)));
    }

    #[test]
    fn growth_preserves_every_binding() {
        let mut m: FastMap<u64, u64> = FastMap::with_capacity_and_hasher(4, FastHash::default());
        let mut capacities = vec![m.capacity()];
        for k in 0u64..4096 {
            m.insert(k, k * 3);
            if m.capacity() != *capacities.last().expect("nonempty") {
                capacities.push(m.capacity());
            }
        }
        assert!(
            capacities.len() > 2,
            "4096 inserts must resize at least twice"
        );
        assert!(
            capacities.windows(2).all(|w| w[0] < w[1]),
            "capacity must grow monotonically: {capacities:?}"
        );
        assert!(m.capacity() >= m.len());
        for k in 0u64..4096 {
            assert_eq!(m.get(&k), Some(&(k * 3)), "rehash dropped key {k}");
        }
    }

    #[test]
    fn churn_does_not_leak_capacity_without_bound() {
        // Insert/remove cycles at a constant live size: capacity must
        // settle (tombstones get reclaimed on rehash, not accumulated).
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0u64..64 {
            m.insert(k, k);
        }
        let settled = {
            for round in 0u64..256 {
                let dead = round * 64..(round + 1) * 64;
                let live = (round + 1) * 64..(round + 2) * 64;
                for k in dead {
                    m.remove(&k);
                }
                for k in live {
                    m.insert(k, k);
                }
            }
            m.capacity()
        };
        assert_eq!(m.len(), 64);
        assert!(
            settled <= 1024,
            "64 live keys should never hold {settled} buckets"
        );
    }
}
