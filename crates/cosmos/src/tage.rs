//! TAGE-MP: a TAGE-style predictor for coherence messages.
//!
//! Branch prediction moved past two-level PAp-style tables (the lineage
//! Cosmos descends from) with Seznec's TAGE: a base predictor backed by a
//! set of *tagged* tables indexed by geometrically growing history
//! lengths, with per-entry confidence and usefulness counters and
//! allocation-on-mispredict. This module ports that design onto the
//! `<sender, message-type>` prediction problem so it can race Cosmos in
//! the `repro tournament` harness:
//!
//! * the **base table** is a direct-mapped bimodal table indexed by a hash
//!   of the block address — a per-block "most recent stable tuple" with
//!   2-bit hysteresis;
//! * each **tagged table** `i` is indexed by a hash of the block address
//!   and the newest `L_i` tuples of that block's packed history (the
//!   [`crate::packed`] shift-register word from PR 3, masked to `L_i`
//!   lanes), where the `L_i` grow geometrically (1, 2, 4, …) up to
//!   [`packed::MAX_DEPTH`]; entries carry a partial tag, a 3-bit
//!   confidence counter, and a 2-bit usefulness counter;
//! * the **provider** is the matching table with the longest history; the
//!   next-longest match (or the base table) is the **altpred**, used when
//!   the provider entry is still weak (confidence 0) — the `use_alt_on_na`
//!   rule, simplified to a static policy;
//! * on a mispredict, an entry is **allocated** in one table with a longer
//!   history than the provider (the first such table with a dead entry,
//!   `u == 0`); if every candidate is alive, their usefulness counters are
//!   decayed instead.
//!
//! Unlike Cosmos — whose per-block PHTs grow without bound — TAGE-MP's
//! tables are *fixed* at construction, so its storage cost is a property
//! of the geometry, not the workload. [`TageConfig::table_bits`] accounts
//! those bits exactly; [`TagePredictor::storage_bits`] adds the per-block
//! history registers actually allocated, mirroring how Table 7 counts
//! Cosmos MHR entries.

use crate::fasthash::{FastHash, FastMap};
use crate::memory::MemoryFootprint;
use crate::packed::{self, PackedHistory};
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::{CoreStats, MessagePredictor};
use stache::BlockAddr;
use std::hash::BuildHasher;

/// Saturation of a tagged entry's 3-bit confidence counter.
const CTR_MAX: u8 = 7;
/// Saturation of a tagged entry's 2-bit usefulness counter.
const U_MAX: u8 = 3;
/// Saturation of a base entry's 2-bit hysteresis counter.
const HYST_MAX: u8 = 3;

/// Bits per base-table entry: a 16-bit packed tuple, 2 hysteresis bits,
/// and a valid bit.
pub const BASE_ENTRY_BITS: u64 = 16 + 2 + 1;
/// Bits per tagged-table entry beyond the tag: a 16-bit packed tuple, the
/// 3-bit confidence counter, the 2-bit usefulness counter, and a valid
/// bit.
pub const TAGGED_ENTRY_BITS: u64 = 16 + 3 + 2 + 1;

/// The table geometry of a TAGE-MP predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// `log2` of the base (bimodal) table's entry count.
    pub base_bits: u32,
    /// `log2` of each tagged table's entry count.
    pub tagged_bits: u32,
    /// Partial-tag width in bits (1..=16).
    pub tag_bits: u32,
    /// History length (in tuples) per tagged table, strictly increasing,
    /// each within `1..=packed::MAX_DEPTH`.
    pub hist_lens: Vec<usize>,
}

impl TageConfig {
    /// The small budget point: a 64-entry base and two 64-entry tagged
    /// tables (histories 1 and 2) — 4800 bits of table storage per agent.
    pub fn small() -> Self {
        TageConfig {
            base_bits: 6,
            tagged_bits: 6,
            tag_bits: 6,
            hist_lens: vec![1, 2],
        }
    }

    /// The mid budget point: a 256-entry base and three 128-entry tagged
    /// tables (geometric histories 1, 2, 4) — 16384 bits per agent.
    pub fn mid() -> Self {
        TageConfig {
            base_bits: 8,
            tagged_bits: 7,
            tag_bits: 8,
            hist_lens: vec![1, 2, 4],
        }
    }

    /// The large budget point: a 1024-entry base and four 512-entry tagged
    /// tables (histories 1, 2, 3, 4) — 84992 bits per agent.
    pub fn large() -> Self {
        TageConfig {
            base_bits: 10,
            tagged_bits: 9,
            tag_bits: 10,
            hist_lens: vec![1, 2, 3, 4],
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the tag is empty or wider than 16 bits, a table exponent
    /// exceeds 24 (a plainly misconfigured budget), no tagged tables are
    /// configured, or the history lengths are not strictly increasing
    /// within `1..=packed::MAX_DEPTH`.
    pub fn validate(&self) {
        assert!(
            (1..=16).contains(&self.tag_bits),
            "tag width {} outside 1..=16",
            self.tag_bits
        );
        assert!(self.base_bits <= 24, "base table exponent too large");
        assert!(self.tagged_bits <= 24, "tagged table exponent too large");
        assert!(!self.hist_lens.is_empty(), "at least one tagged table");
        for w in self.hist_lens.windows(2) {
            assert!(w[0] < w[1], "history lengths must strictly increase");
        }
        for &len in &self.hist_lens {
            // Unconditional: a zero length would mask every history key to
            // zero and silently alias all blocks (the key_mask foot-gun).
            assert!(
                (1..=packed::MAX_DEPTH).contains(&len),
                "history length {len} outside 1..={}",
                packed::MAX_DEPTH
            );
        }
    }

    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.hist_lens.len()
    }

    /// Exact fixed table storage in bits: the base table at
    /// [`BASE_ENTRY_BITS`] per entry plus every tagged table at
    /// `tag_bits +` [`TAGGED_ENTRY_BITS`] per entry.
    pub fn table_bits(&self) -> u64 {
        let base = (1u64 << self.base_bits) * BASE_ENTRY_BITS;
        let tagged = self.num_tables() as u64
            * (1u64 << self.tagged_bits)
            * (u64::from(self.tag_bits) + TAGGED_ENTRY_BITS);
        base + tagged
    }
}

/// A base-table entry: the last stable tuple with 2-bit hysteresis.
#[derive(Debug, Clone, Copy, Default)]
struct BaseEntry {
    valid: bool,
    pred: u16,
    hyst: u8,
}

/// A tagged-table entry.
#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    valid: bool,
    tag: u16,
    pred: u16,
    /// 3-bit confidence in `pred` (0 = newly allocated / weak).
    ctr: u8,
    /// 2-bit usefulness; only `u == 0` entries may be re-allocated.
    u: u8,
}

/// Where a prediction came from, for the provider/altpred logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Tagged table index (into `hist_lens`).
    Tagged(usize),
    /// The base bimodal table.
    Base,
}

/// The resolved lookup for one block: the provider, its alternate, and
/// the final prediction the predictor would emit.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    provider: Option<(Source, u16)>,
    alt: Option<(Source, u16)>,
    /// The tuple the predictor answers with, if any.
    chosen: Option<u16>,
}

/// A TAGE-MP predictor instance for one agent (one cache or directory).
#[derive(Debug, Clone)]
pub struct TagePredictor {
    config: TageConfig,
    base: Vec<BaseEntry>,
    /// One fixed table per configured history length.
    tables: Vec<Vec<TaggedEntry>>,
    /// Per-block packed history registers (always [`packed::MAX_DEPTH`]
    /// lanes deep; each table masks down to its own length).
    histories: FastMap<BlockAddr, PackedHistory>,
    probes: std::cell::Cell<u64>,
}

impl TagePredictor {
    /// Builds a predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`TageConfig::validate`]).
    pub fn new(config: TageConfig) -> Self {
        config.validate();
        let base = vec![BaseEntry::default(); 1 << config.base_bits];
        let tables = (0..config.num_tables())
            .map(|_| vec![TaggedEntry::default(); 1 << config.tagged_bits])
            .collect();
        TagePredictor {
            config,
            base,
            tables,
            histories: FastMap::default(),
            probes: std::cell::Cell::new(0),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// Storage in bits: the fixed table geometry plus one 64-bit packed
    /// history register per block seen (the MHT side, counted like Cosmos
    /// counts MHR entries).
    pub fn storage_bits(&self) -> u64 {
        self.config.table_bits() + 64 * self.histories.len() as u64
    }

    /// The full 64-bit hash a table derives its index and tag from: block
    /// address, the newest `len` lanes of the history, and the table id
    /// (so equal-length tables would still decorrelate).
    #[inline]
    fn table_hash(&self, table: usize, block: BlockAddr, hist_bits: u64) -> u64 {
        let len = self.config.hist_lens[table];
        let masked = hist_bits & packed::key_mask(len);
        FastHash::default().hash_one((block.number(), masked, table as u64))
    }

    #[inline]
    fn index_of(&self, hash: u64, bits: u32) -> usize {
        (hash & ((1u64 << bits) - 1)) as usize
    }

    /// The partial tag: taken from the hash's high half so it shares no
    /// bits with the index.
    #[inline]
    fn tag_of(&self, hash: u64) -> u16 {
        ((hash >> 32) & ((1u64 << self.config.tag_bits) - 1)) as u16
    }

    #[inline]
    fn base_index(&self, block: BlockAddr) -> usize {
        let h = FastHash::default().hash_one(block.number());
        self.index_of(h, self.config.base_bits)
    }

    /// Resolves provider, altpred, and the chosen prediction for a block.
    fn lookup(&self, block: BlockAddr) -> Lookup {
        let hist = self.histories.get(&block);
        let hist_len = hist.map_or(0, PackedHistory::len);
        let hist_bits = hist.map_or(0, PackedHistory::raw_bits);
        let mut matches: Vec<(Source, u16, u8)> = Vec::with_capacity(2);
        // Longest history first.
        for i in (0..self.config.num_tables()).rev() {
            if matches.len() == 2 {
                break;
            }
            if hist_len < self.config.hist_lens[i] {
                continue;
            }
            self.probes.set(self.probes.get() + 1);
            let h = self.table_hash(i, block, hist_bits);
            let e = &self.tables[i][self.index_of(h, self.config.tagged_bits)];
            if e.valid && e.tag == self.tag_of(h) {
                matches.push((Source::Tagged(i), e.pred, e.ctr));
            }
        }
        if matches.len() < 2 {
            self.probes.set(self.probes.get() + 1);
            let b = &self.base[self.base_index(block)];
            if b.valid {
                matches.push((Source::Base, b.pred, CTR_MAX));
            }
        }
        let provider = matches.first().map(|&(s, p, _)| (s, p));
        let alt = matches.get(1).map(|&(s, p, _)| (s, p));
        let chosen = match matches.first() {
            // A weak provider (newly allocated) defers to its alternate —
            // the static `use_alt_on_na` policy.
            Some(&(_, _, 0)) => alt.or(provider).map(|(_, p)| p),
            Some(&(_, p, _)) => Some(p),
            None => None,
        };
        Lookup {
            provider,
            alt,
            chosen,
        }
    }

    /// Entries currently valid across the base and tagged tables.
    pub fn live_entries(&self) -> usize {
        let base = self.base.iter().filter(|e| e.valid).count();
        let tagged: usize = self
            .tables
            .iter()
            .map(|t| t.iter().filter(|e| e.valid).count())
            .sum();
        base + tagged
    }
}

impl MessagePredictor for TagePredictor {
    fn name(&self) -> &'static str {
        "tage-mp"
    }

    #[inline]
    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.lookup(block).chosen.and_then(PredTuple::unpack)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let observed = tuple.pack();
        let look = self.lookup(block);
        let hist_bits = self
            .histories
            .get(&block)
            .map_or(0, PackedHistory::raw_bits);
        let hist_len = self.histories.get(&block).map_or(0, PackedHistory::len);

        // 1. Provider update: reinforce a correct prediction, weaken a
        //    wrong one, and replace the stored tuple once confidence dies.
        if let Some((Source::Tagged(i), pred)) = look.provider {
            let h = self.table_hash(i, block, hist_bits);
            let idx = self.index_of(h, self.config.tagged_bits);
            let e = &mut self.tables[i][idx];
            if pred == observed {
                e.ctr = (e.ctr + 1).min(CTR_MAX);
            } else if e.ctr > 0 {
                e.ctr -= 1;
            } else {
                e.pred = observed;
            }
            // 2. Usefulness: when provider and altpred disagree, the
            //    outcome says which of them deserved to stay resident.
            if let Some((_, alt_pred)) = look.alt {
                if alt_pred != pred {
                    if pred == observed {
                        e.u = (e.u + 1).min(U_MAX);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
            }
        }

        // 3. The base table always learns (it is every block's fallback).
        {
            self.probes.set(self.probes.get() + 1);
            let idx = self.base_index(block);
            let b = &mut self.base[idx];
            if !b.valid {
                *b = BaseEntry {
                    valid: true,
                    pred: observed,
                    hyst: 0,
                };
            } else if b.pred == observed {
                b.hyst = (b.hyst + 1).min(HYST_MAX);
            } else if b.hyst > 0 {
                b.hyst -= 1;
            } else {
                b.pred = observed;
            }
        }

        // 4. Allocation on mispredict: claim a dead entry in one table
        //    with a longer history than the provider; decay the candidates
        //    if all are alive.
        if look.chosen != Some(observed) {
            let provider_table = match look.provider {
                Some((Source::Tagged(i), _)) => Some(i),
                _ => None,
            };
            let start = provider_table.map_or(0, |i| i + 1);
            let mut allocated = false;
            for i in start..self.config.num_tables() {
                if hist_len < self.config.hist_lens[i] {
                    break;
                }
                let h = self.table_hash(i, block, hist_bits);
                let idx = self.index_of(h, self.config.tagged_bits);
                let tag = self.tag_of(h);
                let e = &mut self.tables[i][idx];
                if !e.valid || e.u == 0 {
                    *e = TaggedEntry {
                        valid: true,
                        tag,
                        pred: observed,
                        ctr: 0,
                        u: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for i in start..self.config.num_tables() {
                    if hist_len < self.config.hist_lens[i] {
                        break;
                    }
                    let h = self.table_hash(i, block, hist_bits);
                    let idx = self.index_of(h, self.config.tagged_bits);
                    let e = &mut self.tables[i][idx];
                    e.u = e.u.saturating_sub(1);
                }
            }
        }

        // 5. Shift the observation into the block's history register.
        self.histories
            .entry(block)
            .or_insert_with(|| PackedHistory::new(packed::MAX_DEPTH))
            .push(observed);
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.histories.len(),
            pht_entries: self.live_entries(),
        }
    }

    fn core_stats(&self) -> CoreStats {
        let slot = std::mem::size_of::<(BlockAddr, PackedHistory)>();
        CoreStats {
            pht_probes: self.probes.get(),
            table_capacity_bytes: (self.histories.capacity() * slot) as u64
                + self.config.table_bits() / 8,
        }
    }

    fn storage_bits(&self) -> u64 {
        TagePredictor::storage_bits(self)
    }
}

/// Chooser saturation for [`CosmosTageHybrid`] (2-bit: 0–1 favour Cosmos,
/// 2–3 favour TAGE).
const CHOOSER_MAX: u8 = 3;

/// A per-agent tournament between a Cosmos predictor and a TAGE-MP
/// predictor: one 2-bit chooser counter per agent (per *node*, not per
/// block) tracks which component has been right more often recently when
/// they disagree, and arbitrates between them.
#[derive(Debug, Clone)]
pub struct CosmosTageHybrid {
    cosmos: CosmosPredictor,
    tage: TagePredictor,
    /// The agent-wide chooser counter.
    chooser: u8,
    /// Times the Cosmos component supplied the answer.
    pub cosmos_used: u64,
    /// Times the TAGE component supplied the answer.
    pub tage_used: u64,
}

impl CosmosTageHybrid {
    /// Builds the hybrid from a Cosmos depth/filter and a TAGE geometry.
    pub fn new(depth: usize, filter_max: u8, config: TageConfig) -> Self {
        CosmosTageHybrid {
            cosmos: CosmosPredictor::new(depth, filter_max),
            tage: TagePredictor::new(config),
            chooser: 1,
            cosmos_used: 0,
            tage_used: 0,
        }
    }
}

impl MessagePredictor for CosmosTageHybrid {
    fn name(&self) -> &'static str {
        "cosmos+tage"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let c = self.cosmos.predict(block);
        let t = self.tage.predict(block);
        match (c, t) {
            (Some(c), Some(t)) => Some(if self.chooser >= 2 { t } else { c }),
            (Some(c), None) => Some(c),
            (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let c = self.cosmos.predict(block);
        let t = self.tage.predict(block);
        let c_hit = c == Some(tuple);
        let t_hit = t == Some(tuple);
        if c_hit != t_hit {
            if t_hit {
                self.chooser = (self.chooser + 1).min(CHOOSER_MAX);
            } else {
                self.chooser = self.chooser.saturating_sub(1);
            }
        }
        match (c.is_some(), t.is_some()) {
            (true, true) => {
                if self.chooser >= 2 {
                    self.tage_used += 1;
                } else {
                    self.cosmos_used += 1;
                }
            }
            (true, false) => self.cosmos_used += 1,
            (false, true) => self.tage_used += 1,
            (false, false) => {}
        }
        self.cosmos.observe(block, tuple);
        self.tage.observe(block, tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        self.cosmos.memory() + self.tage.memory()
    }

    fn core_stats(&self) -> CoreStats {
        let mut s = self.cosmos.core_stats();
        s.merge(self.tage.core_stats());
        s
    }

    fn storage_bits(&self) -> u64 {
        // Components plus the chooser's own two bits.
        MessagePredictor::storage_bits(&self.cosmos) + self.tage.storage_bits() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn table_bits_match_geometry_exactly() {
        // small: 64·19 + 2·64·(6+22) = 1216 + 3584.
        assert_eq!(TageConfig::small().table_bits(), 4800);
        // mid: 256·19 + 3·128·(8+22) = 4864 + 11520.
        assert_eq!(TageConfig::mid().table_bits(), 16384);
        // large: 1024·19 + 4·512·(10+22) = 19456 + 65536.
        assert_eq!(TageConfig::large().table_bits(), 84992);
    }

    #[test]
    fn storage_bits_add_one_history_register_per_block() {
        let mut p = TagePredictor::new(TageConfig::small());
        let fixed = TageConfig::small().table_bits();
        assert_eq!(p.storage_bits(), fixed, "no blocks seen yet");
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(2), t(1, MsgType::GetRoRequest));
        p.observe(b(2), t(2, MsgType::GetRwRequest));
        assert_eq!(p.storage_bits(), fixed + 2 * 64, "two blocks tracked");
        assert_eq!(MessagePredictor::storage_bits(&p), p.storage_bits());
    }

    #[test]
    fn learns_a_simple_cycle() {
        let mut p = TagePredictor::new(TageConfig::mid());
        let cycle = [
            t(0, MsgType::GetRoResponse),
            t(0, MsgType::UpgradeResponse),
            t(0, MsgType::InvalRwRequest),
        ];
        for tuple in cycle.iter().cycle().take(30) {
            p.observe(b(1), *tuple);
        }
        let mut hits = 0;
        for tuple in cycle.iter().cycle().take(12) {
            hits += u32::from(p.predict(b(1)) == Some(*tuple));
            p.observe(b(1), *tuple);
        }
        assert!(hits >= 10, "only {hits}/12 after warmup");
    }

    #[test]
    fn long_history_tables_disambiguate_alternation() {
        // A -> X, A -> Y alternating with a period the base table and the
        // length-1 table cannot express; the longer tables must.
        let mut p = TagePredictor::new(TageConfig::mid());
        let a = t(1, MsgType::GetRoRequest);
        let x = t(2, MsgType::GetRwRequest);
        let y = t(3, MsgType::UpgradeRequest);
        for _ in 0..40 {
            p.observe(b(1), x);
            p.observe(b(1), a);
            p.observe(b(1), y);
            p.observe(b(1), a);
        }
        // After [.., y, a] the successor is x.
        let mut hits = 0;
        for _ in 0..10 {
            hits += u32::from(p.predict(b(1)) == Some(x));
            p.observe(b(1), x);
            p.observe(b(1), a);
            hits += u32::from(p.predict(b(1)) == Some(y));
            p.observe(b(1), y);
            p.observe(b(1), a);
        }
        assert!(hits >= 16, "only {hits}/20 on the alternation");
    }

    #[test]
    fn cold_predictor_offers_nothing() {
        let p = TagePredictor::new(TageConfig::small());
        assert_eq!(p.predict(b(7)), None);
        assert_eq!(p.memory(), MemoryFootprint::default());
    }

    #[test]
    fn memory_reports_histories_and_live_entries() {
        let mut p = TagePredictor::new(TageConfig::small());
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRwRequest));
        let m = p.memory();
        assert_eq!(m.mhr_entries, 1);
        assert!(m.pht_entries >= 1, "base entry at least");
        assert!(p.core_stats().pht_probes > 0);
        assert!(p.core_stats().table_capacity_bytes >= TageConfig::small().table_bits() / 8);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_lengths_rejected() {
        let _ = TagePredictor::new(TageConfig {
            base_bits: 4,
            tagged_bits: 4,
            tag_bits: 8,
            hist_lens: vec![2, 2],
        });
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_history_length_rejected() {
        let _ = TagePredictor::new(TageConfig {
            base_bits: 4,
            tagged_bits: 4,
            tag_bits: 8,
            hist_lens: vec![0, 1],
        });
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn over_deep_history_length_rejected() {
        let _ = TagePredictor::new(TageConfig {
            base_bits: 4,
            tagged_bits: 4,
            tag_bits: 8,
            hist_lens: vec![1, packed::MAX_DEPTH + 1],
        });
    }

    #[test]
    fn hybrid_arbitrates_between_components() {
        let mut p = CosmosTageHybrid::new(1, 0, TageConfig::small());
        let cycle = [t(0, MsgType::GetRwResponse), t(0, MsgType::InvalRwRequest)];
        for tuple in cycle.iter().cycle().take(20) {
            p.observe(b(1), *tuple);
        }
        let mut hits = 0;
        for tuple in cycle.iter().cycle().take(10) {
            hits += u32::from(p.predict(b(1)) == Some(*tuple));
            p.observe(b(1), *tuple);
        }
        assert!(hits >= 9, "hybrid hit {hits}/10 on an easy cycle");
        assert!(p.cosmos_used + p.tage_used > 0);
        assert!(p.storage_bits() > TageConfig::small().table_bits());
    }
}
