//! Mapping predictions to protocol actions (§4.1, Table 2, Figure 4) and
//! estimating what speculation would buy.
//!
//! The paper deliberately evaluates prediction *in isolation*; this module
//! implements the forward-looking part of §4 so the `acceleration` example
//! can demonstrate the pipeline: predict the next incoming message, choose
//! a speculative action, and account what firing it would have saved (or
//! cost) given whether the prediction proved right.

use crate::eval::Counts;
use crate::speedup::{speedup, SpeedupParams};
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::{MsgType, NodeId, Role};
use std::collections::HashMap;
use trace::TraceBundle;

/// A speculative protocol action an agent can take on the basis of a
/// prediction (§4.1's examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeculativeAction {
    /// Directory: answer the predicted reader's next (shared) request with
    /// an exclusive grant — the Origin read-modify-write optimisation.
    GrantExclusive {
        /// The processor predicted to upgrade.
        writer: NodeId,
    },
    /// Directory: push the block to a predicted reader before its request
    /// arrives (producer-consumer forwarding).
    ForwardToReader {
        /// The processor predicted to read next.
        reader: NodeId,
    },
    /// Directory: begin recalling the current owner's dirty copy early,
    /// anticipating the writeback.
    EarlyRecall {
        /// The owner predicted to respond with the block.
        owner: NodeId,
    },
    /// Cache: replace the block to the directory before the predicted
    /// invalidation arrives — dynamic self-invalidation (Figure 4a).
    SelfInvalidate,
    /// Cache: request the predicted fill before the processor misses.
    PrefetchBlock,
    /// Cache: request ownership before the processor writes.
    PrefetchOwnership,
}

/// Chooses the speculative action implied by a predicted next incoming
/// message at an agent of `role`, per Table 2's prediction-action pairs.
/// Predictions that map to no useful speculation return `None`.
pub fn map_prediction(role: Role, predicted: PredTuple) -> Option<SpeculativeAction> {
    match (role, predicted.mtype) {
        (Role::Directory, MsgType::UpgradeRequest) => Some(SpeculativeAction::GrantExclusive {
            writer: predicted.sender,
        }),
        (Role::Directory, MsgType::GetRoRequest) => Some(SpeculativeAction::ForwardToReader {
            reader: predicted.sender,
        }),
        (Role::Directory, MsgType::GetRwRequest) => Some(SpeculativeAction::GrantExclusive {
            writer: predicted.sender,
        }),
        (Role::Directory, MsgType::InvalRwResponse | MsgType::DowngradeResponse) => {
            Some(SpeculativeAction::EarlyRecall {
                owner: predicted.sender,
            })
        }
        (Role::Cache, MsgType::InvalRwRequest | MsgType::InvalRoRequest) => {
            Some(SpeculativeAction::SelfInvalidate)
        }
        (Role::Cache, MsgType::GetRoResponse | MsgType::GetRwResponse) => {
            Some(SpeculativeAction::PrefetchBlock)
        }
        (Role::Cache, MsgType::UpgradeResponse) => Some(SpeculativeAction::PrefetchOwnership),
        _ => None,
    }
}

/// The outcome of replaying a trace with speculation enabled.
#[derive(Debug, Clone, Default)]
pub struct SpeculationReport {
    /// Per-action counts: `hits` = the prediction behind the fired action
    /// proved correct.
    pub per_action: HashMap<&'static str, Counts>,
    /// Messages whose critical-path latency the correct speculations would
    /// have hidden.
    pub messages_accelerated: u64,
    /// Speculations fired on wrong predictions (recovery cost).
    pub wasted_speculations: u64,
    /// Messages scored in total.
    pub total_messages: u64,
}

impl SpeculationReport {
    /// The fraction of messages accelerated.
    pub fn acceleration_rate(&self) -> f64 {
        if self.total_messages == 0 {
            return 0.0;
        }
        self.messages_accelerated as f64 / self.total_messages as f64
    }

    /// Plugs the measured counts into §4.4's model: an accelerated message
    /// keeps fraction `f` of its delay, a wasted speculation costs penalty
    /// `r`, and messages with no speculation fired keep their full delay
    /// (they are neither helped nor penalised).
    pub fn estimated_speedup(&self, f: f64, r: f64) -> f64 {
        if self.total_messages == 0 {
            return 1.0;
        }
        let n = self.total_messages as f64;
        let accelerated = self.messages_accelerated as f64 / n;
        let wasted = self.wasted_speculations as f64 / n;
        let unaffected = 1.0 - accelerated - wasted;
        1.0 / (accelerated * f + wasted * (1.0 + r) + unaffected)
    }

    /// The §4.4 formula applied directly with `p` = this report's
    /// acceleration rate — the paper's simpler model, which assumes every
    /// message is either correctly predicted or penalised.
    pub fn paper_model_speedup(&self, f: f64, r: f64) -> f64 {
        speedup(SpeedupParams {
            p: self.acceleration_rate(),
            f,
            r,
        })
    }

    fn action_label(a: SpeculativeAction) -> &'static str {
        match a {
            SpeculativeAction::GrantExclusive { .. } => "grant-exclusive",
            SpeculativeAction::ForwardToReader { .. } => "forward-to-reader",
            SpeculativeAction::EarlyRecall { .. } => "early-recall",
            SpeculativeAction::SelfInvalidate => "self-invalidate",
            SpeculativeAction::PrefetchBlock => "prefetch-block",
            SpeculativeAction::PrefetchOwnership => "prefetch-ownership",
        }
    }
}

/// Replays a trace with one predictor per agent, firing the mapped action
/// for every prediction and scoring it against the actual next message.
pub fn simulate_speculation<F>(bundle: &TraceBundle, mut factory: F) -> SpeculationReport
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    // Flat fleet indexed by `agent_index` — same layout as `eval`.
    let mut fleet: Vec<Option<Box<dyn MessagePredictor>>> = Vec::new();
    let mut report = SpeculationReport::default();
    for r in bundle.records() {
        let idx = crate::eval::agent_index(r.node, r.role);
        if idx >= fleet.len() {
            fleet.resize_with(idx + 1, || None);
        }
        let agent = fleet[idx].get_or_insert_with(|| factory(r.node, r.role));
        let observed = PredTuple::new(r.sender, r.mtype);
        report.total_messages += 1;
        if let Some(predicted) = agent.predict(r.block) {
            if let Some(action) = map_prediction(r.role, predicted) {
                let hit = predicted == observed;
                report
                    .per_action
                    .entry(SpeculationReport::action_label(action))
                    .or_default()
                    .add(hit);
                if hit {
                    report.messages_accelerated += 1;
                } else {
                    report.wasted_speculations += 1;
                }
            }
        }
        agent.observe(r.block, observed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::CosmosPredictor;
    use stache::BlockAddr;
    use trace::{MsgRecord, TraceMeta};

    #[test]
    fn mapping_covers_the_table_two_pairs() {
        let p = NodeId::new(3);
        assert_eq!(
            map_prediction(Role::Directory, PredTuple::new(p, MsgType::UpgradeRequest)),
            Some(SpeculativeAction::GrantExclusive { writer: p })
        );
        assert_eq!(
            map_prediction(Role::Directory, PredTuple::new(p, MsgType::GetRoRequest)),
            Some(SpeculativeAction::ForwardToReader { reader: p })
        );
        assert_eq!(
            map_prediction(Role::Cache, PredTuple::new(p, MsgType::InvalRwRequest)),
            Some(SpeculativeAction::SelfInvalidate)
        );
        assert_eq!(
            map_prediction(Role::Cache, PredTuple::new(p, MsgType::GetRoResponse)),
            Some(SpeculativeAction::PrefetchBlock)
        );
        // Responses to invalidations at the *cache* never occur; at the
        // directory an inval_ro_response maps to nothing useful.
        assert_eq!(
            map_prediction(Role::Directory, PredTuple::new(p, MsgType::InvalRoResponse)),
            None
        );
    }

    #[test]
    fn speculation_on_a_perfect_stream_accelerates_nearly_everything() {
        let mut b = TraceBundle::new(TraceMeta::new("spec", 2, 10));
        let block = BlockAddr::new(1);
        let home = NodeId::new(0);
        for i in 0..40u64 {
            let mtype = if i % 2 == 0 {
                MsgType::GetRwResponse
            } else {
                MsgType::InvalRwRequest
            };
            b.push(MsgRecord {
                time_ns: i,
                node: NodeId::new(1),
                role: Role::Cache,
                block,
                sender: home,
                mtype,
                iteration: (i / 4) as u32,
            });
        }
        let report = simulate_speculation(&b, |_, _| Box::new(CosmosPredictor::new(1, 0)));
        assert_eq!(report.total_messages, 40);
        assert!(
            report.acceleration_rate() > 0.8,
            "{}",
            report.acceleration_rate()
        );
        assert!(report.per_action.contains_key("self-invalidate"));
        assert!(report.per_action.contains_key("prefetch-block"));
        assert!(report.estimated_speedup(0.3, 1.0) > 1.0);
        assert_eq!(report.wasted_speculations, 0);
    }

    #[test]
    fn refined_model_and_paper_model_agree_without_unaffected_messages() {
        let report = SpeculationReport {
            per_action: Default::default(),
            messages_accelerated: 80,
            wasted_speculations: 20,
            total_messages: 100,
        };
        // Every message was either accelerated or wasted: the refined
        // estimator reduces exactly to the paper's formula.
        let refined = report.estimated_speedup(0.3, 1.0);
        let paper = report.paper_model_speedup(0.3, 1.0);
        assert!((refined - paper).abs() < 1e-12);
        // With unaffected traffic present they diverge (the paper's model
        // penalises what speculation never touched).
        let partial = SpeculationReport {
            per_action: Default::default(),
            messages_accelerated: 40,
            wasted_speculations: 10,
            total_messages: 100,
        };
        assert!(partial.estimated_speedup(0.3, 1.0) > partial.paper_model_speedup(0.3, 1.0));
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let b = TraceBundle::new(TraceMeta::new("empty", 1, 0));
        let report = simulate_speculation(&b, |_, _| Box::new(CosmosPredictor::new(1, 0)));
        assert_eq!(report.total_messages, 0);
        assert_eq!(report.acceleration_rate(), 0.0);
    }
}
