//! The evaluation harness: replay a trace through a fleet of predictors
//! and account accuracy the way the paper's tables and figures do.
//!
//! One predictor instance is allocated per agent — per `(node, role)` pair
//! — mirroring "we allocate a Cosmos predictor for every cache or directory
//! in the machine" (§3.2). For every record the harness asks the agent's
//! predictor for its prediction *before* showing it the observation, then
//! scores:
//!
//! * **overall / cache / directory** accuracy (Table 5's O, C, D columns);
//! * **per-arc** accuracy, keyed like `trace::ArcKey` (the X labels of
//!   Figures 6 and 7);
//! * **per-iteration** accuracy (the §6.2 time-to-adapt analysis);
//! * **per-arc cumulative accuracy at iteration checkpoints** (Table 8);
//! * the fleet's **memory footprint** (Table 7).
//!
//! A message for which the predictor offers no prediction counts as a miss
//! (the conservative convention); coverage is reported separately.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::{CoreStats, MessagePredictor};
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::{BTreeMap, HashMap};
use trace::{ArcKey, TraceBundle};

/// Flat fleet index for a `(node, role)` agent: two slots per node.
#[inline]
pub(crate) fn agent_index(node: NodeId, role: Role) -> usize {
    node.index() * 2
        + match role {
            Role::Cache => 0,
            Role::Directory => 1,
        }
}

/// Hit/total counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Correct predictions.
    pub hits: u64,
    /// Messages scored.
    pub total: u64,
}

impl Counts {
    /// Records one scored message.
    pub fn add(&mut self, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    /// Hit rate in [0, 1]; 0 when nothing was scored.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.hits as f64 / self.total as f64
    }

    /// Hit rate as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.rate()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Counts) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOptions {
    /// Records from iterations before this are *fed* to the predictors but
    /// not *scored* — the paper's exclusion of the start-up phase (§5).
    pub score_from_iteration: u32,
    /// Score only the message *type*, ignoring the predicted sender. Used
    /// by the sender-ablation study (§3.5 footnote 3 argues the sender
    /// cannot be dropped because actions need it; this option quantifies
    /// what type-only accuracy would look like).
    pub type_only: bool,
}

/// The harness' output: everything the paper's tables need.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// The predictor family evaluated.
    pub predictor: String,
    /// Table 5's "O" column.
    pub overall: Counts,
    /// Table 5's "C" column (messages received at caches).
    pub cache: Counts,
    /// Table 5's "D" column (messages received at directories).
    pub directory: Counts,
    /// How often a prediction was offered at all (`hits` = offered).
    pub coverage: Counts,
    /// Per-arc accuracy (Figures 6/7's X labels).
    pub per_arc: HashMap<ArcKey, Counts>,
    /// Per-agent accuracy — one entry per `(node, role)` predictor, for
    /// spotting pathological agents (e.g. one directory hosting all the
    /// noisy blocks).
    pub per_agent: HashMap<(NodeId, Role), Counts>,
    /// Accuracy per iteration (time-to-adapt curves).
    pub per_iteration: BTreeMap<u32, Counts>,
    /// Per-arc accuracy per iteration (Table 8's checkpoints).
    pub per_arc_by_iteration: HashMap<ArcKey, BTreeMap<u32, Counts>>,
    /// Fleet memory footprint after the full replay (Table 7).
    pub memory: MemoryFootprint,
    /// Predictor-core counters summed over the fleet (probe volume and
    /// resident table capacity) — the perf-engineering view of the run.
    pub core: CoreStats,
    /// Fleet storage cost in bits after the full replay, summed from each
    /// agent's [`MessagePredictor::storage_bits`]. Zero when the predictor
    /// family does not model its storage (unaccounted, not free).
    pub storage_bits: u64,
}

impl AccuracyReport {
    /// Accuracy on one arc, in [0, 1].
    pub fn arc_rate(&self, key: ArcKey) -> f64 {
        self.per_arc.get(&key).map_or(0.0, Counts::rate)
    }

    /// Share of a role's scored arc references on this arc (Figures 6/7's
    /// Y labels).
    pub fn arc_share(&self, key: ArcKey) -> f64 {
        let total: u64 = self
            .per_arc
            .iter()
            .filter(|(k, _)| k.role == key.role)
            .map(|(_, c)| c.total)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.per_arc.get(&key).map_or(0, |c| c.total) as f64 / total as f64
    }

    /// Cumulative hit/ref counts for an arc over iterations `0..=upto`
    /// (Table 8 reports these at 4, 80, and 320 iterations).
    pub fn arc_cumulative(&self, key: ArcKey, upto: u32) -> Counts {
        let mut out = Counts::default();
        if let Some(series) = self.per_arc_by_iteration.get(&key) {
            for (&it, c) in series {
                if it <= upto {
                    out.merge(*c);
                }
            }
        }
        out
    }

    /// Total scored arc references over iterations `0..=upto`, across all
    /// arcs of a role (Table 8's `refs` denominators).
    pub fn role_cumulative_refs(&self, role: Role, upto: u32) -> u64 {
        self.per_arc_by_iteration
            .iter()
            .filter(|(k, _)| k.role == role)
            .flat_map(|(_, series)| series.iter())
            .filter(|(&it, _)| it <= upto)
            .map(|(_, c)| c.total)
            .sum()
    }

    /// Accuracy over an iteration window `[lo, hi)`.
    pub fn window_rate(&self, lo: u32, hi: u32) -> f64 {
        let mut c = Counts::default();
        for (&it, counts) in &self.per_iteration {
            if it >= lo && it < hi {
                c.merge(*counts);
            }
        }
        c.rate()
    }

    /// The first iteration at which the trailing accuracy over `window`
    /// iterations reaches `fraction` of the final window's accuracy —
    /// the §6.2 "time to adapt".
    pub fn time_to_adapt(&self, window: u32, fraction: f64) -> Option<u32> {
        let last = *self.per_iteration.keys().next_back()?;
        let steady = self.window_rate(last.saturating_sub(window), last + 1);
        if steady == 0.0 {
            return Some(0);
        }
        (0..=last).find(|&it| self.window_rate(it, it + window) >= fraction * steady)
    }

    /// Renders a one-screen human-readable summary of the report.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: overall {:.1}% (cache {:.1}%, directory {:.1}%) over {} messages",
            self.predictor,
            self.overall.percent(),
            self.cache.percent(),
            self.directory.percent(),
            self.overall.total,
        );
        let _ = writeln!(
            out,
            "coverage {:.1}%; accuracy among offered {:.1}%",
            self.coverage.percent(),
            if self.coverage.hits == 0 {
                0.0
            } else {
                100.0 * self.overall.hits as f64 / self.coverage.hits as f64
            },
        );
        let _ = writeln!(
            out,
            "memory: {} MHR entries, {} PHT entries (ratio {:.2})",
            self.memory.mhr_entries,
            self.memory.pht_entries,
            self.memory.ratio(),
        );
        for role in [Role::Cache, Role::Directory] {
            let _ = writeln!(out, "top arcs at the {role} (accuracy%/share%):");
            for (arc, acc, share) in self.dominant_arcs(role, 3) {
                let _ = writeln!(
                    out,
                    "  {:<22} -> {:<22} {:>3.0}/{:<3.0}",
                    arc.prev.paper_name(),
                    arc.next.paper_name(),
                    acc,
                    share
                );
            }
        }
        out
    }

    /// Exports the headline numbers into a metrics snapshot under
    /// `cosmos.depth<d>.` — accuracy percentages (Table 5), coverage, and
    /// the Table 7 memory footprint (PHT occupancy and byte cost).
    pub fn export_obs(&self, depth: usize, snap: &mut obs::Snapshot) {
        let p = format!("cosmos.depth{depth}");
        snap.counter(&format!("{p}.messages"), self.overall.total);
        snap.gauge(&format!("{p}.accuracy.overall_pct"), self.overall.percent());
        snap.gauge(&format!("{p}.accuracy.cache_pct"), self.cache.percent());
        snap.gauge(
            &format!("{p}.accuracy.directory_pct"),
            self.directory.percent(),
        );
        snap.gauge(&format!("{p}.coverage_pct"), self.coverage.percent());
        snap.counter(
            &format!("{p}.memory.mhr_entries"),
            self.memory.mhr_entries as u64,
        );
        snap.counter(
            &format!("{p}.memory.pht_entries"),
            self.memory.pht_entries as u64,
        );
        snap.counter(
            &format!("{p}.memory.bytes"),
            self.memory.bytes(depth) as u64,
        );
        snap.gauge(
            &format!("{p}.memory.overhead_pct"),
            self.memory.overhead_percent(depth),
        );
    }

    /// Exports the predictor-core counters under `cosmos.core.` — kept
    /// separate from [`export_obs`](Self::export_obs) so the accuracy
    /// snapshots (and their golden files) are unaffected by perf
    /// instrumentation.
    pub fn export_core_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("cosmos.core.pht_probes", self.core.pht_probes);
        snap.counter(
            "cosmos.core.fastmap_capacity_bytes",
            self.core.table_capacity_bytes,
        );
    }

    /// Dominant arcs of a role by scored references, with `(accuracy %,
    /// share %)` — the Figure 6/7 labels.
    pub fn dominant_arcs(&self, role: Role, top: usize) -> Vec<(ArcKey, f64, f64)> {
        let mut arcs: Vec<(ArcKey, Counts)> = self
            .per_arc
            .iter()
            .filter(|(k, _)| k.role == role)
            .map(|(k, c)| (*k, *c))
            .collect();
        arcs.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        arcs.truncate(top);
        arcs.into_iter()
            .map(|(k, c)| (k, c.percent(), 100.0 * self.arc_share(k)))
            .collect()
    }
}

/// One agent's predictor plus its replay-local state, held in a flat
/// vector indexed by [`agent_index`] — the hot loop does two Vec
/// indexings instead of hashing a `(NodeId, Role)` tuple per record.
struct AgentSlot {
    node: NodeId,
    role: Role,
    predictor: Box<dyn MessagePredictor>,
    /// Last message type seen per block at this agent (arc tracking).
    prev_type: FastMap<BlockAddr, MsgType>,
    counts: Counts,
}

/// A push-based evaluation in progress: feed records one at a time (or a
/// chunk at a time) and [`finish`](StreamEval::finish) into the same
/// [`AccuracyReport`] the one-shot [`evaluate`] produces. This is the
/// engine behind the packed-trace replay path — a billion-message trace
/// streams through chunk by chunk without a bundle ever existing — and
/// behind SimPoint sampling, which warms a fleet on one interval
/// ([`observe_only`](StreamEval::observe_only)) and scores the next.
pub struct StreamEval<F>
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    factory: F,
    opts: EvalOptions,
    fleet: Vec<Option<AgentSlot>>,
    per_arc: FastMap<ArcKey, Counts>,
    per_arc_by_iteration: FastMap<ArcKey, BTreeMap<u32, Counts>>,
    predictor: String,
    overall: Counts,
    cache: Counts,
    directory: Counts,
    coverage: Counts,
    per_iteration: BTreeMap<u32, Counts>,
}

impl<F> StreamEval<F>
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    /// Starts an evaluation with the given options and per-agent factory.
    pub fn new(opts: EvalOptions, factory: F) -> Self {
        StreamEval {
            factory,
            opts,
            fleet: Vec::new(),
            per_arc: FastMap::default(),
            per_arc_by_iteration: FastMap::default(),
            predictor: String::new(),
            overall: Counts::default(),
            cache: Counts::default(),
            directory: Counts::default(),
            coverage: Counts::default(),
            per_iteration: BTreeMap::new(),
        }
    }

    fn feed(&mut self, r: &trace::MsgRecord, score: bool) {
        let idx = agent_index(r.node, r.role);
        if idx >= self.fleet.len() {
            self.fleet.resize_with(idx + 1, || None);
        }
        let factory = &mut self.factory;
        let slot = self.fleet[idx].get_or_insert_with(|| AgentSlot {
            node: r.node,
            role: r.role,
            predictor: factory(r.node, r.role),
            prev_type: FastMap::default(),
            counts: Counts::default(),
        });
        if self.predictor.is_empty() {
            self.predictor = slot.predictor.name().to_string();
        }
        let observed = PredTuple::new(r.sender, r.mtype);
        let predicted = slot.predictor.predict(r.block);

        if score && r.iteration >= self.opts.score_from_iteration {
            let hit = if self.opts.type_only {
                predicted.is_some_and(|p| p.mtype == observed.mtype)
            } else {
                predicted == Some(observed)
            };
            self.overall.add(hit);
            match r.role {
                Role::Cache => self.cache.add(hit),
                Role::Directory => self.directory.add(hit),
            }
            self.coverage.add(predicted.is_some());
            slot.counts.add(hit);
            self.per_iteration.entry(r.iteration).or_default().add(hit);
            if let Some(prev) = slot.prev_type.get(&r.block) {
                let key = ArcKey {
                    role: r.role,
                    prev: *prev,
                    next: r.mtype,
                };
                self.per_arc.entry(key).or_default().add(hit);
                self.per_arc_by_iteration
                    .entry(key)
                    .or_default()
                    .entry(r.iteration)
                    .or_default()
                    .add(hit);
            }
        }
        slot.prev_type.insert(r.block, r.mtype);
        slot.predictor.observe(r.block, observed);
    }

    /// Feeds and scores one record (subject to the warmup option).
    pub fn push(&mut self, r: &trace::MsgRecord) {
        self.feed(r, true);
    }

    /// Feeds and scores a batch (typically one decoded chunk).
    pub fn push_all(&mut self, records: &[trace::MsgRecord]) {
        for r in records {
            self.feed(r, true);
        }
    }

    /// Feeds one record without scoring it — predictors train and arc
    /// state advances, but no counter moves. SimPoint warmup uses this to
    /// warm a cold fleet on the interval preceding a representative.
    pub fn observe_only(&mut self, r: &trace::MsgRecord) {
        self.feed(r, false);
    }

    /// Feeds a batch without scoring.
    pub fn observe_only_all(&mut self, records: &[trace::MsgRecord]) {
        for r in records {
            self.feed(r, false);
        }
    }

    /// The running overall hit/total counters. A sampling driver diffs
    /// this at interval boundaries to attribute scores per interval in
    /// a single streaming pass — no second replay, no fleet cloning.
    pub fn counts_so_far(&self) -> Counts {
        self.overall
    }

    /// Closes the evaluation and builds the report.
    pub fn finish(self) -> AccuracyReport {
        let mut report = AccuracyReport {
            predictor: self.predictor,
            overall: self.overall,
            cache: self.cache,
            directory: self.directory,
            coverage: self.coverage,
            per_arc: self.per_arc.into_iter().collect(),
            per_agent: HashMap::new(),
            per_iteration: self.per_iteration,
            per_arc_by_iteration: self.per_arc_by_iteration.into_iter().collect(),
            memory: MemoryFootprint::default(),
            core: CoreStats::default(),
            storage_bits: 0,
        };
        for slot in self.fleet.iter().flatten() {
            report.memory = report.memory + slot.predictor.memory();
            report.core.merge(slot.predictor.core_stats());
            report.storage_bits += slot.predictor.storage_bits();
            // Agents that only saw warmup records never scored anything and
            // get no per-agent entry, matching the map-keyed accounting.
            if slot.counts.total > 0 {
                report.per_agent.insert((slot.node, slot.role), slot.counts);
            }
        }
        report
    }
}

/// Replays a trace through a fleet of predictors built by `factory` (one
/// per `(node, role)`), scoring as the paper does.
pub fn evaluate<F>(bundle: &TraceBundle, opts: &EvalOptions, factory: F) -> AccuracyReport
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    let mut eval = StreamEval::new(opts.clone(), factory);
    eval.push_all(bundle.records());
    eval.finish()
}

/// Replays a chunked record stream — the packed-trace form — through a
/// fleet. Identical accounting to [`evaluate`] on the concatenated
/// chunks; only one chunk need be in memory at a time.
pub fn evaluate_chunks<'a, F>(
    chunks: impl IntoIterator<Item = &'a [trace::MsgRecord]>,
    opts: &EvalOptions,
    factory: F,
) -> AccuracyReport
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    let mut eval = StreamEval::new(opts.clone(), factory);
    for chunk in chunks {
        eval.push_all(chunk);
    }
    eval.finish()
}

/// Evaluates a Cosmos fleet of the given depth and filter over a trace.
pub fn evaluate_cosmos(bundle: &TraceBundle, depth: usize, filter_max: u8) -> AccuracyReport {
    evaluate(bundle, &EvalOptions::default(), |_, _| {
        Box::new(CosmosPredictor::new(depth, filter_max))
    })
}

/// Evaluates a Cosmos fleet over a chunked record stream.
pub fn evaluate_cosmos_chunks<'a>(
    chunks: impl IntoIterator<Item = &'a [trace::MsgRecord]>,
    depth: usize,
    filter_max: u8,
) -> AccuracyReport {
    evaluate_chunks(chunks, &EvalOptions::default(), |_, _| {
        Box::new(CosmosPredictor::new(depth, filter_max))
    })
}

/// One record's prediction outcome in a [`record_verdicts`] replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The agent's predictor offered the observed `(sender, type)` tuple.
    Hit,
    /// The predictor offered something else.
    Miss,
    /// The predictor offered nothing (cold history or filtered arc).
    NoPrediction,
}

impl Verdict {
    /// Short human label, used by the critical-path report.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Hit => "predicted",
            Verdict::Miss => "mispredicted",
            Verdict::NoPrediction => "no_prediction",
        }
    }
}

/// Replays a Cosmos fleet over the trace and returns one [`Verdict`] per
/// record, aligned with `bundle.records()` order. This is the per-message
/// view the aggregate [`AccuracyReport`] cannot give: a span tree can look
/// up the verdict of the exact message it recorded (by trace-record index)
/// and annotate its critical path with "predicted / mispredicted".
pub fn record_verdicts(bundle: &TraceBundle, depth: usize, filter_max: u8) -> Vec<Verdict> {
    let mut fleet: Vec<Option<CosmosPredictor>> = Vec::new();
    let mut out = Vec::with_capacity(bundle.records().len());
    for r in bundle.records() {
        let idx = agent_index(r.node, r.role);
        if idx >= fleet.len() {
            fleet.resize_with(idx + 1, || None);
        }
        let predictor = fleet[idx].get_or_insert_with(|| CosmosPredictor::new(depth, filter_max));
        let observed = PredTuple::new(r.sender, r.mtype);
        let verdict = match predictor.predict(r.block) {
            Some(p) if p == observed => Verdict::Hit,
            Some(_) => Verdict::Miss,
            None => Verdict::NoPrediction,
        };
        out.push(verdict);
        predictor.observe(r.block, observed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{MsgRecord, TraceMeta};

    fn rec(
        i: usize,
        node: usize,
        role: Role,
        block: u64,
        sender: usize,
        mtype: MsgType,
        it: u32,
    ) -> MsgRecord {
        MsgRecord {
            time_ns: i as u64,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(sender),
            mtype,
            iteration: it,
        }
    }

    /// A perfectly periodic two-message cycle at one cache.
    fn cyclic_bundle(iterations: u32) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("cycle", 2, iterations));
        let mut i = 0;
        for it in 0..iterations {
            b.push(rec(i, 0, Role::Cache, 1, 1, MsgType::GetRwResponse, it));
            i += 1;
            b.push(rec(i, 0, Role::Cache, 1, 1, MsgType::InvalRwRequest, it));
            i += 1;
        }
        b
    }

    #[test]
    fn perfect_cycle_approaches_full_accuracy() {
        let bundle = cyclic_bundle(50);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // Cold start costs 3 messages (fill MHR, learn 2 transitions).
        assert!(
            report.overall.rate() > 0.95,
            "rate {}",
            report.overall.rate()
        );
        assert_eq!(report.overall.total, 100);
        assert_eq!(report.directory.total, 0);
        assert_eq!(report.cache.total, 100);
        assert_eq!(report.predictor, "cosmos");
    }

    #[test]
    fn warmup_exclusion_removes_cold_start() {
        let bundle = cyclic_bundle(50);
        let opts = EvalOptions {
            score_from_iteration: 2,
            ..Default::default()
        };
        let report = evaluate(&bundle, &opts, |_, _| Box::new(CosmosPredictor::new(1, 0)));
        assert_eq!(report.overall.total, 96);
        assert_eq!(report.overall.hits, 96, "steady state is perfect");
    }

    #[test]
    fn per_agent_accounting_partitions_the_totals() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // One cache agent in this trace: its counts are the totals.
        assert_eq!(report.per_agent.len(), 1);
        let agent = report.per_agent[&(NodeId::new(0), Role::Cache)];
        assert_eq!(agent.total, report.overall.total);
        assert_eq!(agent.hits, report.overall.hits);
    }

    #[test]
    fn per_arc_accounting() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRwResponse,
            next: MsgType::InvalRwRequest,
        };
        let c = report.per_arc.get(&key).expect("arc present");
        assert_eq!(c.total, 10);
        assert!(report.arc_rate(key) > 0.8);
        // The two arcs split the share evenly (19 arcs total: 10 + 9).
        assert!((report.arc_share(key) - 10.0 / 19.0).abs() < 1e-9);
        let dom = report.dominant_arcs(Role::Cache, 5);
        assert_eq!(dom.len(), 2);
        assert_eq!(dom[0].0, key);
    }

    #[test]
    fn cumulative_arc_counts_grow() {
        let bundle = cyclic_bundle(20);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRwResponse,
            next: MsgType::InvalRwRequest,
        };
        let at5 = report.arc_cumulative(key, 5);
        let at19 = report.arc_cumulative(key, 19);
        assert!(at5.total < at19.total);
        assert!(at19.rate() >= at5.rate());
        assert!(report.role_cumulative_refs(Role::Cache, 19) >= at19.total);
    }

    #[test]
    fn time_to_adapt_is_early_for_easy_patterns() {
        let bundle = cyclic_bundle(60);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let t = report.time_to_adapt(5, 0.95).unwrap();
        assert!(t <= 3, "adapted at iteration {t}");
    }

    #[test]
    fn coverage_counts_offered_predictions() {
        let bundle = cyclic_bundle(5);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // The first three messages have no prediction: the first fills the
        // MHR, the second learns the first transition (but the MHR now
        // points at the not-yet-learned one), the third learns that one.
        assert_eq!(report.coverage.total, 10);
        assert_eq!(report.coverage.hits, 7);
    }

    #[test]
    fn summary_renders_the_essentials() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let s = report.render_summary();
        assert!(s.contains("cosmos"));
        assert!(s.contains("MHR"));
        assert!(s.contains("get_rw_response"));
    }

    #[test]
    fn export_obs_emits_depth_prefixed_metrics() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 2, 0);
        let mut snap = obs::Snapshot::new();
        report.export_obs(2, &mut snap);
        assert!(snap.names().iter().all(|n| n.starts_with("cosmos.depth2.")));
        assert!(matches!(
            snap.get("cosmos.depth2.accuracy.overall_pct"),
            Some(obs::MetricValue::Gauge(p)) if (0.0..=100.0).contains(p)
        ));
        assert!(matches!(
            snap.get("cosmos.depth2.memory.pht_entries"),
            Some(obs::MetricValue::Counter(n)) if *n > 0
        ));
        assert!(matches!(
            snap.get("cosmos.depth2.memory.bytes"),
            Some(obs::MetricValue::Counter(n)) if *n > 0
        ));
    }

    #[test]
    fn record_verdicts_align_with_the_aggregate_report() {
        let bundle = cyclic_bundle(20);
        let verdicts = record_verdicts(&bundle, 1, 0);
        assert_eq!(verdicts.len(), bundle.records().len());
        let report = evaluate_cosmos(&bundle, 1, 0);
        let hits = verdicts.iter().filter(|v| **v == Verdict::Hit).count() as u64;
        let offered = verdicts
            .iter()
            .filter(|v| **v != Verdict::NoPrediction)
            .count() as u64;
        assert_eq!(hits, report.overall.hits);
        assert_eq!(offered, report.coverage.hits);
        // The first record is always cold.
        assert_eq!(verdicts[0], Verdict::NoPrediction);
        assert_eq!(Verdict::Hit.label(), "predicted");
        assert_eq!(Verdict::Miss.label(), "mispredicted");
    }

    #[test]
    fn chunked_evaluation_matches_whole_bundle() {
        let bundle = cyclic_bundle(40);
        let whole = evaluate_cosmos(&bundle, 2, 0);
        for chunk_len in [1usize, 3, 7, 80] {
            let chunks = bundle.records().chunks(chunk_len);
            let chunked = evaluate_cosmos_chunks(chunks, 2, 0);
            assert_eq!(chunked.overall, whole.overall, "chunk_len {chunk_len}");
            assert_eq!(chunked.cache, whole.cache);
            assert_eq!(chunked.coverage, whole.coverage);
            assert_eq!(chunked.per_arc, whole.per_arc);
            assert_eq!(chunked.per_iteration, whole.per_iteration);
            assert_eq!(chunked.per_agent, whole.per_agent);
            assert_eq!(chunked.storage_bits, whole.storage_bits);
        }
    }

    #[test]
    fn observe_only_trains_without_scoring() {
        let bundle = cyclic_bundle(30);
        let records = bundle.records();
        let split = records.len() / 2;
        // Warm on the first half unscored, score the second half.
        let mut eval = StreamEval::new(EvalOptions::default(), |_, _| {
            Box::new(CosmosPredictor::new(1, 0)) as Box<dyn MessagePredictor>
        });
        eval.observe_only_all(&records[..split]);
        eval.push_all(&records[split..]);
        let warmed = eval.finish();
        assert_eq!(warmed.overall.total, (records.len() - split) as u64);
        // The warmed fleet is perfect on the steady-state cycle; a cold
        // fleet scoring everything pays the cold-start misses.
        assert_eq!(warmed.overall.hits, warmed.overall.total);
        let cold = evaluate_cosmos(&bundle, 1, 0);
        assert!(cold.overall.rate() < warmed.overall.rate());
    }

    #[test]
    fn counts_helpers() {
        let mut c = Counts::default();
        assert_eq!(c.rate(), 0.0);
        c.add(true);
        c.add(false);
        assert_eq!(c.percent(), 50.0);
        let mut d = Counts::default();
        d.merge(c);
        assert_eq!(d.total, 2);
    }
}
