//! The evaluation harness: replay a trace through a fleet of predictors
//! and account accuracy the way the paper's tables and figures do.
//!
//! One predictor instance is allocated per agent — per `(node, role)` pair
//! — mirroring "we allocate a Cosmos predictor for every cache or directory
//! in the machine" (§3.2). For every record the harness asks the agent's
//! predictor for its prediction *before* showing it the observation, then
//! scores:
//!
//! * **overall / cache / directory** accuracy (Table 5's O, C, D columns);
//! * **per-arc** accuracy, keyed like `trace::ArcKey` (the X labels of
//!   Figures 6 and 7);
//! * **per-iteration** accuracy (the §6.2 time-to-adapt analysis);
//! * **per-arc cumulative accuracy at iteration checkpoints** (Table 8);
//! * the fleet's **memory footprint** (Table 7).
//!
//! A message for which the predictor offers no prediction counts as a miss
//! (the conservative convention); coverage is reported separately.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::{CoreStats, MessagePredictor};
use stache::{BlockAddr, MsgType, NodeId, Role};
use std::collections::{BTreeMap, HashMap};
use trace::{ArcKey, TraceBundle};

/// Flat fleet index for a `(node, role)` agent: two slots per node.
#[inline]
pub(crate) fn agent_index(node: NodeId, role: Role) -> usize {
    node.index() * 2
        + match role {
            Role::Cache => 0,
            Role::Directory => 1,
        }
}

/// Hit/total counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Correct predictions.
    pub hits: u64,
    /// Messages scored.
    pub total: u64,
}

impl Counts {
    /// Records one scored message.
    pub fn add(&mut self, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    /// Hit rate in [0, 1]; 0 when nothing was scored.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.hits as f64 / self.total as f64
    }

    /// Hit rate as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.rate()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Counts) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOptions {
    /// Records from iterations before this are *fed* to the predictors but
    /// not *scored* — the paper's exclusion of the start-up phase (§5).
    pub score_from_iteration: u32,
    /// Score only the message *type*, ignoring the predicted sender. Used
    /// by the sender-ablation study (§3.5 footnote 3 argues the sender
    /// cannot be dropped because actions need it; this option quantifies
    /// what type-only accuracy would look like).
    pub type_only: bool,
}

/// The harness' output: everything the paper's tables need.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// The predictor family evaluated.
    pub predictor: String,
    /// Table 5's "O" column.
    pub overall: Counts,
    /// Table 5's "C" column (messages received at caches).
    pub cache: Counts,
    /// Table 5's "D" column (messages received at directories).
    pub directory: Counts,
    /// How often a prediction was offered at all (`hits` = offered).
    pub coverage: Counts,
    /// Per-arc accuracy (Figures 6/7's X labels).
    pub per_arc: HashMap<ArcKey, Counts>,
    /// Per-agent accuracy — one entry per `(node, role)` predictor, for
    /// spotting pathological agents (e.g. one directory hosting all the
    /// noisy blocks).
    pub per_agent: HashMap<(NodeId, Role), Counts>,
    /// Accuracy per iteration (time-to-adapt curves).
    pub per_iteration: BTreeMap<u32, Counts>,
    /// Per-arc accuracy per iteration (Table 8's checkpoints).
    pub per_arc_by_iteration: HashMap<ArcKey, BTreeMap<u32, Counts>>,
    /// Fleet memory footprint after the full replay (Table 7).
    pub memory: MemoryFootprint,
    /// Predictor-core counters summed over the fleet (probe volume and
    /// resident table capacity) — the perf-engineering view of the run.
    pub core: CoreStats,
    /// Fleet storage cost in bits after the full replay, summed from each
    /// agent's [`MessagePredictor::storage_bits`]. Zero when the predictor
    /// family does not model its storage (unaccounted, not free).
    pub storage_bits: u64,
}

impl AccuracyReport {
    /// Accuracy on one arc, in [0, 1].
    pub fn arc_rate(&self, key: ArcKey) -> f64 {
        self.per_arc.get(&key).map_or(0.0, Counts::rate)
    }

    /// Share of a role's scored arc references on this arc (Figures 6/7's
    /// Y labels).
    pub fn arc_share(&self, key: ArcKey) -> f64 {
        let total: u64 = self
            .per_arc
            .iter()
            .filter(|(k, _)| k.role == key.role)
            .map(|(_, c)| c.total)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.per_arc.get(&key).map_or(0, |c| c.total) as f64 / total as f64
    }

    /// Cumulative hit/ref counts for an arc over iterations `0..=upto`
    /// (Table 8 reports these at 4, 80, and 320 iterations).
    pub fn arc_cumulative(&self, key: ArcKey, upto: u32) -> Counts {
        let mut out = Counts::default();
        if let Some(series) = self.per_arc_by_iteration.get(&key) {
            for (&it, c) in series {
                if it <= upto {
                    out.merge(*c);
                }
            }
        }
        out
    }

    /// Total scored arc references over iterations `0..=upto`, across all
    /// arcs of a role (Table 8's `refs` denominators).
    pub fn role_cumulative_refs(&self, role: Role, upto: u32) -> u64 {
        self.per_arc_by_iteration
            .iter()
            .filter(|(k, _)| k.role == role)
            .flat_map(|(_, series)| series.iter())
            .filter(|(&it, _)| it <= upto)
            .map(|(_, c)| c.total)
            .sum()
    }

    /// Accuracy over an iteration window `[lo, hi)`.
    pub fn window_rate(&self, lo: u32, hi: u32) -> f64 {
        let mut c = Counts::default();
        for (&it, counts) in &self.per_iteration {
            if it >= lo && it < hi {
                c.merge(*counts);
            }
        }
        c.rate()
    }

    /// The first iteration at which the trailing accuracy over `window`
    /// iterations reaches `fraction` of the final window's accuracy —
    /// the §6.2 "time to adapt".
    pub fn time_to_adapt(&self, window: u32, fraction: f64) -> Option<u32> {
        let last = *self.per_iteration.keys().next_back()?;
        let steady = self.window_rate(last.saturating_sub(window), last + 1);
        if steady == 0.0 {
            return Some(0);
        }
        (0..=last).find(|&it| self.window_rate(it, it + window) >= fraction * steady)
    }

    /// Renders a one-screen human-readable summary of the report.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: overall {:.1}% (cache {:.1}%, directory {:.1}%) over {} messages",
            self.predictor,
            self.overall.percent(),
            self.cache.percent(),
            self.directory.percent(),
            self.overall.total,
        );
        let _ = writeln!(
            out,
            "coverage {:.1}%; accuracy among offered {:.1}%",
            self.coverage.percent(),
            if self.coverage.hits == 0 {
                0.0
            } else {
                100.0 * self.overall.hits as f64 / self.coverage.hits as f64
            },
        );
        let _ = writeln!(
            out,
            "memory: {} MHR entries, {} PHT entries (ratio {:.2})",
            self.memory.mhr_entries,
            self.memory.pht_entries,
            self.memory.ratio(),
        );
        for role in [Role::Cache, Role::Directory] {
            let _ = writeln!(out, "top arcs at the {role} (accuracy%/share%):");
            for (arc, acc, share) in self.dominant_arcs(role, 3) {
                let _ = writeln!(
                    out,
                    "  {:<22} -> {:<22} {:>3.0}/{:<3.0}",
                    arc.prev.paper_name(),
                    arc.next.paper_name(),
                    acc,
                    share
                );
            }
        }
        out
    }

    /// Exports the headline numbers into a metrics snapshot under
    /// `cosmos.depth<d>.` — accuracy percentages (Table 5), coverage, and
    /// the Table 7 memory footprint (PHT occupancy and byte cost).
    pub fn export_obs(&self, depth: usize, snap: &mut obs::Snapshot) {
        let p = format!("cosmos.depth{depth}");
        snap.counter(&format!("{p}.messages"), self.overall.total);
        snap.gauge(&format!("{p}.accuracy.overall_pct"), self.overall.percent());
        snap.gauge(&format!("{p}.accuracy.cache_pct"), self.cache.percent());
        snap.gauge(
            &format!("{p}.accuracy.directory_pct"),
            self.directory.percent(),
        );
        snap.gauge(&format!("{p}.coverage_pct"), self.coverage.percent());
        snap.counter(
            &format!("{p}.memory.mhr_entries"),
            self.memory.mhr_entries as u64,
        );
        snap.counter(
            &format!("{p}.memory.pht_entries"),
            self.memory.pht_entries as u64,
        );
        snap.counter(
            &format!("{p}.memory.bytes"),
            self.memory.bytes(depth) as u64,
        );
        snap.gauge(
            &format!("{p}.memory.overhead_pct"),
            self.memory.overhead_percent(depth),
        );
    }

    /// Exports the predictor-core counters under `cosmos.core.` — kept
    /// separate from [`export_obs`](Self::export_obs) so the accuracy
    /// snapshots (and their golden files) are unaffected by perf
    /// instrumentation.
    pub fn export_core_obs(&self, snap: &mut obs::Snapshot) {
        snap.counter("cosmos.core.pht_probes", self.core.pht_probes);
        snap.counter(
            "cosmos.core.fastmap_capacity_bytes",
            self.core.table_capacity_bytes,
        );
    }

    /// Dominant arcs of a role by scored references, with `(accuracy %,
    /// share %)` — the Figure 6/7 labels.
    pub fn dominant_arcs(&self, role: Role, top: usize) -> Vec<(ArcKey, f64, f64)> {
        let mut arcs: Vec<(ArcKey, Counts)> = self
            .per_arc
            .iter()
            .filter(|(k, _)| k.role == role)
            .map(|(k, c)| (*k, *c))
            .collect();
        arcs.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        arcs.truncate(top);
        arcs.into_iter()
            .map(|(k, c)| (k, c.percent(), 100.0 * self.arc_share(k)))
            .collect()
    }
}

/// Replays a trace through a fleet of predictors built by `factory` (one
/// per `(node, role)`), scoring as the paper does.
pub fn evaluate<F>(bundle: &TraceBundle, opts: &EvalOptions, mut factory: F) -> AccuracyReport
where
    F: FnMut(NodeId, Role) -> Box<dyn MessagePredictor>,
{
    /// One agent's predictor plus its replay-local state, held in a flat
    /// vector indexed by [`agent_index`] — the hot loop does two Vec
    /// indexings instead of hashing a `(NodeId, Role)` tuple per record.
    struct AgentSlot {
        node: NodeId,
        role: Role,
        predictor: Box<dyn MessagePredictor>,
        /// Last message type seen per block at this agent (arc tracking).
        prev_type: FastMap<BlockAddr, MsgType>,
        counts: Counts,
    }

    let mut fleet: Vec<Option<AgentSlot>> = Vec::new();
    let mut per_arc: FastMap<ArcKey, Counts> = FastMap::default();
    let mut per_arc_by_iteration: FastMap<ArcKey, BTreeMap<u32, Counts>> = FastMap::default();

    let mut report = AccuracyReport {
        predictor: String::new(),
        overall: Counts::default(),
        cache: Counts::default(),
        directory: Counts::default(),
        coverage: Counts::default(),
        per_arc: HashMap::new(),
        per_agent: HashMap::new(),
        per_iteration: BTreeMap::new(),
        per_arc_by_iteration: HashMap::new(),
        memory: MemoryFootprint::default(),
        core: CoreStats::default(),
        storage_bits: 0,
    };

    for r in bundle.records() {
        let idx = agent_index(r.node, r.role);
        if idx >= fleet.len() {
            fleet.resize_with(idx + 1, || None);
        }
        let slot = fleet[idx].get_or_insert_with(|| AgentSlot {
            node: r.node,
            role: r.role,
            predictor: factory(r.node, r.role),
            prev_type: FastMap::default(),
            counts: Counts::default(),
        });
        if report.predictor.is_empty() {
            report.predictor = slot.predictor.name().to_string();
        }
        let observed = PredTuple::new(r.sender, r.mtype);
        let predicted = slot.predictor.predict(r.block);

        if r.iteration >= opts.score_from_iteration {
            let hit = if opts.type_only {
                predicted.is_some_and(|p| p.mtype == observed.mtype)
            } else {
                predicted == Some(observed)
            };
            report.overall.add(hit);
            match r.role {
                Role::Cache => report.cache.add(hit),
                Role::Directory => report.directory.add(hit),
            }
            report.coverage.add(predicted.is_some());
            slot.counts.add(hit);
            report
                .per_iteration
                .entry(r.iteration)
                .or_default()
                .add(hit);
            if let Some(prev) = slot.prev_type.get(&r.block) {
                let key = ArcKey {
                    role: r.role,
                    prev: *prev,
                    next: r.mtype,
                };
                per_arc.entry(key).or_default().add(hit);
                per_arc_by_iteration
                    .entry(key)
                    .or_default()
                    .entry(r.iteration)
                    .or_default()
                    .add(hit);
            }
        }
        slot.prev_type.insert(r.block, r.mtype);
        slot.predictor.observe(r.block, observed);
    }

    report.per_arc = per_arc.into_iter().collect();
    report.per_arc_by_iteration = per_arc_by_iteration.into_iter().collect();
    for slot in fleet.iter().flatten() {
        report.memory = report.memory + slot.predictor.memory();
        report.core.merge(slot.predictor.core_stats());
        report.storage_bits += slot.predictor.storage_bits();
        // Agents that only saw warmup records never scored anything and
        // get no per-agent entry, matching the map-keyed accounting.
        if slot.counts.total > 0 {
            report.per_agent.insert((slot.node, slot.role), slot.counts);
        }
    }
    report
}

/// Evaluates a Cosmos fleet of the given depth and filter over a trace.
pub fn evaluate_cosmos(bundle: &TraceBundle, depth: usize, filter_max: u8) -> AccuracyReport {
    evaluate(bundle, &EvalOptions::default(), |_, _| {
        Box::new(CosmosPredictor::new(depth, filter_max))
    })
}

/// One record's prediction outcome in a [`record_verdicts`] replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The agent's predictor offered the observed `(sender, type)` tuple.
    Hit,
    /// The predictor offered something else.
    Miss,
    /// The predictor offered nothing (cold history or filtered arc).
    NoPrediction,
}

impl Verdict {
    /// Short human label, used by the critical-path report.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Hit => "predicted",
            Verdict::Miss => "mispredicted",
            Verdict::NoPrediction => "no_prediction",
        }
    }
}

/// Replays a Cosmos fleet over the trace and returns one [`Verdict`] per
/// record, aligned with `bundle.records()` order. This is the per-message
/// view the aggregate [`AccuracyReport`] cannot give: a span tree can look
/// up the verdict of the exact message it recorded (by trace-record index)
/// and annotate its critical path with "predicted / mispredicted".
pub fn record_verdicts(bundle: &TraceBundle, depth: usize, filter_max: u8) -> Vec<Verdict> {
    let mut fleet: Vec<Option<CosmosPredictor>> = Vec::new();
    let mut out = Vec::with_capacity(bundle.records().len());
    for r in bundle.records() {
        let idx = agent_index(r.node, r.role);
        if idx >= fleet.len() {
            fleet.resize_with(idx + 1, || None);
        }
        let predictor = fleet[idx].get_or_insert_with(|| CosmosPredictor::new(depth, filter_max));
        let observed = PredTuple::new(r.sender, r.mtype);
        let verdict = match predictor.predict(r.block) {
            Some(p) if p == observed => Verdict::Hit,
            Some(_) => Verdict::Miss,
            None => Verdict::NoPrediction,
        };
        out.push(verdict);
        predictor.observe(r.block, observed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{MsgRecord, TraceMeta};

    fn rec(
        i: usize,
        node: usize,
        role: Role,
        block: u64,
        sender: usize,
        mtype: MsgType,
        it: u32,
    ) -> MsgRecord {
        MsgRecord {
            time_ns: i as u64,
            node: NodeId::new(node),
            role,
            block: BlockAddr::new(block),
            sender: NodeId::new(sender),
            mtype,
            iteration: it,
        }
    }

    /// A perfectly periodic two-message cycle at one cache.
    fn cyclic_bundle(iterations: u32) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("cycle", 2, iterations));
        let mut i = 0;
        for it in 0..iterations {
            b.push(rec(i, 0, Role::Cache, 1, 1, MsgType::GetRwResponse, it));
            i += 1;
            b.push(rec(i, 0, Role::Cache, 1, 1, MsgType::InvalRwRequest, it));
            i += 1;
        }
        b
    }

    #[test]
    fn perfect_cycle_approaches_full_accuracy() {
        let bundle = cyclic_bundle(50);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // Cold start costs 3 messages (fill MHR, learn 2 transitions).
        assert!(
            report.overall.rate() > 0.95,
            "rate {}",
            report.overall.rate()
        );
        assert_eq!(report.overall.total, 100);
        assert_eq!(report.directory.total, 0);
        assert_eq!(report.cache.total, 100);
        assert_eq!(report.predictor, "cosmos");
    }

    #[test]
    fn warmup_exclusion_removes_cold_start() {
        let bundle = cyclic_bundle(50);
        let opts = EvalOptions {
            score_from_iteration: 2,
            ..Default::default()
        };
        let report = evaluate(&bundle, &opts, |_, _| Box::new(CosmosPredictor::new(1, 0)));
        assert_eq!(report.overall.total, 96);
        assert_eq!(report.overall.hits, 96, "steady state is perfect");
    }

    #[test]
    fn per_agent_accounting_partitions_the_totals() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // One cache agent in this trace: its counts are the totals.
        assert_eq!(report.per_agent.len(), 1);
        let agent = report.per_agent[&(NodeId::new(0), Role::Cache)];
        assert_eq!(agent.total, report.overall.total);
        assert_eq!(agent.hits, report.overall.hits);
    }

    #[test]
    fn per_arc_accounting() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRwResponse,
            next: MsgType::InvalRwRequest,
        };
        let c = report.per_arc.get(&key).expect("arc present");
        assert_eq!(c.total, 10);
        assert!(report.arc_rate(key) > 0.8);
        // The two arcs split the share evenly (19 arcs total: 10 + 9).
        assert!((report.arc_share(key) - 10.0 / 19.0).abs() < 1e-9);
        let dom = report.dominant_arcs(Role::Cache, 5);
        assert_eq!(dom.len(), 2);
        assert_eq!(dom[0].0, key);
    }

    #[test]
    fn cumulative_arc_counts_grow() {
        let bundle = cyclic_bundle(20);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let key = ArcKey {
            role: Role::Cache,
            prev: MsgType::GetRwResponse,
            next: MsgType::InvalRwRequest,
        };
        let at5 = report.arc_cumulative(key, 5);
        let at19 = report.arc_cumulative(key, 19);
        assert!(at5.total < at19.total);
        assert!(at19.rate() >= at5.rate());
        assert!(report.role_cumulative_refs(Role::Cache, 19) >= at19.total);
    }

    #[test]
    fn time_to_adapt_is_early_for_easy_patterns() {
        let bundle = cyclic_bundle(60);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let t = report.time_to_adapt(5, 0.95).unwrap();
        assert!(t <= 3, "adapted at iteration {t}");
    }

    #[test]
    fn coverage_counts_offered_predictions() {
        let bundle = cyclic_bundle(5);
        let report = evaluate_cosmos(&bundle, 1, 0);
        // The first three messages have no prediction: the first fills the
        // MHR, the second learns the first transition (but the MHR now
        // points at the not-yet-learned one), the third learns that one.
        assert_eq!(report.coverage.total, 10);
        assert_eq!(report.coverage.hits, 7);
    }

    #[test]
    fn summary_renders_the_essentials() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 1, 0);
        let s = report.render_summary();
        assert!(s.contains("cosmos"));
        assert!(s.contains("MHR"));
        assert!(s.contains("get_rw_response"));
    }

    #[test]
    fn export_obs_emits_depth_prefixed_metrics() {
        let bundle = cyclic_bundle(10);
        let report = evaluate_cosmos(&bundle, 2, 0);
        let mut snap = obs::Snapshot::new();
        report.export_obs(2, &mut snap);
        assert!(snap.names().iter().all(|n| n.starts_with("cosmos.depth2.")));
        assert!(matches!(
            snap.get("cosmos.depth2.accuracy.overall_pct"),
            Some(obs::MetricValue::Gauge(p)) if (0.0..=100.0).contains(p)
        ));
        assert!(matches!(
            snap.get("cosmos.depth2.memory.pht_entries"),
            Some(obs::MetricValue::Counter(n)) if *n > 0
        ));
        assert!(matches!(
            snap.get("cosmos.depth2.memory.bytes"),
            Some(obs::MetricValue::Counter(n)) if *n > 0
        ));
    }

    #[test]
    fn record_verdicts_align_with_the_aggregate_report() {
        let bundle = cyclic_bundle(20);
        let verdicts = record_verdicts(&bundle, 1, 0);
        assert_eq!(verdicts.len(), bundle.records().len());
        let report = evaluate_cosmos(&bundle, 1, 0);
        let hits = verdicts.iter().filter(|v| **v == Verdict::Hit).count() as u64;
        let offered = verdicts
            .iter()
            .filter(|v| **v != Verdict::NoPrediction)
            .count() as u64;
        assert_eq!(hits, report.overall.hits);
        assert_eq!(offered, report.coverage.hits);
        // The first record is always cold.
        assert_eq!(verdicts[0], Verdict::NoPrediction);
        assert_eq!(Verdict::Hit.label(), "predicted");
        assert_eq!(Verdict::Miss.label(), "mispredicted");
    }

    #[test]
    fn counts_helpers() {
        let mut c = Counts::default();
        assert_eq!(c.rate(), 0.0);
        c.add(true);
        c.add(false);
        assert_eq!(c.percent(), 50.0);
        let mut d = Counts::default();
        d.merge(c);
        assert_eq!(d.total, 2);
    }
}
