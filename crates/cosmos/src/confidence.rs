//! Confidence-gated prediction.
//!
//! §4.2 notes that speculative actions must fire "not too early or late",
//! and §4.3 that mispredictions cost recovery; a natural refinement is to
//! act only on predictions the tables have *repeatedly confirmed*. This
//! variant attaches a saturating confidence counter to every PHT entry:
//! each confirmation increments it, each miss resets it, and the predictor
//! stays silent until the counter reaches a threshold.
//!
//! The result is a coverage/accuracy dial: higher thresholds answer fewer
//! messages but are right more often — exactly what an integration wants
//! when the misprediction penalty `r` is large (Figure 5's model makes the
//! trade-off explicit).

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::packed::{self, PackedHistory};
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;
use std::collections::hash_map::Entry as MapEntry;

/// A PHT entry with a confidence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    prediction: PredTuple,
    /// Consecutive confirmations, saturating at `CONFIDENCE_MAX`.
    confidence: u8,
}

/// Saturation point for the confidence counter (2 bits, like branch
/// predictors' counters).
pub const CONFIDENCE_MAX: u8 = 3;

/// A Cosmos variant that only predicts once an entry's confidence reaches
/// the threshold. Replacement is immediate on a miss (the confidence
/// counter subsumes the noise filter's role).
#[derive(Debug, Clone)]
pub struct ConfidenceCosmos {
    depth: usize,
    threshold: u8,
    histories: FastMap<BlockAddr, PackedHistory>,
    pht: FastMap<(BlockAddr, u64), Entry>,
}

impl ConfidenceCosmos {
    /// Creates a predictor of the given MHR depth that answers only with
    /// confidence ≥ `threshold` (0 = always answer, like plain Cosmos;
    /// values above [`CONFIDENCE_MAX`] are clamped).
    pub fn new(depth: usize, threshold: u8) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(
            depth <= packed::MAX_DEPTH,
            "MHR depth {depth} exceeds the packed-word maximum of {}",
            packed::MAX_DEPTH
        );
        ConfidenceCosmos {
            depth,
            threshold: threshold.min(CONFIDENCE_MAX),
            histories: FastMap::default(),
            pht: FastMap::default(),
        }
    }

    /// The configured confidence threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// The raw prediction regardless of confidence, with its confidence.
    pub fn predict_with_confidence(&self, block: BlockAddr) -> Option<(PredTuple, u8)> {
        let key = self.histories.get(&block)?.key()?;
        self.pht
            .get(&(block, key))
            .map(|e| (e.prediction, e.confidence))
    }
}

impl MessagePredictor for ConfidenceCosmos {
    fn name(&self) -> &'static str {
        "cosmos-confidence"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.predict_with_confidence(block)
            .and_then(|(p, c)| (c >= self.threshold).then_some(p))
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let depth = self.depth;
        let history = self
            .histories
            .entry(block)
            .or_insert_with(|| PackedHistory::new(depth));
        if let Some(key) = history.key() {
            match self.pht.entry((block, key)) {
                MapEntry::Vacant(slot) => {
                    slot.insert(Entry {
                        prediction: tuple,
                        confidence: 0,
                    });
                }
                MapEntry::Occupied(mut slot) => {
                    let e = slot.get_mut();
                    if e.prediction == tuple {
                        e.confidence = (e.confidence + 1).min(CONFIDENCE_MAX);
                    } else {
                        *e = Entry {
                            prediction: tuple,
                            confidence: 0,
                        };
                    }
                }
            }
        }
        self.histories
            .get_mut(&block)
            .expect("just inserted")
            .push(tuple.pack());
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.histories.len(),
            pht_entries: self.pht.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn threshold_zero_behaves_like_plain_cosmos() {
        let mut p = ConfidenceCosmos::new(1, 0);
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRwRequest));
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        assert_eq!(p.predict(b(1)), Some(t(2, MsgType::GetRwRequest)));
    }

    #[test]
    fn needs_confirmations_before_answering() {
        let mut p = ConfidenceCosmos::new(1, 2);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        // First sighting of A -> B: confidence 0, silent.
        p.observe(b(1), a);
        p.observe(b(1), bb);
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), None);
        assert_eq!(p.predict_with_confidence(b(1)), Some((bb, 0)));
        // One confirmation: confidence 1, still silent.
        p.observe(b(1), bb);
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), None);
        // Second confirmation: confidence 2, speaks.
        p.observe(b(1), bb);
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), Some(bb));
    }

    #[test]
    fn a_miss_resets_confidence() {
        let mut p = ConfidenceCosmos::new(1, 1);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        let c = t(3, MsgType::UpgradeRequest);
        for _ in 0..3 {
            p.observe(b(1), a);
            p.observe(b(1), bb);
        }
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), Some(bb));
        // Noise: A -> C. The entry is replaced at confidence 0: silent.
        p.observe(b(1), c);
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), None);
    }

    #[test]
    fn confidence_saturates() {
        let mut p = ConfidenceCosmos::new(1, 0);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        for _ in 0..10 {
            p.observe(b(1), a);
            p.observe(b(1), bb);
        }
        p.observe(b(1), a);
        let (_, conf) = p.predict_with_confidence(b(1)).unwrap();
        assert_eq!(conf, CONFIDENCE_MAX);
    }

    #[test]
    fn threshold_clamped_to_max() {
        let p = ConfidenceCosmos::new(2, 200);
        assert_eq!(p.threshold(), CONFIDENCE_MAX);
    }
}
