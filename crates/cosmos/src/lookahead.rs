//! Multi-step (lookahead) prediction accuracy.
//!
//! §4.1 raises speculating on a *sequence* of protocol actions, not just
//! the next one. [`CosmosPredictor::predict_chain`] unrolls the PHT; this
//! module measures how trustworthy each step of the unrolled chain is:
//! for every incoming message the evaluator asks the agent's predictor
//! for a `K`-step chain and scores step `d` against the `d`-th message
//! that actually arrives next for that block at that agent.
//!
//! Chains compound per-step error, so accuracy must fall with distance —
//! how fast it falls bounds how deep an implementation can afford to
//! speculate.

use crate::eval::Counts;
use crate::fasthash::FastMap;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;
use std::collections::VecDeque;
use trace::TraceBundle;

/// Accuracy per lookahead distance (index 0 = one step ahead).
#[derive(Debug, Clone)]
pub struct LookaheadReport {
    /// `by_distance[d]` scores predictions `d + 1` steps ahead.
    pub by_distance: Vec<Counts>,
}

impl LookaheadReport {
    /// Accuracy at `distance` steps ahead (1-based), as a percentage.
    pub fn percent_at(&self, distance: usize) -> f64 {
        assert!(distance >= 1, "distance is 1-based");
        self.by_distance
            .get(distance - 1)
            .map_or(0.0, Counts::percent)
    }
}

/// An outstanding chain prediction awaiting its actuals.
#[derive(Debug)]
struct OutstandingChain {
    chain: Vec<PredTuple>,
    /// How many of the chain's steps have been scored so far.
    matched: usize,
}

/// Evaluates `K`-step chain accuracy of depth-`depth` filterless Cosmos
/// predictors over a trace.
pub fn evaluate_lookahead(bundle: &TraceBundle, depth: usize, k: usize) -> LookaheadReport {
    assert!(k >= 1, "need at least one lookahead step");
    /// One agent: its predictor plus its outstanding chains per block
    /// (oldest first). Held in a flat vector indexed by
    /// [`crate::eval::agent_index`], like the accuracy harness.
    struct AgentSlot {
        predictor: CosmosPredictor,
        outstanding: FastMap<BlockAddr, VecDeque<OutstandingChain>>,
    }
    let mut fleet: Vec<Option<AgentSlot>> = Vec::new();
    let mut by_distance = vec![Counts::default(); k];

    for r in bundle.records() {
        let idx = crate::eval::agent_index(r.node, r.role);
        if idx >= fleet.len() {
            fleet.resize_with(idx + 1, || None);
        }
        let slot = fleet[idx].get_or_insert_with(|| AgentSlot {
            predictor: CosmosPredictor::new(depth, 0),
            outstanding: FastMap::default(),
        });
        let agent = &mut slot.predictor;
        let observed = PredTuple::new(r.sender, r.mtype);

        // Score this arrival against every outstanding chain's next step.
        if let Some(chains) = slot.outstanding.get_mut(&r.block) {
            chains.retain_mut(|c| {
                let step = c.matched;
                if step < c.chain.len() {
                    by_distance[step].add(c.chain[step] == observed);
                }
                c.matched += 1;
                c.matched < k
            });
        }

        // Fold the arrival in, then issue a fresh chain: its step 1
        // predicts the *next* arrival, step `d` the one `d` arrivals out.
        agent.observe(r.block, observed);
        let chain = agent.predict_chain(r.block, k);
        if !chain.is_empty() {
            slot.outstanding
                .entry(r.block)
                .or_default()
                .push_back(OutstandingChain { chain, matched: 0 });
        }
    }
    LookaheadReport { by_distance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId, Role};
    use trace::{MsgRecord, TraceMeta};

    fn cyclic(period: &[MsgType], reps: usize) -> TraceBundle {
        let mut b = TraceBundle::new(TraceMeta::new("look", 2, 1));
        let mut t = 0;
        for m in period.iter().cycle().take(period.len() * reps) {
            b.push(MsgRecord {
                time_ns: t,
                node: NodeId::new(0),
                role: Role::Cache,
                block: BlockAddr::new(1),
                sender: NodeId::new(1),
                mtype: *m,
                iteration: 0,
            });
            t += 10;
        }
        b
    }

    #[test]
    fn perfect_cycles_unroll_perfectly() {
        let period = [
            MsgType::GetRoResponse,
            MsgType::UpgradeResponse,
            MsgType::InvalRwRequest,
        ];
        let r = evaluate_lookahead(&cyclic(&period, 40), 1, 3);
        for d in 1..=3 {
            assert!(
                r.percent_at(d) > 90.0,
                "distance {d}: {:.1}%",
                r.percent_at(d)
            );
        }
    }

    #[test]
    fn noise_compounds_with_distance() {
        // A stream with a stochastic-looking alternation: accuracy at
        // distance 3 cannot beat accuracy at distance 1.
        let period = [
            MsgType::GetRoResponse,
            MsgType::InvalRoRequest,
            MsgType::GetRoResponse,
            MsgType::UpgradeResponse,
            MsgType::InvalRwRequest,
        ];
        let r = evaluate_lookahead(&cyclic(&period, 30), 1, 3);
        assert!(
            r.percent_at(1) + 1e-9 >= r.percent_at(3),
            "d1 {:.1}% vs d3 {:.1}%",
            r.percent_at(1),
            r.percent_at(3)
        );
    }

    #[test]
    fn deeper_history_unrolls_ambiguous_cycles() {
        // The 5-long period above is ambiguous at depth 1 (get_ro_response
        // has two successors) but exact at depth 2.
        let period = [
            MsgType::GetRoResponse,
            MsgType::InvalRoRequest,
            MsgType::GetRoResponse,
            MsgType::UpgradeResponse,
            MsgType::InvalRwRequest,
        ];
        let shallow = evaluate_lookahead(&cyclic(&period, 30), 1, 2);
        let deep = evaluate_lookahead(&cyclic(&period, 30), 2, 2);
        assert!(deep.percent_at(2) > shallow.percent_at(2) + 10.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn distance_zero_rejected() {
        let r = LookaheadReport {
            by_distance: vec![Counts::default()],
        };
        let _ = r.percent_at(0);
    }
}
