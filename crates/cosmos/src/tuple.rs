//! The prediction tuple: `<sender, message-type>`.
//!
//! Table 7's overhead accounting assumes a tuple occupies **two bytes** —
//! "12 bits for processors and 4 bits for coherence message types". The
//! packed encoding here realises exactly that layout, and the memory model
//! uses [`PredTuple::SIZE_BYTES`] in the overhead formula.

use stache::{MsgType, NodeId};
use std::fmt;

/// A `<sender, message-type>` pair: both what Cosmos remembers (MHR
/// contents) and what it predicts (PHT entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredTuple {
    /// The message's sender.
    pub sender: NodeId,
    /// The message's type.
    pub mtype: MsgType,
}

impl PredTuple {
    /// Bytes a tuple occupies in hardware (12-bit node + 4-bit type).
    pub const SIZE_BYTES: usize = 2;

    /// Creates a tuple.
    pub fn new(sender: NodeId, mtype: MsgType) -> Self {
        PredTuple { sender, mtype }
    }

    /// Packs the tuple into 16 bits: node in the high 12, type in the low 4.
    ///
    /// ```
    /// use cosmos::PredTuple;
    /// use stache::{MsgType, NodeId};
    /// let t = PredTuple::new(NodeId::new(3), MsgType::GetRwRequest);
    /// assert_eq!(PredTuple::unpack(t.pack()), Some(t));
    /// ```
    pub fn pack(self) -> u16 {
        (self.sender.raw() << 4) | u16::from(self.mtype.code())
    }

    /// Unpacks a 16-bit encoding; `None` if the type code is invalid.
    pub fn unpack(bits: u16) -> Option<Self> {
        let sender = NodeId::from_raw(bits >> 4)?;
        let mtype = MsgType::from_code((bits & 0xF) as u8)?;
        Some(PredTuple { sender, mtype })
    }
}

impl From<(NodeId, MsgType)> for PredTuple {
    fn from((sender, mtype): (NodeId, MsgType)) -> Self {
        PredTuple { sender, mtype }
    }
}

impl fmt::Display for PredTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.sender, self.mtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::msg::ALL_MSG_TYPES;

    #[test]
    fn pack_roundtrips_every_type_and_edge_nodes() {
        for &t in &ALL_MSG_TYPES {
            for node in [0usize, 1, 15, 4095] {
                let tuple = PredTuple::new(NodeId::new(node), t);
                assert_eq!(PredTuple::unpack(tuple.pack()), Some(tuple));
            }
        }
    }

    #[test]
    fn invalid_type_code_rejected() {
        // Node 0, type code 13 (out of range).
        assert_eq!(PredTuple::unpack(13), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = PredTuple::new(NodeId::new(2), MsgType::GetRoRequest);
        assert_eq!(t.to_string(), "<P2, get_ro_request>");
    }

    #[test]
    fn from_pair() {
        let t: PredTuple = (NodeId::new(1), MsgType::GetRwResponse).into();
        assert_eq!(t.sender, NodeId::new(1));
    }
}
