//! Macroblock grouping — §7's memory-reduction suggestion.
//!
//! "Cosmos' memory requirement can perhaps be reduced by grouping
//! predictions for multiple cache blocks together (similar to Johnson and
//! Hwu's macroblocks)." This variant indexes the Message History Table by
//! `block >> shift` instead of the block address, so `2^shift` adjacent
//! blocks share one MHR and one PHT.
//!
//! The trade-off is interference: adjacent blocks with *the same* sharing
//! pattern (a partitioned array) reinforce each other and cost `2^shift`×
//! less memory; adjacent blocks with *different* patterns corrupt each
//! other's history. The `repro variants` study quantifies both sides.

use crate::memory::MemoryFootprint;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;

/// A Cosmos predictor whose tables are shared by `2^shift` adjacent
/// blocks.
#[derive(Debug, Clone)]
pub struct MacroblockCosmos {
    shift: u32,
    inner: CosmosPredictor,
}

impl MacroblockCosmos {
    /// Creates a macroblock predictor: MHR `depth`, noise-filter
    /// `filter_max`, and macroblocks of `2^shift` blocks (`shift = 0` is
    /// plain Cosmos).
    pub fn new(depth: usize, filter_max: u8, shift: u32) -> Self {
        MacroblockCosmos {
            shift,
            inner: CosmosPredictor::new(depth, filter_max),
        }
    }

    /// The macroblock a block falls into.
    pub fn macroblock(&self, block: BlockAddr) -> BlockAddr {
        BlockAddr::new(block.number() >> self.shift)
    }

    /// Blocks per macroblock.
    pub fn group_size(&self) -> u64 {
        1 << self.shift
    }
}

impl MessagePredictor for MacroblockCosmos {
    fn name(&self) -> &'static str {
        "cosmos-macroblock"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.inner.predict(self.macroblock(block))
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let mb = self.macroblock(block);
        self.inner.observe(mb, tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        self.inner.memory()
    }

    fn core_stats(&self) -> crate::CoreStats {
        self.inner.core_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    #[test]
    fn shift_zero_matches_plain_cosmos() {
        let mut mb = MacroblockCosmos::new(1, 0, 0);
        let mut plain = CosmosPredictor::new(1, 0);
        let stream = [
            (0u64, t(1, MsgType::GetRoRequest)),
            (1, t(2, MsgType::GetRwRequest)),
            (0, t(1, MsgType::UpgradeRequest)),
            (1, t(2, MsgType::InvalRwResponse)),
            (0, t(1, MsgType::GetRoRequest)),
        ];
        for (b, tuple) in stream {
            assert_eq!(
                mb.predict(BlockAddr::new(b)),
                plain.predict(BlockAddr::new(b))
            );
            mb.observe(BlockAddr::new(b), tuple);
            plain.observe(BlockAddr::new(b), tuple);
        }
        assert_eq!(mb.memory(), plain.memory());
    }

    #[test]
    fn adjacent_blocks_share_tables() {
        let mut mb = MacroblockCosmos::new(1, 0, 1);
        assert_eq!(mb.group_size(), 2);
        // Train on block 0; block 1 shares the macroblock and inherits
        // the learned pattern.
        mb.observe(BlockAddr::new(0), t(1, MsgType::GetRoRequest));
        mb.observe(BlockAddr::new(0), t(1, MsgType::UpgradeRequest));
        mb.observe(BlockAddr::new(1), t(1, MsgType::GetRoRequest));
        assert_eq!(
            mb.predict(BlockAddr::new(1)),
            Some(t(1, MsgType::UpgradeRequest))
        );
        // Only one MHR was allocated for the pair.
        assert_eq!(mb.memory().mhr_entries, 1);
    }

    #[test]
    fn unrelated_patterns_interfere() {
        // Block 0 cycles A->B; block 1 cycles A->C. Grouped, the PHT entry
        // for A keeps flipping: interference, the §7 caveat.
        let mut mb = MacroblockCosmos::new(1, 0, 1);
        let a = t(1, MsgType::GetRoRequest);
        let b = t(2, MsgType::GetRwRequest);
        let c = t(3, MsgType::UpgradeRequest);
        mb.observe(BlockAddr::new(0), a);
        mb.observe(BlockAddr::new(0), b); // learned A -> B
        mb.observe(BlockAddr::new(1), a);
        mb.observe(BlockAddr::new(1), c); // overwritten: A -> C
        mb.observe(BlockAddr::new(0), a);
        assert_eq!(
            mb.predict(BlockAddr::new(0)),
            Some(c),
            "block 0 sees block 1's pattern"
        );
    }

    #[test]
    fn memory_shrinks_with_group_size() {
        let blocks = 64u64;
        let mut fine = MacroblockCosmos::new(1, 0, 0);
        let mut coarse = MacroblockCosmos::new(1, 0, 3);
        for round in 0..3 {
            for blk in 0..blocks {
                let tuple = t((round % 4) + 1, MsgType::GetRoRequest);
                fine.observe(BlockAddr::new(blk), tuple);
                coarse.observe(BlockAddr::new(blk), tuple);
            }
        }
        assert_eq!(fine.memory().mhr_entries, 64);
        assert_eq!(coarse.memory().mhr_entries, 8);
        assert!(coarse.memory().pht_entries <= fine.memory().pht_entries);
    }
}
