//! A shared-PHT Cosmos — the GAp/gshare point of Yeh & Patt's design
//! space, transplanted.
//!
//! The paper's Cosmos is the **PAp** point: a private pattern table per
//! block. Branch prediction's classic alternative hashes every (address,
//! history) pair into one **shared** table, trading aliasing for a fixed
//! table size. This variant does the same for coherence messages: the PHT
//! is a single direct-mapped array of `2^index_bits` entries, indexed by
//! a hash of the block address XOR-folded with the packed history tuples.
//!
//! Aliasing can be constructive (blocks with identical sharing patterns
//! reinforce one another — common in partitioned arrays) or destructive;
//! the `repro variants` machinery can quantify which wins per workload.

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::mhr::Mhr;
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;

/// An entry in the shared table: a tag-less prediction with the paper's
/// saturating miss counter.
#[derive(Debug, Clone, Copy)]
struct SharedEntry {
    prediction: PredTuple,
    misses: u8,
}

/// A Cosmos variant with one shared, fixed-size pattern history table.
#[derive(Debug, Clone)]
pub struct SharedPhtCosmos {
    depth: usize,
    filter_max: u8,
    histories: FastMap<BlockAddr, Mhr>,
    table: Vec<Option<SharedEntry>>,
}

impl SharedPhtCosmos {
    /// Creates a predictor: MHR `depth`, filter `filter_max`, and a shared
    /// table of `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `index_bits` exceeds 24 (a 16M-entry
    /// table is already far past any hardware point worth studying).
    pub fn new(depth: usize, filter_max: u8, index_bits: u32) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(index_bits <= 24, "table size out of the study's range");
        SharedPhtCosmos {
            depth,
            filter_max,
            histories: FastMap::default(),
            table: vec![None; 1 << index_bits],
        }
    }

    /// The shared table's entry count.
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }

    /// gshare-style index: the block address folded against the packed
    /// history, reduced to `index_bits` bits. The fold walks the packed
    /// key's 16-bit lanes oldest-first — bit-identical to the original
    /// per-tuple fold over a `&[PredTuple]` history.
    fn index(&self, block: BlockAddr, key: u64) -> usize {
        let mut h = block.number().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for lane in (0..self.depth).rev() {
            let packed = (key >> (16 * lane)) & 0xFFFF;
            h ^= packed.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(17);
        }
        (h ^ (h >> 32)) as usize & (self.table.len() - 1)
    }
}

impl MessagePredictor for SharedPhtCosmos {
    fn name(&self) -> &'static str {
        "cosmos-shared-pht"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let mhr = self.histories.get(&block)?;
        let key = mhr.key()?;
        let idx = self.index(block, key);
        self.table[idx].map(|e| e.prediction)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let depth = self.depth;
        let key = self
            .histories
            .entry(block)
            .or_insert_with(|| Mhr::new(depth))
            .key();
        if let Some(key) = key {
            let idx = self.index(block, key);
            match &mut self.table[idx] {
                slot @ None => {
                    *slot = Some(SharedEntry {
                        prediction: tuple,
                        misses: 0,
                    });
                }
                Some(e) if e.prediction == tuple => e.misses = 0,
                Some(e) if e.misses < self.filter_max => e.misses += 1,
                Some(e) => {
                    *e = SharedEntry {
                        prediction: tuple,
                        misses: 0,
                    }
                }
            }
        }
        self.histories
            .get_mut(&block)
            .expect("just inserted")
            .shift(tuple);
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.histories.len(),
            pht_entries: self.table.iter().filter(|e| e.is_some()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn learns_a_cycle_like_plain_cosmos() {
        let mut p = SharedPhtCosmos::new(1, 0, 12);
        let cycle = [
            t(0, MsgType::GetRoResponse),
            t(0, MsgType::UpgradeResponse),
            t(0, MsgType::InvalRwRequest),
        ];
        for tuple in cycle.iter().cycle().take(6) {
            p.observe(b(1), *tuple);
        }
        for tuple in cycle.iter().cycle().take(6) {
            assert_eq!(p.predict(b(1)), Some(*tuple));
            p.observe(b(1), *tuple);
        }
    }

    #[test]
    fn constructive_aliasing_shares_learning() {
        // With a tiny 1-entry table, every (block, history) maps to the
        // same slot: blocks with the same pattern help each other...
        let mut p = SharedPhtCosmos::new(1, 0, 0);
        assert_eq!(p.table_entries(), 1);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(1, MsgType::UpgradeRequest);
        p.observe(b(1), a);
        p.observe(b(1), bb); // slot learns "-> upgrade"
        p.observe(b(2), a);
        // Block 2 never saw the pattern, but the shared slot answers.
        assert_eq!(p.predict(b(2)), Some(bb));
    }

    #[test]
    fn destructive_aliasing_thrashes() {
        let mut p = SharedPhtCosmos::new(1, 0, 0);
        let a = t(1, MsgType::GetRoRequest);
        let x = t(2, MsgType::GetRwRequest);
        let y = t(3, MsgType::UpgradeRequest);
        p.observe(b(1), a);
        p.observe(b(1), x); // slot: -> x
        p.observe(b(2), a);
        p.observe(b(2), y); // slot: -> y (thrash)
                            // Block 1's next lookup hits the same slot and sees block 2's
                            // overwrite instead of its own learned successor.
        assert_eq!(p.predict(b(1)), Some(y), "block 1 sees block 2's update");
    }

    #[test]
    fn memory_is_bounded_by_the_table() {
        let mut p = SharedPhtCosmos::new(2, 0, 4);
        for i in 0..1000u64 {
            p.observe(b(i % 40), t((i % 16) as usize, MsgType::GetRoRequest));
        }
        assert!(p.memory().pht_entries <= 16, "table has 2^4 slots");
        assert_eq!(p.memory().mhr_entries, 40);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn oversized_table_rejected() {
        let _ = SharedPhtCosmos::new(1, 0, 30);
    }
}
