//! Predictor state snapshots.
//!
//! Long evaluations (the trace crate streams multi-gigabyte runs) want
//! checkpointing: stop, persist every agent's tables, resume later with
//! identical predictions. This module gives [`CosmosPredictor`] a compact
//! binary snapshot format:
//!
//! ```text
//! "CPS1" | depth u8 | filter u8 | block_count u32 |
//!   per block: addr u64 | mhr_len u8 | mhr tuples (u16 each) |
//!              pht_len u32 | per entry: key tuples (depth u16s) |
//!                                       prediction u16 | misses u8
//! ```
//!
//! The format is self-describing enough to validate on restore; a
//! restored predictor is bit-for-bit equivalent to the original (same
//! predictions, same memory accounting, same future evolution).

use crate::mhr::Mhr;
use crate::pht::Pht;
use crate::predictor::CosmosPredictor;
use crate::tuple::PredTuple;
use stache::BlockAddr;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"CPS1";

/// A malformed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// The input ended mid-structure.
    Truncated,
    /// A field held an invalid value.
    BadField {
        /// Which field was malformed.
        field: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a predictor snapshot"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadField { field } => write!(f, "malformed snapshot field: {field}"),
        }
    }
}

impl Error for SnapshotError {}

/// Serialises a predictor's full state.
pub fn save(predictor: &CosmosPredictor) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(predictor.depth() as u8);
    out.push(predictor.filter_max());
    let blocks = predictor.snapshot_blocks();
    out.extend_from_slice(&(blocks.len() as u32).to_be_bytes());
    for (addr, mhr, pht) in blocks {
        out.extend_from_slice(&addr.number().to_be_bytes());
        let history = mhr.contents();
        out.push(history.len() as u8);
        for t in &history {
            out.extend_from_slice(&t.pack().to_be_bytes());
        }
        match pht {
            None => out.extend_from_slice(&0u32.to_be_bytes()),
            Some(pht) => {
                out.extend_from_slice(&(pht.len() as u32).to_be_bytes());
                for (key, entry) in pht.iter() {
                    // The packed key's lanes serialise oldest-first as
                    // depth 16-bit tuples — the same wire layout the
                    // `Vec<PredTuple>`-keyed table produced.
                    for lane in (0..predictor.depth()).rev() {
                        out.extend_from_slice(&((key >> (16 * lane)) as u16).to_be_bytes());
                    }
                    out.extend_from_slice(&entry.prediction.pack().to_be_bytes());
                    out.push(entry.misses);
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn tuple(&mut self) -> Result<PredTuple, SnapshotError> {
        PredTuple::unpack(self.u16()?).ok_or(SnapshotError::BadField { field: "tuple" })
    }
}

/// Restores a predictor from a snapshot.
///
/// # Errors
///
/// Fails on malformed input; never panics.
pub fn restore(bytes: &[u8]) -> Result<CosmosPredictor, SnapshotError> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let depth = r.u8()? as usize;
    if depth == 0 || depth > crate::packed::MAX_DEPTH {
        return Err(SnapshotError::BadField { field: "depth" });
    }
    let filter_max = r.u8()?;
    let block_count = r.u32()?;
    let mut predictor = CosmosPredictor::new(depth, filter_max);
    for _ in 0..block_count {
        let addr = BlockAddr::new(r.u64()?);
        let mhr_len = r.u8()? as usize;
        if mhr_len > depth {
            return Err(SnapshotError::BadField { field: "mhr_len" });
        }
        let mut mhr = Mhr::new(depth);
        for _ in 0..mhr_len {
            mhr.shift(r.tuple()?);
        }
        let pht_len = r.u32()? as usize;
        let pht = if pht_len == 0 {
            None
        } else {
            let mut pht = Pht::new();
            for _ in 0..pht_len {
                let mut key = 0u64;
                for _ in 0..depth {
                    key = (key << 16) | u64::from(r.tuple()?.pack());
                }
                let prediction = r.tuple()?;
                let misses = r.u8()?;
                pht.restore_entry(key, prediction, misses);
            }
            Some(pht)
        };
        predictor.restore_block(addr, mhr, pht);
    }
    if r.pos != bytes.len() {
        return Err(SnapshotError::BadField {
            field: "trailing bytes",
        });
    }
    Ok(predictor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessagePredictor;
    use stache::{MsgType, NodeId};

    fn trained(depth: usize, filter: u8, n: usize) -> CosmosPredictor {
        let mut p = CosmosPredictor::new(depth, filter);
        for i in 0..n {
            let block = BlockAddr::new((i % 7) as u64);
            let tuple = PredTuple::new(
                NodeId::new((i * 3) % 16),
                MsgType::from_code((i % 12) as u8).unwrap(),
            );
            p.observe(block, tuple);
        }
        p
    }

    #[test]
    fn roundtrip_preserves_predictions_and_memory() {
        for depth in [1usize, 2, 3] {
            let original = trained(depth, 1, 200);
            let restored = restore(&save(&original)).unwrap();
            assert_eq!(original.memory(), restored.memory());
            for b in 0..7u64 {
                assert_eq!(
                    original.predict(BlockAddr::new(b)),
                    restored.predict(BlockAddr::new(b)),
                    "depth {depth} block {b}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_preserves_future_evolution() {
        let mut original = trained(2, 1, 150);
        let mut restored = restore(&save(&original)).unwrap();
        // Continue both with the same stream: they stay identical.
        for i in 0..100 {
            let block = BlockAddr::new((i % 5) as u64);
            let tuple = PredTuple::new(
                NodeId::new((i * 5) % 16),
                MsgType::from_code((i % 12) as u8).unwrap(),
            );
            assert_eq!(original.predict(block), restored.predict(block), "step {i}");
            original.observe(block, tuple);
            restored.observe(block, tuple);
        }
        assert_eq!(original.memory(), restored.memory());
    }

    #[test]
    fn empty_predictor_roundtrips() {
        let p = CosmosPredictor::new(3, 2);
        let restored = restore(&save(&p)).unwrap();
        assert_eq!(restored.depth(), 3);
        assert_eq!(restored.filter_max(), 2);
        assert_eq!(restored.memory().mhr_entries, 0);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(matches!(restore(b"NOPE"), Err(SnapshotError::BadMagic)));
        assert!(matches!(restore(b"CP"), Err(SnapshotError::Truncated)));
        let mut good = save(&trained(1, 0, 50));
        good.truncate(good.len() - 3);
        assert!(matches!(restore(&good), Err(SnapshotError::Truncated)));
        let mut trailing = save(&trained(1, 0, 50));
        trailing.push(0);
        assert!(matches!(
            restore(&trailing),
            Err(SnapshotError::BadField {
                field: "trailing bytes"
            })
        ));
    }

    #[test]
    fn depth_zero_snapshot_rejected() {
        let mut bytes = save(&CosmosPredictor::new(1, 0));
        bytes[4] = 0; // depth field
        assert!(matches!(
            restore(&bytes),
            Err(SnapshotError::BadField { field: "depth" })
        ));
    }
}
