//! Memory accounting — the paper's Table 7.
//!
//! Table 7 reports, per application and MHR depth:
//!
//! * **Ratio** — total PHT entries ÷ total MHR entries (MHR entries are
//!   blocks referenced at least once; blocks with ≤ depth references
//!   allocate no PHT);
//! * **Ovhd** — average overhead per 128-byte block as a percentage of the
//!   block size:
//!
//! ```text
//! Ovhd = (tuple_size * [depth + Ratio * (depth + 1)] * 100 / 128) %
//! ```
//!
//! with a 2-byte tuple (12-bit processor + 4-bit type). An MHR costs
//! `depth` tuples; each PHT entry costs `depth + 1` tuples (its key plus
//! its prediction).

use crate::tuple::PredTuple;
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// The reference block size Table 7 normalises against.
pub const TABLE7_BLOCK_BYTES: usize = 128;

/// Table sizes of one or more predictors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryFootprint {
    /// MHR entries (blocks referenced at least once).
    pub mhr_entries: usize,
    /// Total PHT entries.
    pub pht_entries: usize,
}

impl MemoryFootprint {
    /// The PHT-to-MHR ratio (Table 7's `Ratio`); 0 when no MHRs exist.
    pub fn ratio(&self) -> f64 {
        if self.mhr_entries == 0 {
            return 0.0;
        }
        self.pht_entries as f64 / self.mhr_entries as f64
    }

    /// Table 7's `Ovhd`: average per-block memory overhead as a percentage
    /// of a 128-byte block, for a predictor of the given depth.
    pub fn overhead_percent(&self, depth: usize) -> f64 {
        overhead_percent(depth, self.ratio())
    }

    /// Raw bytes consumed by the tables (tuples only, as the paper counts).
    pub fn bytes(&self, depth: usize) -> usize {
        PredTuple::SIZE_BYTES * (self.mhr_entries * depth + self.pht_entries * (depth + 1))
    }
}

impl Add for MemoryFootprint {
    type Output = MemoryFootprint;
    fn add(self, rhs: MemoryFootprint) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.mhr_entries + rhs.mhr_entries,
            pht_entries: self.pht_entries + rhs.pht_entries,
        }
    }
}

impl Sum for MemoryFootprint {
    fn sum<I: Iterator<Item = MemoryFootprint>>(iter: I) -> MemoryFootprint {
        iter.fold(MemoryFootprint::default(), Add::add)
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MHR entries, {} PHT entries (ratio {:.2})",
            self.mhr_entries,
            self.pht_entries,
            self.ratio()
        )
    }
}

/// Table 7's overhead formula, exposed directly for the harness:
/// `(tuple_size * [depth + ratio * (depth + 1)] * 100 / 128) %`.
pub fn overhead_percent(depth: usize, ratio: f64) -> f64 {
    PredTuple::SIZE_BYTES as f64 * (depth as f64 + ratio * (depth as f64 + 1.0)) * 100.0
        / TABLE7_BLOCK_BYTES as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty() {
        assert_eq!(MemoryFootprint::default().ratio(), 0.0);
    }

    #[test]
    fn paper_example_overheads() {
        // Table 7, appbt depth 1: Ratio 1.2 -> Ovhd 5.4% (5.3125 exactly;
        // the paper's ratio is rounded to one decimal).
        assert!((overhead_percent(1, 1.2) - 5.3125).abs() < 0.01);
        // Table 7, barnes depth 3: Ratio 9.3 -> Ovhd 63.0%.
        assert!((overhead_percent(3, 9.3) - 62.8125).abs() < 0.2);
        // Table 7, dsmc depth 4: Ratio 0.3 -> Ovhd 8.9%.
        assert!((overhead_percent(4, 0.3) - 8.59).abs() < 0.35);
    }

    #[test]
    fn footprint_math() {
        let a = MemoryFootprint {
            mhr_entries: 10,
            pht_entries: 12,
        };
        let b = MemoryFootprint {
            mhr_entries: 5,
            pht_entries: 3,
        };
        let s: MemoryFootprint = [a, b].into_iter().sum();
        assert_eq!(s.mhr_entries, 15);
        assert_eq!(s.pht_entries, 15);
        assert!((s.ratio() - 1.0).abs() < 1e-12);
        // depth 2: bytes = 2 * (15*2 + 15*3) = 150.
        assert_eq!(s.bytes(2), 150);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn overhead_matches_footprint_method() {
        let fp = MemoryFootprint {
            mhr_entries: 100,
            pht_entries: 170,
        };
        assert!((fp.overhead_percent(2) - overhead_percent(2, 1.7)).abs() < 1e-12);
    }
}
