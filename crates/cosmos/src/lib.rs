#![warn(missing_docs)]

//! # cosmos — the Cosmos coherence message predictor
//!
//! The core contribution of *Using Prediction to Accelerate Coherence
//! Protocols* (Mukherjee & Hill, ISCA 1998): a two-level adaptive predictor,
//! derived from Yeh & Patt's PAp branch predictor, that predicts the
//! `<sender, message-type>` tuple of the **next incoming coherence
//! message** for a cache block.
//!
//! One Cosmos predictor sits beside every cache and every directory:
//!
//! 1. The block address indexes the **Message History Table** (MHT); each
//!    entry is a **Message History Register** (MHR) holding the last
//!    `depth` `<sender, type>` tuples received for that block.
//! 2. The MHR contents index that block's **Pattern History Table** (PHT),
//!    whose entry — if present — is the predicted next tuple. PHT entries
//!    may carry a saturating-counter noise filter (§3.6).
//!
//! The crate also provides:
//!
//! * [`directed`] — reimplementations of the *directed* predictors the
//!   paper compares against in §7 (migratory detection, dynamic
//!   self-invalidation, Origin-style read-modify-write, last-tuple);
//! * [`eval`] — the evaluation harness producing overall / per-role /
//!   per-arc / per-iteration accuracies (Tables 5, 6, 8; Figures 6, 7);
//! * [`memory`] — Table 7's PHT/MHR ratio and per-block overhead formula;
//! * [`speedup`] — §4.4's analytic speedup model (Figure 5);
//! * [`actions`] — §4.1's prediction→action mapping and a speculative
//!   message-saving estimator.
//!
//! ## Example
//!
//! ```
//! use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
//! use stache::{BlockAddr, MsgType, NodeId};
//!
//! // Figure 3: the directory's predictor for `shared_counter`.
//! let mut p = CosmosPredictor::new(1, 0);
//! let block = BlockAddr::new(42);
//! let from_p1 = PredTuple::new(NodeId::new(1), MsgType::GetRoRequest);
//! let from_p2 = PredTuple::new(NodeId::new(2), MsgType::InvalRoResponse);
//!
//! p.observe(block, from_p1);
//! p.observe(block, from_p2); // learns: after get_ro_request(P1) comes inval_ro_response(P2)
//! p.observe(block, from_p1);
//! assert_eq!(p.predict(block), Some(from_p2));
//! ```

pub mod actions;
pub mod confidence;
pub mod directed;
pub mod eval;
pub mod evicting;
pub mod fasthash;
pub mod hybrid;
pub mod lookahead;
pub mod macroblock;
pub mod memory;
pub mod mhr;
pub mod packed;
pub mod pht;
pub mod prealloc;
pub mod predictor;
pub mod shared_pht;
pub mod snapshot;
pub mod speedup;
pub mod tage;
pub mod tuple;

pub use confidence::ConfidenceCosmos;
pub use eval::{AccuracyReport, Counts, EvalOptions, StreamEval, Verdict};
pub use evicting::EvictingCosmos;
pub use fasthash::{FastMap, FastSet, FxHasher};
pub use hybrid::HybridCosmos;
pub use lookahead::{evaluate_lookahead, LookaheadReport};
pub use macroblock::MacroblockCosmos;
pub use memory::MemoryFootprint;
pub use mhr::Mhr;
pub use packed::PackedHistory;
pub use pht::{Pht, PhtEntry};
pub use prealloc::PreallocCosmos;
pub use predictor::{CosmosPredictor, TypeOnlyCosmos};
pub use shared_pht::SharedPhtCosmos;
pub use tage::{CosmosTageHybrid, TageConfig, TagePredictor};
pub use tuple::PredTuple;

use stache::BlockAddr;

/// Internal predictor-core counters, exported (separately from the
/// accuracy metrics) as `cosmos.core.*` so Table 7's memory-model numbers
/// stay auditable after the packed-layout change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// PHT probes (lookups plus updates) performed over the predictor's
    /// lifetime.
    pub pht_probes: u64,
    /// Bytes the predictor's hash tables have *reserved* (capacity, not
    /// occupancy) — the allocation cost of the FastMap layout.
    pub table_capacity_bytes: u64,
}

impl CoreStats {
    /// Accumulates another predictor's counters into this one.
    pub fn merge(&mut self, other: CoreStats) {
        self.pht_probes += other.pht_probes;
        self.table_capacity_bytes += other.table_capacity_bytes;
    }
}

/// A predictor of the next incoming coherence message for a block.
///
/// One instance serves one agent (a cache or a directory at one node). The
/// evaluation harness calls [`predict`](MessagePredictor::predict) *before*
/// [`observe`](MessagePredictor::observe) for every incoming message and
/// scores the prediction against the observation.
pub trait MessagePredictor {
    /// A short name for tables and reports.
    fn name(&self) -> &'static str;

    /// Predicts the next incoming `<sender, type>` for `block`, or `None`
    /// if the predictor has no basis for a prediction yet.
    fn predict(&self, block: BlockAddr) -> Option<PredTuple>;

    /// Feeds the actually-received tuple for `block` into the predictor.
    fn observe(&mut self, block: BlockAddr, tuple: PredTuple);

    /// The predictor's table sizes, for memory accounting (Table 7).
    /// Predictors without per-block tables report an empty footprint.
    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint::default()
    }

    /// Internal table counters for performance auditing (`cosmos.core.*`).
    /// Predictors without an instrumented core report zeros.
    fn core_stats(&self) -> CoreStats {
        CoreStats::default()
    }

    /// Modelled storage cost of this predictor instance in **bits** — the
    /// currency of the `repro tournament` accuracy-vs-bits frontier. Each
    /// implementation documents its counting rule (Cosmos uses Table 7's
    /// tuple accounting; TAGE-MP its fixed table geometry plus history
    /// registers; the directed predictors their per-block tracking state).
    /// Predictors that do not model storage report 0, which the frontier
    /// renders as unaccounted rather than free.
    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    /// The lib.rs doc example, kept as a compiled test too.
    #[test]
    fn figure_three_walkthrough() {
        let mut p = CosmosPredictor::new(1, 0);
        let block = BlockAddr::new(42);
        let t1 = PredTuple::new(NodeId::new(1), MsgType::GetRoRequest);
        let t2 = PredTuple::new(NodeId::new(2), MsgType::InvalRoResponse);
        assert_eq!(p.predict(block), None);
        p.observe(block, t1);
        assert_eq!(p.predict(block), None, "no pattern learned yet");
        p.observe(block, t2);
        p.observe(block, t1);
        assert_eq!(p.predict(block), Some(t2));
    }
}
