//! The §3.7 implementation proposal: statically preallocated PHT entries
//! plus a bounded dynamic pool.
//!
//! "We could preallocate four pattern history entries corresponding to
//! each cache block. If a cache block needs more pattern histories, then
//! it can allocate them from a common pool of dynamically allocated
//! memory in the same way LimitLESS directory entries capture the list of
//! sharers." This module implements exactly that: each block owns
//! `static_entries` slots; overflow goes to a shared pool of
//! `pool_capacity` slots; when the pool is full, the least-recently-used
//! pooled pattern is evicted (forgotten).
//!
//! Unlike the unbounded [`CosmosPredictor`](crate::CosmosPredictor), this
//! variant has a *hard* memory bound, making the §3.7 cost model concrete
//! — and its accuracy under pool pressure is measurable (`repro
//! variants`).

use crate::fasthash::FastMap;
use crate::memory::MemoryFootprint;
use crate::packed::{self, PackedHistory};
use crate::tuple::PredTuple;
use crate::MessagePredictor;
use stache::BlockAddr;

/// A `(block, packed history)` pattern key — two words, no allocation.
type PatternKey = (BlockAddr, u64);

#[derive(Debug, Clone)]
struct Slot {
    prediction: PredTuple,
    misses: u8,
    /// Whether the slot lives in the shared pool (true) or the block's
    /// static allocation (false).
    pooled: bool,
    /// LRU stamp for pooled slots.
    last_used: u64,
}

/// A Cosmos predictor with the §3.7 bounded memory layout.
#[derive(Debug, Clone)]
pub struct PreallocCosmos {
    depth: usize,
    filter_max: u8,
    static_entries: usize,
    pool_capacity: usize,
    histories: FastMap<BlockAddr, PackedHistory>,
    entries: FastMap<PatternKey, Slot>,
    static_used: FastMap<BlockAddr, usize>,
    pool_used: usize,
    clock: u64,
    /// Pooled patterns evicted under pressure (a measure of how far the
    /// paper's "four static entries" assumption is from a workload).
    pub evictions: u64,
}

impl PreallocCosmos {
    /// Creates a predictor with the paper's suggested defaults: four
    /// static entries per block.
    pub fn paper(depth: usize, pool_capacity: usize) -> Self {
        PreallocCosmos::new(depth, 1, 4, pool_capacity)
    }

    /// Creates a predictor: MHR `depth`, noise filter `filter_max`,
    /// `static_entries` per block, and a shared pool of `pool_capacity`.
    pub fn new(depth: usize, filter_max: u8, static_entries: usize, pool_capacity: usize) -> Self {
        assert!(depth > 0, "MHR depth must be at least 1");
        assert!(
            depth <= packed::MAX_DEPTH,
            "MHR depth {depth} exceeds the packed-word maximum of {}",
            packed::MAX_DEPTH
        );
        PreallocCosmos {
            depth,
            filter_max,
            static_entries,
            pool_capacity,
            histories: FastMap::default(),
            entries: FastMap::default(),
            static_used: FastMap::default(),
            pool_used: 0,
            clock: 0,
            evictions: 0,
        }
    }

    /// Patterns currently held in the shared pool.
    pub fn pool_used(&self) -> usize {
        self.pool_used
    }

    fn evict_lru_pooled(&mut self) {
        // `last_used` stamps are unique (one clock tick per observe), so
        // the minimum is well-defined regardless of table iteration order.
        if let Some(key) = self
            .entries
            .iter()
            .filter(|(_, s)| s.pooled)
            .min_by_key(|(_, s)| s.last_used)
            .map(|(k, _)| *k)
        {
            self.entries.remove(&key);
            self.pool_used -= 1;
            self.evictions += 1;
        }
    }

    fn insert_pattern(&mut self, key: PatternKey, prediction: PredTuple) {
        let block = key.0;
        let used = self.static_used.entry(block).or_insert(0);
        let pooled = if *used < self.static_entries {
            *used += 1;
            false
        } else {
            if self.pool_used >= self.pool_capacity {
                self.evict_lru_pooled();
            }
            if self.pool_used >= self.pool_capacity {
                // Pool capacity zero: the pattern cannot be stored at all.
                return;
            }
            self.pool_used += 1;
            true
        };
        self.entries.insert(
            key,
            Slot {
                prediction,
                misses: 0,
                pooled,
                last_used: self.clock,
            },
        );
    }
}

impl MessagePredictor for PreallocCosmos {
    fn name(&self) -> &'static str {
        "cosmos-prealloc"
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let key = self.histories.get(&block)?.key()?;
        self.entries.get(&(block, key)).map(|s| s.prediction)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        self.clock += 1;
        let depth = self.depth;
        let history = self
            .histories
            .entry(block)
            .or_insert_with(|| PackedHistory::new(depth));
        if let Some(packed_key) = history.key() {
            let key = (block, packed_key);
            match self.entries.get_mut(&key) {
                Some(slot) => {
                    slot.last_used = self.clock;
                    if slot.prediction == tuple {
                        slot.misses = 0;
                    } else if slot.misses < self.filter_max {
                        slot.misses += 1;
                    } else {
                        slot.prediction = tuple;
                        slot.misses = 0;
                    }
                }
                None => self.insert_pattern(key, tuple),
            }
        }
        self.histories
            .get_mut(&block)
            .expect("just inserted")
            .push(tuple.pack());
    }

    fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            mhr_entries: self.histories.len(),
            pht_entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stache::{MsgType, NodeId};

    fn t(n: usize, m: MsgType) -> PredTuple {
        PredTuple::new(NodeId::new(n), m)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    /// Drives `n` distinct single-tuple patterns through block `blk`.
    fn distinct_patterns(p: &mut PreallocCosmos, blk: u64, n: usize) {
        for i in 0..n {
            p.observe(b(blk), t(i + 1, MsgType::GetRoRequest));
        }
    }

    #[test]
    fn behaves_like_cosmos_within_the_static_allocation() {
        let mut p = PreallocCosmos::paper(1, 16);
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        p.observe(b(1), t(2, MsgType::GetRwRequest));
        p.observe(b(1), t(1, MsgType::GetRoRequest));
        assert_eq!(p.predict(b(1)), Some(t(2, MsgType::GetRwRequest)));
        assert_eq!(p.pool_used(), 0, "two patterns fit the static four");
    }

    #[test]
    fn overflow_goes_to_the_pool() {
        let mut p = PreallocCosmos::new(1, 0, 2, 8);
        // 5 distinct history values -> 4 patterns; 2 static + 2 pooled.
        distinct_patterns(&mut p, 1, 5);
        assert_eq!(p.memory().pht_entries, 4);
        assert_eq!(p.pool_used(), 2);
    }

    #[test]
    fn pool_pressure_evicts_lru() {
        let mut p = PreallocCosmos::new(1, 0, 1, 2);
        // 6 distinct patterns on one block: 1 static + 2 pooled max.
        distinct_patterns(&mut p, 1, 7);
        assert_eq!(p.memory().pht_entries, 3);
        assert!(p.evictions > 0);
    }

    #[test]
    fn zero_pool_still_serves_static_patterns() {
        let mut p = PreallocCosmos::new(1, 0, 1, 0);
        let a = t(1, MsgType::GetRoRequest);
        let bb = t(2, MsgType::GetRwRequest);
        for _ in 0..3 {
            p.observe(b(1), a);
            p.observe(b(1), bb);
        }
        p.observe(b(1), a);
        // The first-learned pattern (a -> b) holds the single static slot.
        assert_eq!(p.predict(b(1)), Some(bb));
        assert_eq!(p.pool_used(), 0);
    }

    #[test]
    fn bounded_memory_under_adversarial_streams() {
        let mut p = PreallocCosmos::new(1, 0, 4, 10);
        for i in 0..500usize {
            p.observe(b((i % 7) as u64), t((i * 13) % 100, MsgType::GetRoRequest));
        }
        // 7 blocks x 4 static + 10 pooled at most.
        assert!(p.memory().pht_entries <= 7 * 4 + 10);
    }

    #[test]
    fn filter_applies_to_stored_patterns() {
        let mut p = PreallocCosmos::new(1, 1, 4, 4);
        let a = t(1, MsgType::GetRoRequest);
        let good = t(2, MsgType::GetRwRequest);
        let noise = t(3, MsgType::UpgradeRequest);
        for _ in 0..2 {
            p.observe(b(1), a);
            p.observe(b(1), good);
        }
        p.observe(b(1), a);
        p.observe(b(1), noise); // one miss: filtered
        p.observe(b(1), a);
        assert_eq!(p.predict(b(1)), Some(good));
    }
}
