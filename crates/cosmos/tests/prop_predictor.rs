//! Property tests for the Cosmos predictor: shift-register laws, filter
//! semantics against a reference model, determinism, and convergence on
//! periodic streams.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use cosmos::{CosmosPredictor, MessagePredictor, Mhr, PredTuple};
use proptest::prelude::*;
use stache::{BlockAddr, MsgType, NodeId};
use std::collections::HashMap;

fn tuple_strategy() -> impl Strategy<Value = PredTuple> {
    (0usize..16, 0u8..12)
        .prop_map(|(n, c)| PredTuple::new(NodeId::new(n), MsgType::from_code(c).unwrap()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The MHR behaves like a bounded FIFO of the last `depth` tuples.
    #[test]
    fn mhr_is_a_bounded_fifo(
        depth in 1usize..5,
        tuples in prop::collection::vec(tuple_strategy(), 0..40),
    ) {
        let mut mhr = Mhr::new(depth);
        let mut model: Vec<PredTuple> = Vec::new();
        for t in tuples {
            mhr.shift(t);
            model.push(t);
            if model.len() > depth {
                model.remove(0);
            }
            prop_assert_eq!(mhr.contents(), model.clone());
            prop_assert_eq!(mhr.is_full(), model.len() == depth);
            if let Some(key) = mhr.key() {
                prop_assert_eq!(key, cosmos::packed::pack_key(&model));
            }
        }
    }

    /// The packed tuple encoding round-trips.
    #[test]
    fn tuple_pack_roundtrip(t in tuple_strategy()) {
        prop_assert_eq!(PredTuple::unpack(t.pack()), Some(t));
    }

    /// The full predictor agrees with a direct reference model: a map from
    /// (block, last-depth-tuples) to a prediction with a saturating miss
    /// counter.
    #[test]
    fn predictor_matches_reference_model(
        depth in 1usize..4,
        filter_max in 0u8..3,
        stream in prop::collection::vec((0u64..3, tuple_strategy()), 0..120),
    ) {
        let mut sut = CosmosPredictor::new(depth, filter_max);
        let mut histories: HashMap<u64, Vec<PredTuple>> = HashMap::new();
        let mut pht: HashMap<(u64, Vec<PredTuple>), (PredTuple, u8)> = HashMap::new();

        for (block, tuple) in stream {
            let b = BlockAddr::new(block);
            let history = histories.entry(block).or_default();
            // Reference prediction.
            let expected = if history.len() == depth {
                pht.get(&(block, history.clone())).map(|&(p, _)| p)
            } else {
                None
            };
            prop_assert_eq!(sut.predict(b), expected);
            // Reference update.
            if history.len() == depth {
                let key = (block, history.clone());
                match pht.get_mut(&key) {
                    None => {
                        pht.insert(key, (tuple, 0));
                    }
                    Some((pred, misses)) => {
                        if *pred == tuple {
                            *misses = 0;
                        } else if *misses < filter_max {
                            *misses += 1;
                        } else {
                            *pred = tuple;
                            *misses = 0;
                        }
                    }
                }
                history.remove(0);
            }
            history.push(tuple);
            sut.observe(b, tuple);
        }
    }

    /// On a purely periodic stream, a filterless Cosmos of depth >= 1
    /// reaches 100% accuracy after at most two periods, provided each
    /// history uniquely determines the successor (period > depth
    /// guarantees distinct windows for a non-repeating period).
    #[test]
    fn periodic_streams_converge(
        depth in 1usize..4,
        period_tuples in prop::collection::vec(tuple_strategy(), 2..6),
        reps in 3usize..6,
    ) {
        // Ensure the period has pairwise-distinct tuples so every window
        // of `depth` tuples is unique within the cycle.
        let mut seen = std::collections::HashSet::new();
        prop_assume!(period_tuples.iter().all(|t| seen.insert(*t)));
        prop_assume!(period_tuples.len() > depth);

        let b = BlockAddr::new(0);
        let mut p = CosmosPredictor::new(depth, 0);
        // Warm up for two full periods.
        for t in period_tuples.iter().cycle().take(period_tuples.len() * 2) {
            p.observe(b, *t);
        }
        // Every subsequent message is predicted exactly.
        for t in period_tuples.iter().cycle().take(period_tuples.len() * reps) {
            prop_assert_eq!(p.predict(b), Some(*t));
            p.observe(b, *t);
        }
    }

    /// Determinism: identical streams produce identical predictor state
    /// and predictions.
    #[test]
    fn predictor_is_deterministic(
        stream in prop::collection::vec((0u64..4, tuple_strategy()), 0..80),
    ) {
        let mut a = CosmosPredictor::new(2, 1);
        let mut b = CosmosPredictor::new(2, 1);
        for (block, tuple) in &stream {
            let blk = BlockAddr::new(*block);
            prop_assert_eq!(a.predict(blk), b.predict(blk));
            a.observe(blk, *tuple);
            b.observe(blk, *tuple);
        }
        prop_assert_eq!(a.mhr_entries(), b.mhr_entries());
        prop_assert_eq!(a.pht_entries(), b.pht_entries());
    }

    /// Memory accounting: MHR entries equal distinct blocks observed, and
    /// PHT entries never exceed (observations - depth) summed per block.
    #[test]
    fn memory_accounting_bounds(
        depth in 1usize..4,
        stream in prop::collection::vec((0u64..5, tuple_strategy()), 0..100),
    ) {
        let mut p = CosmosPredictor::new(depth, 0);
        let mut per_block: HashMap<u64, usize> = HashMap::new();
        for (block, tuple) in &stream {
            p.observe(BlockAddr::new(*block), *tuple);
            *per_block.entry(*block).or_insert(0) += 1;
        }
        prop_assert_eq!(p.mhr_entries(), per_block.len());
        let max_pht: usize =
            per_block.values().map(|&n| n.saturating_sub(depth)).sum();
        prop_assert!(p.pht_entries() <= max_pht);
        // Blocks with <= depth observations allocate no PHT (Table 7 rule):
        if per_block.values().all(|&n| n <= depth) {
            prop_assert_eq!(p.pht_entries(), 0);
        }
    }
}
