//! Property tests for the predictor variants: hard memory bounds hold
//! under adversarial streams, confidence gating never lies about its
//! threshold, macroblock grouping is exactly index-translation, and the
//! evicting table respects capacity and LRU order.

// Property tests need the external `proptest` crate; the feature is a
// placeholder until it can be vendored (see the workspace manifest).
#![cfg(feature = "proptest-tests")]
use cosmos::{
    ConfidenceCosmos, CosmosPredictor, EvictingCosmos, MacroblockCosmos, MessagePredictor,
    PreallocCosmos, PredTuple,
};
use proptest::prelude::*;
use stache::{BlockAddr, MsgType, NodeId};

fn tuple_strategy() -> impl Strategy<Value = PredTuple> {
    (0usize..16, 0u8..12)
        .prop_map(|(n, c)| PredTuple::new(NodeId::new(n), MsgType::from_code(c).unwrap()))
}

fn stream_strategy(blocks: u64, len: usize) -> impl Strategy<Value = Vec<(u64, PredTuple)>> {
    prop::collection::vec((0..blocks, tuple_strategy()), 0..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PreallocCosmos never exceeds its static + pool budget, whatever
    /// the stream does.
    #[test]
    fn prealloc_memory_is_hard_bounded(
        static_entries in 1usize..5,
        pool in 0usize..20,
        stream in stream_strategy(12, 300),
    ) {
        let mut p = PreallocCosmos::new(1, 0, static_entries, pool);
        let mut blocks_seen = std::collections::HashSet::new();
        for (b, t) in stream {
            blocks_seen.insert(b);
            p.observe(BlockAddr::new(b), t);
        }
        let bound = blocks_seen.len() * static_entries + pool;
        prop_assert!(
            p.memory().pht_entries <= bound,
            "{} entries > bound {bound}",
            p.memory().pht_entries
        );
        prop_assert!(p.pool_used() <= pool);
    }

    /// ConfidenceCosmos with threshold 0 predicts exactly like plain
    /// Cosmos with no filter.
    #[test]
    fn confidence_zero_equals_plain(stream in stream_strategy(6, 200)) {
        let mut conf = ConfidenceCosmos::new(2, 0);
        let mut plain = CosmosPredictor::new(2, 0);
        for (b, t) in stream {
            let blk = BlockAddr::new(b);
            prop_assert_eq!(conf.predict(blk), plain.predict(blk));
            conf.observe(blk, t);
            plain.observe(blk, t);
        }
    }

    /// A gated prediction always carries at least the threshold's
    /// confidence.
    #[test]
    fn confidence_gate_is_honest(
        threshold in 0u8..4,
        stream in stream_strategy(6, 200),
    ) {
        let mut p = ConfidenceCosmos::new(1, threshold);
        for (b, t) in stream {
            let blk = BlockAddr::new(b);
            if let Some(answer) = p.predict(blk) {
                let (raw, conf) = p.predict_with_confidence(blk).expect("gated implies raw");
                prop_assert_eq!(answer, raw);
                prop_assert!(conf >= p.threshold());
            }
            p.observe(blk, t);
        }
    }

    /// Raising the threshold can only reduce coverage, never grow it.
    #[test]
    fn higher_threshold_means_fewer_answers(stream in stream_strategy(6, 300)) {
        let mut low = ConfidenceCosmos::new(1, 0);
        let mut high = ConfidenceCosmos::new(1, 2);
        let mut low_answers = 0u32;
        let mut high_answers = 0u32;
        for (b, t) in &stream {
            let blk = BlockAddr::new(*b);
            low_answers += u32::from(low.predict(blk).is_some());
            high_answers += u32::from(high.predict(blk).is_some());
            low.observe(blk, *t);
            high.observe(blk, *t);
        }
        prop_assert!(high_answers <= low_answers);
    }

    /// Macroblock shift 0 is bit-identical to plain Cosmos; any shift is
    /// plain Cosmos over translated addresses.
    #[test]
    fn macroblock_is_index_translation(
        shift in 0u32..5,
        stream in stream_strategy(40, 200),
    ) {
        let mut mb = MacroblockCosmos::new(2, 1, shift);
        let mut plain = CosmosPredictor::new(2, 1);
        for (b, t) in stream {
            let blk = BlockAddr::new(b);
            let translated = BlockAddr::new(b >> shift);
            prop_assert_eq!(mb.predict(blk), plain.predict(translated));
            mb.observe(blk, t);
            plain.observe(translated, t);
        }
        prop_assert_eq!(mb.memory(), plain.memory());
    }

    /// The evicting MHT never exceeds its capacity, and with capacity at
    /// least the working set it equals plain Cosmos.
    #[test]
    fn evicting_capacity_holds(
        capacity in 1usize..10,
        stream in stream_strategy(8, 250),
    ) {
        let mut ev = EvictingCosmos::new(1, 0, capacity);
        for (b, t) in &stream {
            ev.observe(BlockAddr::new(*b), *t);
            prop_assert!(ev.memory().mhr_entries <= capacity);
        }
        if capacity >= 8 {
            let mut ev2 = EvictingCosmos::new(1, 0, capacity);
            let mut plain = CosmosPredictor::new(1, 0);
            for (b, t) in &stream {
                let blk = BlockAddr::new(*b);
                prop_assert_eq!(ev2.predict(blk), plain.predict(blk));
                ev2.observe(blk, *t);
                plain.observe(blk, *t);
            }
            prop_assert_eq!(ev2.evictions, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lookahead accounting is structurally sound: deeper steps can never
    /// be scored more often than shallower ones (every d+1-step score
    /// implies a d-step score from the same chain), and chains issued from
    /// the same tables agree with single-step prediction at distance 1.
    #[test]
    fn lookahead_totals_are_monotone(
        stream in prop::collection::vec((0u64..3, tuple_strategy()), 10..150),
    ) {
        use trace::{MsgRecord, TraceBundle, TraceMeta};
        let mut bundle = TraceBundle::new(TraceMeta::new("prop", 4, 1));
        for (i, (b, t)) in stream.iter().enumerate() {
            bundle.push(MsgRecord {
                time_ns: i as u64,
                node: NodeId::new(0),
                role: stache::Role::Cache,
                block: stache::BlockAddr::new(*b),
                sender: t.sender,
                mtype: t.mtype,
                iteration: 0,
            });
        }
        let report = cosmos::evaluate_lookahead(&bundle, 1, 4);
        for d in 0..3 {
            prop_assert!(
                report.by_distance[d].total >= report.by_distance[d + 1].total,
                "distance {} scored {} < distance {} scored {}",
                d + 1,
                report.by_distance[d].total,
                d + 2,
                report.by_distance[d + 1].total
            );
        }
    }
}
