//! Differential test for the packed-history predictor core.
//!
//! The PHT used to key its entries by `Vec<PredTuple>`; the packed core
//! keys by a `u64` shift-register word. This test keeps the original
//! formulation alive as an executable reference model and replays every
//! small-scale benchmark trace through both, asserting the predictions
//! agree tuple-for-tuple at every message, across the full depth and
//! filter grid the tables sweep.

use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use simx::SystemConfig;
use stache::{BlockAddr, NodeId, ProtocolConfig, Role};
use std::collections::HashMap;
use trace::TraceBundle;
use workloads::{run_to_trace, small_suite};

/// The pre-optimization predictor, verbatim: a `Vec<PredTuple>` history
/// per block and a `Vec<PredTuple>`-keyed pattern table with the paper's
/// saturating miss filter.
struct RefBlock {
    history: Vec<PredTuple>,
    pht: HashMap<Vec<PredTuple>, (PredTuple, u8)>,
}

struct RefPredictor {
    depth: usize,
    filter_max: u8,
    blocks: HashMap<BlockAddr, RefBlock>,
}

impl RefPredictor {
    fn new(depth: usize, filter_max: u8) -> Self {
        RefPredictor {
            depth,
            filter_max,
            blocks: HashMap::new(),
        }
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        let state = self.blocks.get(&block)?;
        if state.history.len() < self.depth {
            return None;
        }
        state.pht.get(&state.history).map(|&(p, _)| p)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let state = self.blocks.entry(block).or_insert_with(|| RefBlock {
            history: Vec::new(),
            pht: HashMap::new(),
        });
        if state.history.len() == self.depth {
            match state.pht.get_mut(&state.history) {
                None => {
                    state.pht.insert(state.history.clone(), (tuple, 0));
                }
                Some((pred, misses)) => {
                    if *pred == tuple {
                        *misses = 0;
                    } else if *misses < self.filter_max {
                        *misses += 1;
                    } else {
                        *pred = tuple;
                        *misses = 0;
                    }
                }
            }
        }
        state.history.push(tuple);
        if state.history.len() > self.depth {
            state.history.remove(0);
        }
    }
}

fn small_traces() -> Vec<TraceBundle> {
    small_suite()
        .into_iter()
        .map(|mut w| {
            run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()))
        })
        .collect()
}

/// Replays one trace through per-agent fleets of both implementations and
/// asserts every prediction matches.
fn assert_differential(bundle: &TraceBundle, depth: usize, filter_max: u8) {
    let mut sut: HashMap<(NodeId, Role), CosmosPredictor> = HashMap::new();
    let mut reference: HashMap<(NodeId, Role), RefPredictor> = HashMap::new();
    let app = &bundle.meta().app;
    for (i, r) in bundle.records().iter().enumerate() {
        let fast = sut
            .entry((r.node, r.role))
            .or_insert_with(|| CosmosPredictor::new(depth, filter_max));
        let slow = reference
            .entry((r.node, r.role))
            .or_insert_with(|| RefPredictor::new(depth, filter_max));
        let observed = PredTuple::new(r.sender, r.mtype);
        assert_eq!(
            fast.predict(r.block),
            slow.predict(r.block),
            "{app} depth {depth} filter {filter_max}: record {i} diverged"
        );
        fast.observe(r.block, observed);
        slow.observe(r.block, observed);
    }
    // Final table shapes agree too.
    for (key, fast) in &sut {
        let slow = &reference[key];
        assert_eq!(fast.mhr_entries(), slow.blocks.len());
        assert_eq!(
            fast.pht_entries(),
            slow.blocks.values().map(|b| b.pht.len()).sum::<usize>()
        );
    }
}

#[test]
fn packed_core_matches_vec_keyed_reference_on_all_benchmarks() {
    for bundle in &small_traces() {
        for depth in 1..=4 {
            for filter_max in 0..=2 {
                assert_differential(bundle, depth, filter_max);
            }
        }
    }
}
