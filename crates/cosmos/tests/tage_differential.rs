//! Differential test for the TAGE-MP predictor core.
//!
//! `TagePredictor` keeps each block's history in a packed `u64` shift
//! register and masks it per table. This reference model keeps the naive
//! formulation instead — a `Vec<PredTuple>` per block, with each table's
//! key packed fresh from the newest `L_i` tuples of the slice — and
//! mirrors the scalar update rules one by one. Every small-scale
//! benchmark trace is replayed through both at each budget point,
//! asserting the predictions agree tuple-for-tuple at every message.

use cosmos::fasthash::FastHash;
use cosmos::packed::{self, pack_key};
use cosmos::{MessagePredictor, PredTuple, TageConfig, TagePredictor};
use simx::SystemConfig;
use stache::{BlockAddr, NodeId, ProtocolConfig, Role};
use std::collections::HashMap;
use std::hash::BuildHasher;
use trace::TraceBundle;
use workloads::{run_to_trace, small_suite};

const CTR_MAX: u8 = 7;
const U_MAX: u8 = 3;
const HYST_MAX: u8 = 3;

#[derive(Clone, Copy, Default)]
struct RefBase {
    valid: bool,
    pred: u16,
    hyst: u8,
}

#[derive(Clone, Copy, Default)]
struct RefTagged {
    valid: bool,
    tag: u16,
    pred: u16,
    ctr: u8,
    u: u8,
}

/// The unpacked reference: identical geometry and hash math, but block
/// histories held as plain tuple vectors (newest last).
struct RefTage {
    config: TageConfig,
    base: Vec<RefBase>,
    tables: Vec<Vec<RefTagged>>,
    histories: HashMap<BlockAddr, Vec<PredTuple>>,
}

impl RefTage {
    fn new(config: TageConfig) -> Self {
        let base = vec![RefBase::default(); 1 << config.base_bits];
        let tables = (0..config.num_tables())
            .map(|_| vec![RefTagged::default(); 1 << config.tagged_bits])
            .collect();
        RefTage {
            config,
            base,
            tables,
            histories: HashMap::new(),
        }
    }

    /// The per-table hash, built from the newest `L_i` tuples packed on
    /// the spot rather than masked out of a resident register.
    fn table_hash(&self, table: usize, block: BlockAddr, hist: &[PredTuple]) -> u64 {
        let len = self.config.hist_lens[table];
        let masked = pack_key(&hist[hist.len() - len..]);
        FastHash::default().hash_one((block.number(), masked, table as u64))
    }

    fn index_of(&self, hash: u64, bits: u32) -> usize {
        (hash & ((1u64 << bits) - 1)) as usize
    }

    fn tag_of(&self, hash: u64) -> u16 {
        ((hash >> 32) & ((1u64 << self.config.tag_bits) - 1)) as u16
    }

    fn base_index(&self, block: BlockAddr) -> usize {
        let h = FastHash::default().hash_one(block.number());
        self.index_of(h, self.config.base_bits)
    }

    /// (provider table or None=base, prediction, ctr) matches, longest
    /// history first, then the chosen answer under `use_alt_on_na`.
    fn lookup(&self, block: BlockAddr) -> (Option<(Option<usize>, u16)>, Option<u16>) {
        let empty = Vec::new();
        let hist = self.histories.get(&block).unwrap_or(&empty);
        let mut matches: Vec<(Option<usize>, u16, u8)> = Vec::new();
        for i in (0..self.config.num_tables()).rev() {
            if matches.len() == 2 {
                break;
            }
            if hist.len() < self.config.hist_lens[i] {
                continue;
            }
            let h = self.table_hash(i, block, hist);
            let e = &self.tables[i][self.index_of(h, self.config.tagged_bits)];
            if e.valid && e.tag == self.tag_of(h) {
                matches.push((Some(i), e.pred, e.ctr));
            }
        }
        if matches.len() < 2 {
            let b = &self.base[self.base_index(block)];
            if b.valid {
                matches.push((None, b.pred, CTR_MAX));
            }
        }
        let provider = matches.first().map(|&(s, p, _)| (s, p));
        let chosen = match matches.first() {
            Some(&(_, _, 0)) => matches.get(1).or(matches.first()).map(|&(_, p, _)| p),
            Some(&(_, p, _)) => Some(p),
            None => None,
        };
        (provider, chosen)
    }

    fn predict(&self, block: BlockAddr) -> Option<PredTuple> {
        self.lookup(block).1.and_then(PredTuple::unpack)
    }

    fn observe(&mut self, block: BlockAddr, tuple: PredTuple) {
        let observed = tuple.pack();
        let (provider, chosen) = self.lookup(block);
        let alt = {
            // Recompute the alternate exactly as lookup orders matches.
            let empty = Vec::new();
            let hist = self.histories.get(&block).unwrap_or(&empty);
            let mut matches: Vec<u16> = Vec::new();
            for i in (0..self.config.num_tables()).rev() {
                if matches.len() == 2 {
                    break;
                }
                if hist.len() < self.config.hist_lens[i] {
                    continue;
                }
                let h = self.table_hash(i, block, hist);
                let e = &self.tables[i][self.index_of(h, self.config.tagged_bits)];
                if e.valid && e.tag == self.tag_of(h) {
                    matches.push(e.pred);
                }
            }
            if matches.len() < 2 {
                let b = &self.base[self.base_index(block)];
                if b.valid {
                    matches.push(b.pred);
                }
            }
            matches.get(1).copied()
        };
        let hist_snapshot: Vec<PredTuple> = self.histories.get(&block).cloned().unwrap_or_default();

        if let Some((Some(i), pred)) = provider {
            let h = self.table_hash(i, block, &hist_snapshot);
            let idx = self.index_of(h, self.config.tagged_bits);
            let e = &mut self.tables[i][idx];
            if pred == observed {
                e.ctr = (e.ctr + 1).min(CTR_MAX);
            } else if e.ctr > 0 {
                e.ctr -= 1;
            } else {
                e.pred = observed;
            }
            if let Some(alt_pred) = alt {
                if alt_pred != pred {
                    if pred == observed {
                        e.u = (e.u + 1).min(U_MAX);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
            }
        }

        let idx = self.base_index(block);
        let b = &mut self.base[idx];
        if !b.valid {
            *b = RefBase {
                valid: true,
                pred: observed,
                hyst: 0,
            };
        } else if b.pred == observed {
            b.hyst = (b.hyst + 1).min(HYST_MAX);
        } else if b.hyst > 0 {
            b.hyst -= 1;
        } else {
            b.pred = observed;
        }

        if chosen != Some(observed) {
            let start = match provider {
                Some((Some(i), _)) => i + 1,
                _ => 0,
            };
            let mut allocated = false;
            for i in start..self.config.num_tables() {
                if hist_snapshot.len() < self.config.hist_lens[i] {
                    break;
                }
                let h = self.table_hash(i, block, &hist_snapshot);
                let idx = self.index_of(h, self.config.tagged_bits);
                let tag = self.tag_of(h);
                let e = &mut self.tables[i][idx];
                if !e.valid || e.u == 0 {
                    *e = RefTagged {
                        valid: true,
                        tag,
                        pred: observed,
                        ctr: 0,
                        u: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for i in start..self.config.num_tables() {
                    if hist_snapshot.len() < self.config.hist_lens[i] {
                        break;
                    }
                    let h = self.table_hash(i, block, &hist_snapshot);
                    let idx = self.index_of(h, self.config.tagged_bits);
                    self.tables[i][idx].u = self.tables[i][idx].u.saturating_sub(1);
                }
            }
        }

        let hist = self.histories.entry(block).or_default();
        hist.push(tuple);
        if hist.len() > packed::MAX_DEPTH {
            hist.remove(0);
        }
    }
}

fn small_traces() -> Vec<TraceBundle> {
    small_suite()
        .into_iter()
        .map(|mut w| {
            run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()))
        })
        .collect()
}

fn agent_index(node: NodeId, role: Role) -> usize {
    node.index() * 2
        + match role {
            Role::Cache => 0,
            Role::Directory => 1,
        }
}

#[test]
fn packed_tage_matches_unpacked_reference_on_all_benchmarks() {
    let configs = [TageConfig::small(), TageConfig::mid(), TageConfig::large()];
    for bundle in small_traces() {
        for config in &configs {
            let mut real: Vec<Option<TagePredictor>> = Vec::new();
            let mut reference: Vec<Option<RefTage>> = Vec::new();
            for (n, r) in bundle.records().iter().enumerate() {
                let idx = agent_index(r.node, r.role);
                if idx >= real.len() {
                    real.resize_with(idx + 1, || None);
                    reference.resize_with(idx + 1, || None);
                }
                let p = real[idx].get_or_insert_with(|| TagePredictor::new(config.clone()));
                let q = reference[idx].get_or_insert_with(|| RefTage::new(config.clone()));
                let observed = PredTuple::new(r.sender, r.mtype);
                assert_eq!(
                    p.predict(r.block),
                    q.predict(r.block),
                    "{} record {n} ({} tables): packed and reference disagree",
                    bundle.meta().app,
                    config.num_tables(),
                );
                p.observe(r.block, observed);
                q.observe(r.block, observed);
            }
        }
    }
}

#[test]
fn storage_accounting_matches_table_geometry_exactly() {
    // `table_bits` must be derivable from the config by hand — the
    // frontier's honesty depends on it.
    for config in [TageConfig::small(), TageConfig::mid(), TageConfig::large()] {
        let expected = (1u64 << config.base_bits) * cosmos::tage::BASE_ENTRY_BITS
            + config.num_tables() as u64
                * (1u64 << config.tagged_bits)
                * (u64::from(config.tag_bits) + cosmos::tage::TAGGED_ENTRY_BITS);
        assert_eq!(config.table_bits(), expected);
        // A fresh predictor reports exactly the geometry; each distinct
        // block adds exactly one 64-bit history register.
        let mut p = TagePredictor::new(config.clone());
        assert_eq!(MessagePredictor::storage_bits(&p), expected);
        for i in 0..5 {
            p.observe(
                BlockAddr::new(i),
                PredTuple::new(NodeId::new(1), stache::MsgType::GetRoRequest),
            );
        }
        assert_eq!(MessagePredictor::storage_bits(&p), expected + 5 * 64);
    }
}
