//! Benchmarks trace generation: how fast each benchmark's access stream
//! runs through the simulated machine end-to-end (small scale).

use bench_suite::Harness;
use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite};

fn main() {
    let mut h = Harness::new("trace_generation_small").with_samples(10);
    for w in small_suite() {
        let name = w.name();
        h.run(name, || {
            // Re-create the workload each iteration: generators carry
            // no cross-call state, but cloning a boxed trait object is
            // not possible, so rebuild the suite entry by name.
            let mut w = small_suite()
                .into_iter()
                .find(|x| x.name() == name)
                .expect("known benchmark");
            run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
                .expect("clean run")
                .len()
        });
    }
    h.finish();
}
