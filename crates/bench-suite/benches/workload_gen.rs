//! Benchmarks trace generation: how fast each benchmark's access stream
//! runs through the simulated machine end-to-end (small scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simx::SystemConfig;
use stache::ProtocolConfig;
use workloads::{run_to_trace, small_suite};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation_small");
    for w in small_suite() {
        let name = w.name();
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                // Re-create the workload each iteration: generators carry
                // no cross-call state, but cloning a boxed trait object is
                // not possible, so rebuild the suite entry by name.
                let mut w = small_suite()
                    .into_iter()
                    .find(|x| x.name() == name)
                    .expect("known benchmark");
                let t = run_to_trace(w.as_mut(), ProtocolConfig::paper(), SystemConfig::paper())
                    .expect("clean run");
                black_box(t.len())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation
}
criterion_main!(benches);
