//! Benchmarks of the Stache protocol substrate: coherence-transaction
//! throughput on the simulated machine, for the access mixes that dominate
//! the five workloads — plus the observability overhead check: the same
//! producer/consumer mix with the flight recorder on vs. off.

use bench_suite::Harness;
use simx::{Machine, SystemConfig};
use stache::{BlockAddr, NodeId, ProcOp, ProtocolConfig};

const OPS: usize = 10_000;

fn machine() -> Machine {
    Machine::new(ProtocolConfig::paper(), SystemConfig::paper())
}

fn producer_consumer(m: &mut Machine) -> u64 {
    for i in 0..OPS {
        let b = BlockAddr::new((i % 64) as u64);
        if i % 2 == 0 {
            m.access(NodeId::new(1), b, ProcOp::Write, 0).unwrap();
        } else {
            m.access(NodeId::new(2), b, ProcOp::Read, 0).unwrap();
        }
    }
    m.stats().messages_total()
}

fn main() {
    let mut h = Harness::new(format!("protocol_transactions ({OPS} ops)")).with_samples(20);
    h.run("producer_consumer", || producer_consumer(&mut machine()));
    h.run("migratory", || {
        let mut m = machine();
        for i in 0..OPS / 2 {
            let b = BlockAddr::new((i % 64) as u64);
            let w = NodeId::new(1 + (i / 64) % 3);
            m.access(w, b, ProcOp::Read, 0).unwrap();
            m.access(w, b, ProcOp::Write, 0).unwrap();
        }
        m.stats().messages_total()
    });
    h.run("local_hits", || {
        let mut m = machine();
        for i in 0..OPS {
            // Block 0 is homed on node 0: all local after the first.
            m.access(
                NodeId::new(0),
                BlockAddr::new(0),
                if i == 0 { ProcOp::Write } else { ProcOp::Read },
                0,
            )
            .unwrap();
        }
        m.stats().hits
    });

    // The observability overhead budget: metrics are always-on plain
    // counters; the event ring is the switchable part. Both configurations
    // must stay within a few percent of each other.
    let on = h.run("producer_consumer_ring_on", || {
        let mut m = machine();
        m.set_ring_enabled(true);
        producer_consumer(&mut m)
    });
    let off = h.run("producer_consumer_ring_off", || {
        let mut m = machine();
        m.set_ring_enabled(false);
        producer_consumer(&mut m)
    });
    h.finish();
    let overhead = 100.0 * (on as f64 - off as f64) / off as f64;
    println!("flight-recorder overhead: {overhead:+.2}% (ring on {on} ns, off {off} ns)");

    let mut h = Harness::new("concurrent_engine").with_samples(20);
    h.run("all_to_all_phase", || {
        use simx::concurrent::ConcurrentMachine;
        use simx::{Access, IterationPlan, Phase};
        let mut m = ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
        let mut plan = IterationPlan::new();
        let mut publish = Phase::new(16);
        for owner in 0..16usize {
            publish.push(Access::write(
                NodeId::new(owner),
                BlockAddr::new(owner as u64 * 64),
            ));
        }
        plan.push(publish);
        let mut exchange = Phase::new(16);
        for reader in 0..16usize {
            for owner in 0..16usize {
                if owner != reader {
                    exchange.push(Access::read(
                        NodeId::new(reader),
                        BlockAddr::new(owner as u64 * 64),
                    ));
                }
            }
        }
        plan.push(exchange);
        m.run_plan(&plan, 0).unwrap();
        m.trace().len()
    });
    h.finish();
}
