//! Benchmarks of the Stache protocol substrate: coherence-transaction
//! throughput on the simulated machine, for the access mixes that dominate
//! the five workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simx::{Machine, SystemConfig};
use stache::{BlockAddr, NodeId, ProcOp, ProtocolConfig};

const OPS: usize = 10_000;

fn machine() -> Machine {
    Machine::new(ProtocolConfig::paper(), SystemConfig::paper())
}

fn bench_producer_consumer(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_transactions");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("producer_consumer", |bench| {
        bench.iter(|| {
            let mut m = machine();
            for i in 0..OPS {
                let b = BlockAddr::new((i % 64) as u64);
                if i % 2 == 0 {
                    m.access(NodeId::new(1), b, ProcOp::Write, 0).unwrap();
                } else {
                    m.access(NodeId::new(2), b, ProcOp::Read, 0).unwrap();
                }
            }
            black_box(m.stats().messages_total())
        });
    });
    g.bench_function("migratory", |bench| {
        bench.iter(|| {
            let mut m = machine();
            for i in 0..OPS / 2 {
                let b = BlockAddr::new((i % 64) as u64);
                let w = NodeId::new(1 + (i / 64) % 3);
                m.access(w, b, ProcOp::Read, 0).unwrap();
                m.access(w, b, ProcOp::Write, 0).unwrap();
            }
            black_box(m.stats().messages_total())
        });
    });
    g.bench_function("local_hits", |bench| {
        bench.iter(|| {
            let mut m = machine();
            for i in 0..OPS {
                // Block 0 is homed on node 0: all local after the first.
                m.access(
                    NodeId::new(0),
                    BlockAddr::new(0),
                    if i == 0 { ProcOp::Write } else { ProcOp::Read },
                    0,
                )
                .unwrap();
            }
            black_box(m.stats().hits)
        });
    });
    g.finish();
}

fn bench_concurrent_engine(c: &mut Criterion) {
    use simx::concurrent::ConcurrentMachine;
    use simx::{Access, IterationPlan, Phase};
    let mut g = c.benchmark_group("concurrent_engine");
    g.bench_function("all_to_all_phase", |bench| {
        bench.iter(|| {
            let mut m = ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
            let mut plan = IterationPlan::new();
            let mut publish = Phase::new(16);
            for owner in 0..16usize {
                publish.push(Access::write(
                    NodeId::new(owner),
                    BlockAddr::new(owner as u64 * 64),
                ));
            }
            plan.push(publish);
            let mut exchange = Phase::new(16);
            for reader in 0..16usize {
                for owner in 0..16usize {
                    if owner != reader {
                        exchange.push(Access::read(
                            NodeId::new(reader),
                            BlockAddr::new(owner as u64 * 64),
                        ));
                    }
                }
            }
            plan.push(exchange);
            m.run_plan(&plan, 0).unwrap();
            black_box(m.trace().len())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_producer_consumer, bench_concurrent_engine
}
criterion_main!(benches);
