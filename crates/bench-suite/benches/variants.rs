//! Times the predictor variants' per-message cost against plain Cosmos:
//! macroblock grouping, confidence gating, the preallocated layout, and
//! the evicting MHT all touch different data structures on the hot path.

use cosmos::{
    ConfidenceCosmos, CosmosPredictor, EvictingCosmos, MacroblockCosmos, MessagePredictor,
    PreallocCosmos, PredTuple,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use stache::{BlockAddr, MsgType, NodeId};

fn stream(len: usize) -> Vec<(BlockAddr, PredTuple)> {
    let cycle = [
        MsgType::GetRoRequest,
        MsgType::UpgradeRequest,
        MsgType::InvalRwResponse,
    ];
    (0..len)
        .map(|i| {
            (
                BlockAddr::new((i % 300) as u64),
                PredTuple::new(NodeId::new((i / 11) % 16), cycle[i % 3]),
            )
        })
        .collect()
}

fn drive(p: &mut dyn MessagePredictor, s: &[(BlockAddr, PredTuple)]) -> u64 {
    let mut hits = 0;
    for &(b, t) in s {
        hits += u64::from(p.predict(b) == Some(t));
        p.observe(b, t);
    }
    hits
}

fn bench_variants(c: &mut Criterion) {
    let s = stream(10_000);
    let mut g = c.benchmark_group("predictor_variants");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function("plain", |bench| {
        bench.iter(|| black_box(drive(&mut CosmosPredictor::new(2, 0), &s)));
    });
    g.bench_function("macroblock_x4", |bench| {
        bench.iter(|| black_box(drive(&mut MacroblockCosmos::new(2, 0, 2), &s)));
    });
    g.bench_function("confidence", |bench| {
        bench.iter(|| black_box(drive(&mut ConfidenceCosmos::new(2, 2), &s)));
    });
    g.bench_function("prealloc", |bench| {
        bench.iter(|| black_box(drive(&mut PreallocCosmos::paper(2, 256), &s)));
    });
    g.bench_function("hybrid_1_3", |bench| {
        bench.iter(|| black_box(drive(&mut cosmos::HybridCosmos::new(1, 3), &s)));
    });
    g.bench_function("evicting_128", |bench| {
        bench.iter(|| black_box(drive(&mut EvictingCosmos::new(2, 0, 128), &s)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_variants
}
criterion_main!(benches);
