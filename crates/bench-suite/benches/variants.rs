//! Times the predictor variants' per-message cost against plain Cosmos:
//! macroblock grouping, confidence gating, the preallocated layout, and
//! the evicting MHT all touch different data structures on the hot path.

use bench_suite::Harness;
use cosmos::{
    ConfidenceCosmos, CosmosPredictor, EvictingCosmos, MacroblockCosmos, MessagePredictor,
    PreallocCosmos, PredTuple,
};
use stache::{BlockAddr, MsgType, NodeId};

fn stream(len: usize) -> Vec<(BlockAddr, PredTuple)> {
    let cycle = [
        MsgType::GetRoRequest,
        MsgType::UpgradeRequest,
        MsgType::InvalRwResponse,
    ];
    (0..len)
        .map(|i| {
            (
                BlockAddr::new((i % 300) as u64),
                PredTuple::new(NodeId::new((i / 11) % 16), cycle[i % 3]),
            )
        })
        .collect()
}

fn drive(p: &mut dyn MessagePredictor, s: &[(BlockAddr, PredTuple)]) -> u64 {
    let mut hits = 0;
    for &(b, t) in s {
        hits += u64::from(p.predict(b) == Some(t));
        p.observe(b, t);
    }
    hits
}

fn main() {
    let s = stream(10_000);
    let mut h = Harness::new("predictor_variants (10k messages)").with_samples(20);
    h.run("plain", || drive(&mut CosmosPredictor::new(2, 0), &s));
    h.run("macroblock_x4", || {
        drive(&mut MacroblockCosmos::new(2, 0, 2), &s)
    });
    h.run("confidence", || drive(&mut ConfidenceCosmos::new(2, 2), &s));
    h.run("prealloc", || drive(&mut PreallocCosmos::paper(2, 256), &s));
    h.run("hybrid_1_3", || {
        drive(&mut cosmos::HybridCosmos::new(1, 3), &s)
    });
    h.run("evicting_128", || {
        drive(&mut EvictingCosmos::new(2, 0, 128), &s)
    });
    h.finish();
}
