//! Microbenchmarks of the predictors themselves: predict+observe
//! throughput per incoming message, across MHR depths and against the
//! directed predictors. This is the operation that would sit on a
//! directory/cache controller's critical path, so its cost matters for
//! the §4 integration story.

use cosmos::directed::{Composition, LastTuple, MigratoryPredictor};
use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stache::{BlockAddr, MsgType, NodeId, Role};

/// A synthetic stream: `blocks` blocks, each cycling through a 3-message
/// migratory signature from rotating senders.
fn stream(blocks: u64, len: usize) -> Vec<(BlockAddr, PredTuple)> {
    let cycle = [
        MsgType::GetRoResponse,
        MsgType::UpgradeResponse,
        MsgType::InvalRwRequest,
    ];
    (0..len)
        .map(|i| {
            let b = BlockAddr::new(i as u64 % blocks);
            let t = PredTuple::new(NodeId::new((i / 7) % 16), cycle[i % 3]);
            (b, t)
        })
        .collect()
}

fn drive(p: &mut dyn MessagePredictor, s: &[(BlockAddr, PredTuple)]) -> u64 {
    let mut hits = 0u64;
    for &(b, t) in s {
        if p.predict(b) == Some(t) {
            hits += 1;
        }
        p.observe(b, t);
    }
    hits
}

fn bench_cosmos_depths(c: &mut Criterion) {
    let s = stream(256, 10_000);
    let mut g = c.benchmark_group("cosmos_predict_observe");
    g.throughput(Throughput::Elements(s.len() as u64));
    for depth in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bench, &d| {
            bench.iter(|| {
                let mut p = CosmosPredictor::new(d, 0);
                black_box(drive(&mut p, &s))
            });
        });
    }
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let s = stream(256, 10_000);
    let mut g = c.benchmark_group("cosmos_filter");
    g.throughput(Throughput::Elements(s.len() as u64));
    for fmax in [0u8, 1, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(fmax), &fmax, |bench, &f| {
            bench.iter(|| {
                let mut p = CosmosPredictor::new(1, f);
                black_box(drive(&mut p, &s))
            });
        });
    }
    g.finish();
}

fn bench_directed(c: &mut Criterion) {
    let s = stream(256, 10_000);
    let mut g = c.benchmark_group("directed_predictors");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function("migratory", |bench| {
        bench.iter(|| {
            let mut p = MigratoryPredictor::new(Role::Cache);
            black_box(drive(&mut p, &s))
        });
    });
    g.bench_function("composition", |bench| {
        bench.iter(|| {
            let mut p = Composition::new(Role::Cache);
            black_box(drive(&mut p, &s))
        });
    });
    g.bench_function("last_tuple", |bench| {
        bench.iter(|| {
            let mut p = LastTuple::new();
            black_box(drive(&mut p, &s))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cosmos_depths, bench_filters, bench_directed
}
criterion_main!(benches);
