//! Microbenchmarks of the predictors themselves: predict+observe
//! throughput per incoming message, across MHR depths and against the
//! directed predictors. This is the operation that would sit on a
//! directory/cache controller's critical path, so its cost matters for
//! the §4 integration story.

use bench_suite::Harness;
use cosmos::directed::{Composition, LastTuple, MigratoryPredictor};
use cosmos::{CosmosPredictor, MessagePredictor, PredTuple};
use stache::{BlockAddr, MsgType, NodeId, Role};

/// A synthetic stream: `blocks` blocks, each cycling through a 3-message
/// migratory signature from rotating senders.
fn stream(blocks: u64, len: usize) -> Vec<(BlockAddr, PredTuple)> {
    let cycle = [
        MsgType::GetRoResponse,
        MsgType::UpgradeResponse,
        MsgType::InvalRwRequest,
    ];
    (0..len)
        .map(|i| {
            let b = BlockAddr::new(i as u64 % blocks);
            let t = PredTuple::new(NodeId::new((i / 7) % 16), cycle[i % 3]);
            (b, t)
        })
        .collect()
}

fn drive(p: &mut dyn MessagePredictor, s: &[(BlockAddr, PredTuple)]) -> u64 {
    let mut hits = 0u64;
    for &(b, t) in s {
        if p.predict(b) == Some(t) {
            hits += 1;
        }
        p.observe(b, t);
    }
    hits
}

fn main() {
    let s = stream(256, 10_000);

    let mut h = Harness::new("cosmos_predict_observe (10k messages)").with_samples(20);
    for depth in [1usize, 2, 3, 4] {
        h.run(&format!("depth_{depth}"), || {
            drive(&mut CosmosPredictor::new(depth, 0), &s)
        });
    }
    h.finish();

    let mut h = Harness::new("cosmos_filter (10k messages)").with_samples(20);
    for fmax in [0u8, 1, 2] {
        h.run(&format!("filter_max_{fmax}"), || {
            drive(&mut CosmosPredictor::new(1, fmax), &s)
        });
    }
    h.finish();

    let mut h = Harness::new("directed_predictors (10k messages)").with_samples(20);
    h.run("migratory", || {
        drive(&mut MigratoryPredictor::new(Role::Cache), &s)
    });
    h.run("composition", || {
        drive(&mut Composition::new(Role::Cache), &s)
    });
    h.run("last_tuple", || drive(&mut LastTuple::new(), &s));
    h.finish();
}
