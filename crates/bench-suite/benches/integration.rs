//! Times the §4/§8 integration machinery: machine throughput with a live
//! Cosmos policy installed vs. the bare protocol — the per-transaction
//! cost of consulting and training the predictors.

use accel::{run_with_policy, CosmosPolicy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use workloads::micro::ProducerConsumer;

fn bench_integration(c: &mut Criterion) {
    let make = || ProducerConsumer {
        blocks: 8,
        iterations: 20,
        ..Default::default()
    };
    let mut g = c.benchmark_group("integration");
    g.bench_function("baseline_machine", |bench| {
        bench.iter(|| {
            let summary = run_with_policy(&mut make(), None).expect("clean run");
            black_box(summary.messages)
        });
    });
    g.bench_function("cosmos_policy_machine", |bench| {
        bench.iter(|| {
            let summary = run_with_policy(&mut make(), Some(Box::new(CosmosPolicy::new(2))))
                .expect("clean run");
            black_box(summary.messages)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_integration
}
criterion_main!(benches);
