//! Times the §4/§8 integration machinery: machine throughput with a live
//! Cosmos policy installed vs. the bare protocol — the per-transaction
//! cost of consulting and training the predictors.

use accel::{run_with_policy, CosmosPolicy};
use bench_suite::Harness;
use workloads::micro::ProducerConsumer;

fn main() {
    let make = || ProducerConsumer {
        blocks: 8,
        iterations: 20,
        ..Default::default()
    };
    let mut h = Harness::new("integration").with_samples(20);
    h.run("baseline_machine", || {
        run_with_policy(&mut make(), None)
            .expect("clean run")
            .messages
    });
    h.run("cosmos_policy_machine", || {
        run_with_policy(&mut make(), Some(Box::new(CosmosPolicy::new(2))))
            .expect("clean run")
            .messages
    });
    h.finish();
}
