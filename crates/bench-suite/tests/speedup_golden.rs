//! Golden regression test for the speculative speedup report: the
//! small-scale CSV must stay byte-identical to the committed copy (the
//! exact bytes `repro --small speedup --csv DIR` writes, default fault
//! plan). Any drift means the speculation layer's actions, the rollback
//! accounting, or the engine's timing changed — either a real behaviour
//! change (update the golden deliberately) or a lost determinism
//! guarantee (a bug).

use bench_suite::speedup;
use bench_suite::Scale;
use simx::FaultPlan;

const GOLDEN: &str = include_str!("golden/speedup_small.csv");

#[test]
fn small_speedup_csv_is_byte_identical_to_the_golden() {
    // The `repro` default plan, seed untouched.
    let plan = FaultPlan::parse("drop=0.01,dup=0.005,reorder=3").unwrap();
    let report = speedup::speedup_report(Scale::Small, &plan);
    let csv = speedup::csv_speedup_report(&report);
    assert_eq!(csv, GOLDEN, "speedup report drifted from the golden");
}
