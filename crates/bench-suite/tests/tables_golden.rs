//! Golden regression test for the table pipeline: the small-scale Table 5
//! CSV must stay byte-identical to the copy captured before the
//! packed-history predictor core and parallel sweeps landed. Any drift
//! means the optimisation changed results, not just speed.

use bench_suite::{tables, Scale, TraceSet};

const GOLDEN: &str = include_str!("golden/table5_small.csv");

#[test]
fn small_table5_csv_is_byte_identical_to_the_pre_optimization_golden() {
    let set = TraceSet::generate(Scale::Small);
    let csv = tables::csv_table5(&tables::table5(&set));
    assert_eq!(csv, GOLDEN, "table5 CSV drifted from the golden copy");
}
