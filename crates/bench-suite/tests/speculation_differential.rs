//! The ∞-threshold differential: a [`SpeculatePolicy`] with `threshold:
//! None` is structurally enabled — every consult point runs, every
//! predictor trains, the engine's policy-aware guards are armed — but no
//! action ever fires. Such a run must be *byte-identical* to the plain
//! engine on every observable surface: the message trace, the metric
//! snapshot, the execution clock, and the machine's state fingerprint.
//! Clean and faulted, every workload, every MHR depth.
//!
//! This pins the claim DESIGN §6i makes: speculation is a pure overlay.
//! Installing the machinery costs nothing until a prediction clears the
//! confidence gate, so any divergence here is a consult point mutating
//! state it should only read.

use accel::SpeculatePolicy;
use simx::{ConcurrentMachine, FaultPlan, SystemConfig};
use stache::ProtocolConfig;
use workloads::{small_suite, Workload};

const DEPTHS: [usize; 4] = [1, 2, 3, 4];

struct Observed {
    records: Vec<trace::MsgRecord>,
    obs_json: String,
    time_ns: u64,
    fingerprint: u64,
}

fn run(w: &mut dyn Workload, policy: Option<usize>, plan: Option<&FaultPlan>) -> Observed {
    let mut machine = ConcurrentMachine::new(ProtocolConfig::paper(), SystemConfig::paper());
    machine.set_app(w.name(), w.iterations());
    if let Some(p) = plan {
        machine.set_fault_plan(p.clone());
    }
    if let Some(depth) = policy {
        machine.set_policy(Box::new(SpeculatePolicy::new(depth, None)));
    }
    for it in 0..w.iterations() {
        let plan = w.plan(it);
        machine.run_plan(&plan, it).expect("run");
    }
    machine.verify_coherence().expect("coherent");
    assert!(
        machine.rollback_tally().is_quiet(),
        "an infinite threshold must never speculate"
    );
    Observed {
        fingerprint: machine.state_fingerprint(),
        time_ns: machine.execution_time_ns(),
        obs_json: machine.obs_snapshot().to_json(),
        records: machine.into_trace().records().to_vec(),
    }
}

fn differential(plan: Option<&FaultPlan>) {
    std::thread::scope(|s| {
        for i in 0..small_suite().len() {
            s.spawn(move || {
                let mut suite = small_suite();
                let name = suite[i].name();
                let base = run(suite[i].as_mut(), None, plan);
                for depth in DEPTHS {
                    let spec = run(small_suite()[i].as_mut(), Some(depth), plan);
                    assert_eq!(
                        base.records, spec.records,
                        "{name} depth {depth}: trace diverged"
                    );
                    assert_eq!(
                        base.obs_json, spec.obs_json,
                        "{name} depth {depth}: metrics diverged"
                    );
                    assert_eq!(
                        base.time_ns, spec.time_ns,
                        "{name} depth {depth}: clock diverged"
                    );
                    assert_eq!(
                        base.fingerprint, spec.fingerprint,
                        "{name} depth {depth}: state diverged"
                    );
                }
            });
        }
    });
}

#[test]
fn inert_policy_is_byte_identical_on_a_perfect_fabric() {
    differential(None);
}

#[test]
fn inert_policy_is_byte_identical_under_faults() {
    let plan = FaultPlan::parse("drop=0.01,dup=0.005,reorder=3")
        .unwrap()
        .with_seed(7);
    differential(Some(&plan));
}
