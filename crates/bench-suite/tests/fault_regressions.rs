//! Fault-injection regression suite.
//!
//! Two guarantees the fault layer must never lose:
//!
//! 1. **Faults off is a no-op** — the instrumented report of a machine
//!    with no fault injector must stay byte-identical to the golden
//!    snapshot captured before the fault layer existed. Any drift means
//!    the clean path picked up an accidental behaviour change.
//! 2. **Faults on is reproducible and coherent** — the five-benchmark
//!    sensitivity report under the ISSUE's reference plan completes with
//!    zero invariant violations and exports identical obs JSON for
//!    identical seeds.

use bench_suite::faults::{fault_report, FAULT_DEPTHS};
use bench_suite::{obs_report, Scale};
use simx::FaultPlan;

/// The golden `obs.v1` snapshot of `repro --small --obs-json --obs-app
/// appbt`, captured before the fault-injection layer was introduced.
const GOLDEN: &str = include_str!("golden/appbt_small_obs.json");

#[test]
fn clean_run_report_is_byte_identical_to_the_pre_fault_golden() {
    let now = obs_report(Scale::Small, "appbt").to_json();
    assert_eq!(
        now, GOLDEN,
        "the clean path changed: a machine without a fault injector \
         must produce exactly the pre-fault-layer report"
    );
}

#[test]
fn reference_fault_plan_is_coherent_and_seed_reproducible() {
    let plan = FaultPlan::parse("drop=0.01,dup=0.005,reorder=3")
        .unwrap()
        .with_seed(7);
    // fault_report invariant-audits every run and panics on violation.
    let a = fault_report(Scale::Small, &plan);
    assert_eq!(a.rows.len(), 5);
    let (faults, recovery) = a.totals();
    assert!(faults.drops > 0);
    assert!(recovery.retries > 0, "drops force retransmissions");
    assert!(recovery.naks_sent > 0, "contention forces NAKs");
    for row in &a.rows {
        for i in 0..FAULT_DEPTHS.len() {
            assert!(row.clean_pct[i].is_finite());
            assert!(row.perturbed_pct[i].is_finite());
        }
    }

    let b = fault_report(Scale::Small, &plan);
    assert_eq!(
        a.export_obs().to_json(),
        b.export_obs().to_json(),
        "same seed must export identical bytes"
    );

    // A different seed draws a different schedule.
    let c = fault_report(Scale::Small, &plan.clone().with_seed(8));
    assert_ne!(
        a.export_obs().to_json(),
        c.export_obs().to_json(),
        "a different seed must perturb differently"
    );
}
