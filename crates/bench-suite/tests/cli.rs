//! CLI contract tests for the `repro` binary's argument parsing: flags
//! that expect a value must fail loudly when the value is missing, and
//! unknown targets must exit non-zero instead of being silently skipped.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn help_exits_zero_and_mentions_bench_json() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--bench-json"));
    assert!(stdout.contains("--faults"));
}

#[test]
fn value_flags_reject_a_missing_value() {
    for flag in [
        "--csv",
        "--obs-json",
        "--bench-json",
        "--faults",
        "--faults-seed",
        "--trace-out",
    ] {
        let out = repro(&[flag]);
        assert!(!out.status.success(), "{flag} with no value must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("needs a value"),
            "{flag}: stderr was {stderr:?}"
        );
    }
}

#[test]
fn unknown_targets_exit_nonzero() {
    let out = repro(&["table9000"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target"), "stderr was {stderr:?}");
}

#[test]
fn trace_out_rejects_a_missing_directory_before_simulating() {
    let out = repro(&[
        "--small",
        "--trace-out",
        "/definitely/not/a/directory/trace.json",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--trace-out") && stderr.contains("does not exist"),
        "stderr was {stderr:?}"
    );
}

#[test]
fn help_mentions_the_tracespans_target_and_trace_out() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tracespans"));
    assert!(stdout.contains("--trace-out"));
}

#[test]
fn bad_faults_seed_exits_nonzero() {
    let out = repro(&["--faults-seed", "not-a-number"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a u64"));
}

// Regression: naming a target twice used to run it twice (the target list
// was never deduplicated), doubling output and wall time. `table1` is
// trace-free, so these stay fast.

#[test]
fn duplicate_target_runs_once() {
    let out = repro(&["table1", "table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("TABLE 1.").count(),
        1,
        "duplicated target must run once; stdout was {stdout:?}"
    );
}

#[test]
fn dedup_preserves_first_occurrence_order() {
    let out = repro(&["table2", "table1", "table2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("TABLE 2.").count(), 1);
    assert_eq!(stdout.matches("TABLE 1.").count(), 1);
    let t2 = stdout.find("TABLE 2.").expect("table 2 present");
    let t1 = stdout.find("TABLE 1.").expect("table 1 present");
    assert!(
        t2 < t1,
        "first occurrence wins the position: table2 must print before table1"
    );
}

#[test]
fn help_mentions_the_tournament_target() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("tournament"));
}
