//! Golden regression test for the predictor tournament: the small-scale
//! frontier CSV must stay byte-identical to the committed copy. Any drift
//! means a predictor's accuracy or storage accounting changed — which is
//! either a real behaviour change (update the golden deliberately) or a
//! lost determinism guarantee (a bug).

use bench_suite::{tournament, Scale, TraceSet};

const GOLDEN: &str = include_str!("golden/tournament_frontier_small.csv");

#[test]
fn small_frontier_csv_is_byte_identical_to_the_golden() {
    let set = TraceSet::generate(Scale::Small);
    let cells = tournament::tournament(&set);
    let csv = tournament::csv_frontier(&tournament::frontier(&cells));
    assert_eq!(csv, GOLDEN, "tournament frontier drifted from the golden");
}
