//! Golden regression test for the packed-trace pipeline: the
//! small-scale `tracepack.csv` must stay byte-identical to the committed
//! copy (the exact bytes `repro --small tracepack --csv DIR` writes).
//! The CSV pins the codec byte totals and compression ratios, the
//! SimPoint-sampled vs full accuracy per benchmark × depth, and the
//! streamed cell's totals — so any drift means the packed format, the
//! fingerprint/clustering recipe, or the estimator changed. On top of
//! byte identity, the acceptance bars are asserted explicitly: every
//! sampled row within 1 pp of full replay, every packed trace at least
//! 2× smaller than the flat codec.

use bench_suite::tracepack;
use bench_suite::{Scale, TraceSet};

const GOLDEN: &str = include_str!("golden/tracepack_small.csv");

#[test]
fn small_tracepack_csv_is_byte_identical_to_the_golden() {
    let set = TraceSet::generate(Scale::Small);
    let report = tracepack::tracepack(&set, Scale::Small);
    let csv = tracepack::csv_tracepack(&report);
    assert_eq!(csv, GOLDEN, "tracepack report drifted from the golden");

    // The acceptance bars, restated on the live report so a deliberate
    // golden update cannot silently regress them.
    for p in &report.pack {
        assert!(
            p.stats.ratio() >= 2.0,
            "{}: compression ratio {:.2} under the 2x floor",
            p.app,
            p.stats.ratio()
        );
    }
    for s in &report.samples {
        assert!(
            s.error_pp() <= 1.0,
            "{} depth {}: sampled error {:.2}pp over the 1pp bar",
            s.app,
            s.depth,
            s.error_pp()
        );
    }
}
