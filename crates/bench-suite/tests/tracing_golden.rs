//! Golden and structural regression tests for the causal-tracing layer:
//! the small-scale `tracespans` attribution CSV must stay byte-identical
//! to the committed copy, and the Chrome trace export must remain
//! structurally valid (metadata + complete events forming whole span
//! trees) without pulling in a JSON parser dependency.

use bench_suite::{spans, Scale};
use obs::span::SpanKind;

const GOLDEN: &str = include_str!("golden/tracespans_small.csv");

#[test]
fn small_tracespans_csv_is_byte_identical_to_the_golden() {
    let runs = spans::traced_runs(Scale::Small);
    let csv = spans::csv_attribution(&spans::attribution(&runs));
    assert_eq!(csv, GOLDEN, "tracespans CSV drifted from the golden copy");
}

#[test]
fn chrome_export_contains_complete_span_trees() {
    let runs = spans::traced_runs(Scale::Small);
    let json = spans::chrome_trace(&runs);
    // Structural validity: one JSON object, a traceEvents array, one
    // process-name metadata record per run, and complete ("X") events.
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.ends_with("]}"));
    assert_eq!(json.matches("\"ph\":\"M\"").count(), runs.len());
    assert!(json.matches("\"ph\":\"X\"").count() > runs.len());
    // Every transaction's tree is complete: no span is still open, so
    // every event carries a duration, and each root ("txn" category) has
    // at least one child edge in the same trace.
    for run in &runs {
        assert_eq!(run.spans.open_traces(), 0, "{} {}", run.engine, run.app);
        for root in run.spans.spans().iter().filter(|s| s.kind == SpanKind::Txn) {
            let children = run
                .spans
                .spans()
                .iter()
                .filter(|s| s.trace == root.trace && s.id != root.id)
                .count();
            assert!(
                children > 0,
                "{} {}: trace {} has a bare root",
                run.engine,
                run.app,
                root.trace.raw()
            );
        }
    }
    assert!(json.contains("\"cat\":\"network\""));
    assert!(json.contains("\"cat\":\"directory\""));
}
