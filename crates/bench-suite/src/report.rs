//! The machine-readable run report behind `repro --obs-json`.
//!
//! One call to [`obs_report`] runs a benchmark end-to-end and condenses
//! every layer's metrics into a single [`obs::Snapshot`]:
//!
//! * `simx.*` — machine access/message counters, latency histograms, the
//!   flight-recorder volume;
//! * `stache.*` — per-transition protocol tallies and invariant-check
//!   counts;
//! * `trace.*` — captured message-mix statistics and the packed-codec
//!   byte totals (`trace.pack.*`);
//! * `cosmos.depth<d>.*` — predictor accuracy, coverage, and memory at
//!   MHR depths 1 and 2;
//! * `accel.*` — the baseline-vs-speculation comparison.
//!
//! Everything in the pipeline is deterministic (plans are pure functions
//! of their parameters, the machine serialises events deterministically),
//! so the exported JSON is byte-stable run to run — asserted by the
//! golden test below and relied on by downstream diffing.

use accel::{compare, CosmosPolicy};
use cosmos::eval::evaluate_cosmos;
use simx::{driver, Machine, SystemConfig};
use stache::ProtocolConfig;
use trace::TraceStats;
use workloads::{paper_suite, small_suite, Workload};

use crate::Scale;

/// MHR depths the report evaluates the predictor at.
pub const REPORT_DEPTHS: [usize; 2] = [1, 2];

/// Chunk size the report packs the captured trace at (matches the
/// `tracepack` target's per-scale choice so the two agree byte-for-byte).
pub fn report_chunk_records(scale: Scale) -> u32 {
    crate::tracepack::chunk_records(scale)
}

/// The benchmark names [`obs_report`] accepts.
pub fn report_apps() -> Vec<String> {
    small_suite()
        .into_iter()
        .map(|w| w.name().to_string())
        .collect()
}

fn workload_named(scale: Scale, app: &str) -> Box<dyn Workload> {
    let suite = match scale {
        Scale::Paper => paper_suite(),
        Scale::Small => small_suite(),
    };
    suite
        .into_iter()
        .find(|w| w.name() == app)
        .unwrap_or_else(|| panic!("unknown benchmark {app}"))
}

/// Runs `app` at `scale` and exports a workspace-wide metrics snapshot.
///
/// # Panics
///
/// Panics if `app` is not one of the five benchmarks or a run fails —
/// this is a reporting entry point, not a recoverable path.
pub fn obs_report(scale: Scale, app: &str) -> obs::Snapshot {
    // The instrumented base run: machine + protocol + trace metrics.
    let mut w = workload_named(scale, app);
    let mut machine = Machine::new(ProtocolConfig::paper(), SystemConfig::paper());
    machine.set_app(w.name(), w.iterations());
    for it in 0..w.iterations() {
        let plan = w.plan(it);
        driver::run_iteration(&mut machine, &plan, it)
            .unwrap_or_else(|e| panic!("{app} failed: {e}"));
    }
    machine
        .verify_coherence()
        .unwrap_or_else(|e| panic!("{app} incoherent: {e}"));
    let mut snap = machine.obs_snapshot();
    TraceStats::compute(machine.trace()).export_obs(&mut snap);

    // The packed-codec totals over the same captured trace: byte volumes
    // and compression ratio are pure functions of the record stream, so
    // they belong in the deterministic report (wall-clock packing speed
    // does not — that lives in `BENCH_trace.json`).
    let (_, pack_stats) =
        trace::pack::pack_bundle_with_stats(machine.trace(), report_chunk_records(scale))
            .unwrap_or_else(|e| panic!("{app} trace failed to pack: {e}"));
    pack_stats.export_obs(&mut snap);

    // Predictor accuracy and memory over the captured trace.
    for depth in REPORT_DEPTHS {
        evaluate_cosmos(machine.trace(), depth, 0).export_obs(depth, &mut snap);
    }

    // The §4 integration: same workload, bare vs speculating.
    let comparison = compare(
        &mut *workload_named(scale, app),
        &mut *workload_named(scale, app),
        || Box::new(CosmosPolicy::new(2)),
    )
    .unwrap_or_else(|e| panic!("{app} comparison failed: {e}"));
    comparison.export_obs(&mut snap);

    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_spans_every_layer_with_enough_metrics() {
        let snap = obs_report(Scale::Small, "appbt");
        assert!(
            snap.len() >= 20,
            "only {} metrics: {:?}",
            snap.len(),
            snap.names()
        );
        for prefix in [
            "simx.",
            "stache.",
            "trace.",
            "trace.pack.",
            "cosmos.",
            "accel.",
        ] {
            assert!(
                snap.names().iter().any(|n| n.starts_with(prefix)),
                "no {prefix} metrics in {:?}",
                snap.names()
            );
        }
    }

    #[test]
    fn report_json_is_byte_stable_across_runs() {
        let a = obs_report(Scale::Small, "appbt").to_json();
        let b = obs_report(Scale::Small, "appbt").to_json();
        assert_eq!(a, b, "same seed must export identical bytes");
        assert!(a.starts_with("{\"schema\":\"obs.v1\""));
    }
}
