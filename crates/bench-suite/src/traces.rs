//! Trace generation and caching for the evaluation runs.
//!
//! Most tables evaluate several predictor configurations over the *same*
//! traces, so the suite generates each benchmark's trace once (in
//! parallel, one thread per benchmark) and shares it.

use simx::SystemConfig;
use stache::ProtocolConfig;
use trace::TraceBundle;
use workloads::{paper_suite, run_to_trace, small_suite, Workload};

/// How big the evaluation runs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper-calibrated sizes (seconds to generate and evaluate).
    Paper,
    /// Reduced sizes for smoke tests and CI.
    Small,
}

/// The five benchmarks' traces for one machine configuration.
#[derive(Debug, Clone)]
pub struct TraceSet {
    traces: Vec<TraceBundle>,
}

impl TraceSet {
    /// Generates all five traces on the paper's machine (Table 3).
    pub fn generate(scale: Scale) -> Self {
        TraceSet::generate_with(scale, ProtocolConfig::paper(), SystemConfig::paper())
    }

    /// Generates all five traces on a custom machine configuration,
    /// running the benchmarks on the shared bounded worker pool
    /// ([`crate::par::sweep`]), so the generation phase counts toward
    /// the sweep-utilisation metrics in `BENCH_repro.json`.
    pub fn generate_with(scale: Scale, proto: ProtocolConfig, sys: SystemConfig) -> Self {
        let suite = match scale {
            Scale::Paper => paper_suite(),
            Scale::Small => small_suite(),
        };
        let suite: Vec<std::sync::Mutex<Box<dyn Workload>>> =
            suite.into_iter().map(std::sync::Mutex::new).collect();
        let traces = crate::par::sweep(suite.len(), |i| {
            let mut w = suite[i].lock().expect("workload lock poisoned");
            run_to_trace(w.as_mut(), proto.clone(), sys.clone())
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()))
        });
        TraceSet { traces }
    }

    /// The traces, in Table 4 row order.
    pub fn traces(&self) -> &[TraceBundle] {
        &self.traces
    }

    /// The trace for a named benchmark.
    pub fn by_name(&self, name: &str) -> Option<&TraceBundle> {
        self.traces.iter().find(|t| t.meta().app == name)
    }

    /// Benchmark names in order.
    pub fn names(&self) -> Vec<&str> {
        self.traces.iter().map(|t| t.meta().app.as_str()).collect()
    }
}

/// Generates a single benchmark's trace by name on a custom configuration.
///
/// # Panics
///
/// Panics if `name` is not one of the five benchmarks or the run fails.
pub fn single_trace(
    name: &str,
    scale: Scale,
    proto: ProtocolConfig,
    sys: SystemConfig,
) -> TraceBundle {
    let suite = match scale {
        Scale::Paper => paper_suite(),
        Scale::Small => small_suite(),
    };
    let mut w: Box<dyn Workload> = suite
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    run_to_trace(w.as_mut(), proto, sys).unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_set_has_all_five() {
        let set = TraceSet::generate(Scale::Small);
        assert_eq!(
            set.names(),
            vec!["appbt", "barnes", "dsmc", "moldyn", "unstructured"]
        );
        assert!(set.by_name("dsmc").is_some());
        assert!(set.by_name("spice").is_none());
        for t in set.traces() {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn single_trace_matches_set_member() {
        let set = TraceSet::generate(Scale::Small);
        let solo = single_trace(
            "appbt",
            Scale::Small,
            ProtocolConfig::paper(),
            SystemConfig::paper(),
        );
        assert_eq!(set.by_name("appbt").unwrap(), &solo);
    }
}
