//! The §4/§8 integration study: running the benchmarks on the machine
//! with live Cosmos-driven speculation, against the unmodified protocol
//! and against the directed-predictor pairing.

use crate::traces::Scale;
use accel::directed_policy::DirectedPolicy;
use accel::{compare, compare_concurrent, Comparison, CosmosPolicy};
use std::fmt::Write as _;
use workloads::{paper_suite, small_suite, Workload};

/// One benchmark's integration outcomes.
#[derive(Debug, Clone)]
pub struct IntegrationRow {
    /// Benchmark name.
    pub app: String,
    /// Baseline vs Cosmos-driven speculation.
    pub cosmos: Comparison,
    /// Baseline vs directed-predictor speculation.
    pub directed: Comparison,
    /// Baseline vs Cosmos speculation, on the concurrent engine.
    pub cosmos_concurrent: Comparison,
}

fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Paper => paper_suite(),
        Scale::Small => small_suite(),
    }
}

/// Runs the integration study over the five benchmarks.
pub fn integration(scale: Scale, depth: usize) -> Vec<IntegrationRow> {
    let names: Vec<&str> = suite(scale).iter().map(|w| w.name()).collect();
    // Each benchmark runs six full simulations (three baseline/accelerated
    // pairs); fan the five benchmarks out on the shared worker pool.
    crate::par::sweep(names.len(), |i| {
        let name = names[i];
        let fresh = || {
            suite(scale)
                .into_iter()
                .find(|w| w.name() == name)
                .expect("known benchmark")
        };
        let cosmos = compare(fresh().as_mut(), fresh().as_mut(), || {
            Box::new(CosmosPolicy::new(depth))
        })
        .expect("coherent accelerated run");
        let directed = compare(fresh().as_mut(), fresh().as_mut(), || {
            Box::new(DirectedPolicy::new())
        })
        .expect("coherent directed run");
        let cosmos_concurrent = compare_concurrent(fresh().as_mut(), fresh().as_mut(), || {
            Box::new(CosmosPolicy::new(depth))
        })
        .expect("coherent concurrent accelerated run");
        IntegrationRow {
            app: name.to_string(),
            cosmos,
            directed,
            cosmos_concurrent,
        }
    })
}

/// Renders the study.
pub fn render_integration(rows: &[IntegrationRow], depth: usize) -> String {
    let mut out = format!(
        "Integration (§4/§8): live speculation on the machine, Cosmos depth {depth}\n\
         msg- = coherence-message reduction, speedup = execution-time ratio\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark",
        "msg-",
        "speedup",
        "grants",
        "repl",
        "dir msg-",
        "dir spd",
        "conc msg-",
        "conc spd"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8.1}% {:>8.2}x {:>8} {:>8} | {:>8.1}% {:>8.2}x | {:>8.1}% {:>8.2}x",
            r.app,
            100.0 * r.cosmos.message_saving(),
            r.cosmos.speedup(),
            r.cosmos.accelerated.exclusive_grants,
            r.cosmos.accelerated.voluntary_replacements,
            100.0 * r.directed.message_saving(),
            r.directed.speedup(),
            100.0 * r.cosmos_concurrent.message_saving(),
            r.cosmos_concurrent.speedup(),
        );
    }
    out.push_str(
        "(grants/repl = speculative exclusive grants / voluntary replacements;\n\
         dir = the directed RMW+DSI pairing; conc = Cosmos speculation on the\n\
         concurrent engine, where actions contend with real races)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_runs_coherently_at_small_scale() {
        let rows = integration(Scale::Small, 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // Identical access streams: hits can only move because of
            // speculation, and the run never wedges (compare() verified
            // coherence internally).
            assert!(r.cosmos.baseline.messages > 0);
            assert!(
                r.cosmos.accelerated.exclusive_grants + r.cosmos.accelerated.voluntary_replacements
                    > 0,
                "{}: no speculation fired",
                r.app
            );
        }
        let rendered = render_integration(&rows, 2);
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn speculation_helps_the_speculation_friendly_benchmarks() {
        let rows = integration(Scale::Small, 2);
        // dsmc's handoffs and unstructured/moldyn's migratory phases are
        // the headline cases: Cosmos speculation must cut messages there.
        for app in ["dsmc", "moldyn", "unstructured"] {
            let r = rows.iter().find(|r| r.app == app).unwrap();
            assert!(
                r.cosmos.accelerated.messages < r.cosmos.baseline.messages,
                "{app}: {} -> {}",
                r.cosmos.baseline.messages,
                r.cosmos.accelerated.messages
            );
        }
    }
}
