//! Trace tooling for downstream users: generate, inspect, and evaluate
//! coherence-message traces as files.
//!
//! ```text
//! tracedump gen <benchmark> <out.trace> [--small]   generate a trace file
//! tracedump info <file.trace>                       header + volume stats
//! tracedump arcs <file.trace>                       dominant signatures
//! tracedump eval <file.trace> [depth] [filter]      Cosmos accuracy
//! tracedump obs <file.trace> [depth]                metrics as obs.v1 JSON
//! tracedump dump <file.trace> [limit]               records as text
//! tracedump seq <file.trace> <block> [limit]        sequence diagram
//! ```
//!
//! Files use the `trace` crate's binary format (`CTR1`); `gen` writes with
//! the streaming writer, everything else reads with the streaming reader.

use bench_suite::traces::single_trace;
use bench_suite::Scale;
use cosmos::eval::evaluate_cosmos;
use simx::SystemConfig;
use stache::{ProtocolConfig, Role};
use std::process::ExitCode;
use trace::{io as trace_io, ArcTable, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracedump gen <benchmark> <out.trace> [--small]\n  \
         tracedump info <file.trace>\n  tracedump arcs <file.trace>\n  \
         tracedump eval <file.trace> [depth] [filter]\n  \
         tracedump obs <file.trace> [depth]\n  \
         tracedump dump <file.trace> [limit]\n  \
         tracedump seq <file.trace> <block> [limit]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), args.len()) {
        ("gen", 3..=4) => {
            let scale = if args.get(3).is_some_and(|a| a == "--small") {
                Scale::Small
            } else {
                Scale::Paper
            };
            let bundle = single_trace(
                &args[1],
                scale,
                ProtocolConfig::paper(),
                SystemConfig::paper(),
            );
            if let Err(e) = trace_io::write_file(&args[2], &bundle) {
                eprintln!("writing {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
            println!("{}: {} records written", args[2], bundle.len());
            ExitCode::SUCCESS
        }
        ("info", 2) => with_bundle(&args[1], |bundle| {
            let stats = TraceStats::compute(bundle);
            println!(
                "app={} nodes={} iterations={}",
                bundle.meta().app,
                bundle.meta().nodes,
                bundle.meta().iterations
            );
            print!("{stats}");
        }),
        ("arcs", 2) => with_bundle(&args[1], |bundle| {
            let arcs = ArcTable::from_bundle(bundle);
            for role in [Role::Cache, Role::Directory] {
                println!("dominant arcs at the {role}:");
                for (key, count) in arcs.dominant(role).into_iter().take(8) {
                    println!(
                        "  {:<22} -> {:<22} {:>8} refs ({:>4.1}%)",
                        key.prev.paper_name(),
                        key.next.paper_name(),
                        count,
                        100.0 * arcs.share(key)
                    );
                }
            }
        }),
        ("eval", 2..=4) => {
            let depth: usize = args.get(2).map_or(Ok(1), |s| s.parse()).unwrap_or(1);
            let filter: u8 = args.get(3).map_or(Ok(0), |s| s.parse()).unwrap_or(0);
            with_bundle(&args[1], |bundle| {
                let r = evaluate_cosmos(bundle, depth.max(1), filter);
                println!("depth {depth}, filter {filter}");
                print!("{}", r.render_summary());
            })
        }
        ("obs", 2..=3) => {
            let depth: usize = args.get(2).map_or(Ok(1), |s| s.parse()).unwrap_or(1);
            with_bundle(&args[1], |bundle| {
                let mut snap = obs::Snapshot::new();
                TraceStats::compute(bundle).export_obs(&mut snap);
                evaluate_cosmos(bundle, depth.max(1), 0).export_obs(depth.max(1), &mut snap);
                print!("{}", snap.to_json());
            })
        }
        ("seq", 3..=4) => {
            let block: u64 = match args[2].parse() {
                Ok(b) => b,
                Err(_) => return usage(),
            };
            let limit: usize = args.get(3).map_or(Ok(24), |s| s.parse()).unwrap_or(24);
            with_bundle(&args[1], |bundle| print_sequence(bundle, block, limit))
        }
        ("dump", 2..=3) => {
            let limit: usize = args.get(2).map_or(Ok(20), |s| s.parse()).unwrap_or(20);
            with_bundle(&args[1], |bundle| {
                for r in bundle.records().iter().take(limit) {
                    println!("{r}");
                }
                if bundle.len() > limit {
                    println!("... ({} more records)", bundle.len() - limit);
                }
            })
        }
        _ => usage(),
    }
}

/// Prints a Figure 1-style message sequence diagram for one block: each
/// line is one message reception, drawn between the sender's and
/// receiver's columns.
fn print_sequence(bundle: &trace::TraceBundle, block: u64, limit: usize) {
    let block = stache::BlockAddr::new(block);
    let records: Vec<_> = bundle.for_block(block).collect();
    if records.is_empty() {
        println!("no messages for {block} in this trace");
        return;
    }
    // Columns: the nodes that participate, in index order.
    let mut nodes: Vec<usize> = records
        .iter()
        .flat_map(|r| [r.node.index(), r.sender.index()])
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    print!("{:>10} ", "time(ns)");
    for n in &nodes {
        print!("{:^12}", format!("P{n}"));
    }
    println!();
    for r in records.iter().take(limit) {
        print!("{:>10} ", r.time_ns);
        let from = nodes.iter().position(|&n| n == r.sender.index()).unwrap();
        let to = nodes.iter().position(|&n| n == r.node.index()).unwrap();
        let (lo, hi) = (from.min(to), from.max(to));
        for (i, _) in nodes.iter().enumerate() {
            if i == from {
                print!("{:^12}", "o");
            } else if i == to {
                print!("{:^12}", if to > from { ">" } else { "<" });
            } else if i > lo && i < hi {
                print!("{:^12}", "-");
            } else {
                print!("{:^12}", ".");
            }
        }
        println!("  {}", r.mtype.paper_name());
    }
    if records.len() > limit {
        println!(
            "... ({} more messages for this block)",
            records.len() - limit
        );
    }
}

fn with_bundle(path: &str, f: impl FnOnce(&trace::TraceBundle)) -> ExitCode {
    match trace_io::read_file(path) {
        Ok(bundle) => {
            f(&bundle);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("reading {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
