//! Regenerates the paper's tables and figures from scratch.
//!
//! ```text
//! repro [--small] [TARGET ...]
//!
//! TARGETS
//!   table1 table2 table3 table4 table5 table6 table7 table8
//!   fig5 fig6 fig7 fig8
//!   sensitivity adaptation comparison ablation
//!   integration variants persistence limitless scaling topology
//!   simcheck     (bounded schedule-exploration model check)
//!   speedup      (measured speculative speedup vs the Figure 5 model)
//!   tournament   (predictor competition: accuracy-vs-bits frontier)
//!   scale        (sharded-engine 64-1024 node throughput sweep;
//!                 run explicitly — `all` does not include it)
//!   tracepack    (packed-trace codec throughput, SimPoint-sampled
//!                 accuracy, and the streaming ≥1e8-message cell;
//!                 run explicitly — `all` does not include it)
//!   all          (default) everything above except `scale` and
//!                `tracepack`
//!
//! Repeated targets run once: the list is deduplicated preserving the
//! first occurrence's position, so `repro table5 all` never evaluates a
//! table twice.
//! ```
//!
//! `--small` uses the reduced workload sizes (for smoke runs); the default
//! is the paper-calibrated scale. `--csv DIR` additionally writes
//! machine-readable CSV files for the plottable artefacts (tables 5-8,
//! figure 5) into DIR.
//!
//! `--obs-json PATH` runs one instrumented benchmark end-to-end (`--obs-app
//! NAME` selects it; default `appbt`) and writes the workspace-wide metrics
//! snapshot — machine, protocol, trace, predictor, and speculation layers —
//! as `obs.v1` JSON to PATH. Given alone, it runs only the report.
//!
//! `--bench-json PATH` times the run: every target's wall time, the trace
//! generation phase, a dedicated predictor replay pass (throughput and
//! core probe/capacity counters), and sweep-parallelism utilisation are
//! written as an `obs.v1` JSON snapshot to PATH (`BENCH_repro.json` in
//! CI).

use bench_suite::{extras, faults, figures, obs_report, tables, BenchTimer, Scale, TraceSet};
use simx::{FaultPlan, SystemConfig};
use std::process::ExitCode;
use std::time::Instant;

const TARGETS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "sensitivity",
    "adaptation",
    "comparison",
    "ablation",
    "integration",
    "variants",
    "persistence",
    "limitless",
    "scaling",
    "topology",
    "engines",
    "lookahead",
    "seeds",
    "faults",
    "simcheck",
    "speedup",
    "tracespans",
    "tournament",
    "scale",
    "tracepack",
];

/// Targets `all` expands to. The `scale` sweep and the `tracepack`
/// codec report are excluded: both exist to measure the simulator and
/// its trace pipeline (minutes of wall clock at paper scale — the
/// tracepack streaming cell alone simulates ≥10⁸ messages) and are run
/// explicitly — `repro all` wall-clock stays a property of the paper
/// reproduction alone.
fn all_targets() -> impl Iterator<Item = &'static &'static str> {
    TARGETS
        .iter()
        .filter(|t| **t != "scale" && **t != "tracepack")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut obs_json: Option<std::path::PathBuf> = None;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut obs_app = String::from("appbt");
    let mut fault_plan: Option<FaultPlan> = None;
    let mut faults_seed: Option<u64> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut expect = None::<&str>;
    for a in &args {
        match expect.take() {
            Some("--csv") => {
                csv_dir = Some(std::path::PathBuf::from(a));
                continue;
            }
            Some("--obs-json") => {
                obs_json = Some(std::path::PathBuf::from(a));
                continue;
            }
            Some("--bench-json") => {
                bench_json = Some(std::path::PathBuf::from(a));
                continue;
            }
            Some("--obs-app") => {
                obs_app = a.clone();
                continue;
            }
            Some("--trace-out") => {
                trace_out = Some(std::path::PathBuf::from(a));
                continue;
            }
            Some("--faults") => {
                match FaultPlan::parse(a) {
                    Ok(p) => fault_plan = Some(p),
                    Err(e) => {
                        eprintln!("--faults: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                continue;
            }
            Some("--faults-seed") => {
                match a.parse::<u64>() {
                    Ok(s) => faults_seed = Some(s),
                    Err(_) => {
                        eprintln!("--faults-seed: `{a}` is not a u64");
                        return ExitCode::FAILURE;
                    }
                }
                continue;
            }
            Some(_) => unreachable!(),
            None => {}
        }
        match a.as_str() {
            "--small" => scale = Scale::Small,
            "--csv" | "--obs-json" | "--bench-json" | "--obs-app" | "--faults"
            | "--faults-seed" | "--trace-out" => expect = Some(a.as_str()),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--small] [--csv DIR] [--obs-json PATH [--obs-app NAME]] \
                     [--bench-json PATH] [--trace-out PATH] \
                     [--faults SPEC [--faults-seed N]] [{}|all ...]",
                    TARGETS.join("|")
                );
                println!(
                    "  --bench-json PATH  write per-phase wall-clock timings and predictor \
                     throughput as obs.v1 JSON to PATH"
                );
                println!(
                    "  --trace-out PATH   write the traced runs of the `tracespans` target \
                     as Chrome trace-event JSON (Perfetto-loadable) to PATH"
                );
                println!(
                    "  --faults SPEC   fault plan for the `faults` target, e.g. \
                     drop=0.01,dup=0.005,reorder=3 (keys: drop, dup, spike, reorder, spike_ns)"
                );
                return ExitCode::SUCCESS;
            }
            "all" => targets.extend(all_targets().map(|s| s.to_string())),
            t if TARGETS.contains(&t) => targets.push(t.to_string()),
            other => {
                eprintln!("unknown target `{other}`; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(flag) = expect {
        eprintln!("{flag} needs a value; try --help");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &trace_out {
        // Fail on an unwritable destination before minutes of simulation.
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = parent {
            if !dir.is_dir() {
                eprintln!("--trace-out: directory {} does not exist", dir.display());
                return ExitCode::FAILURE;
            }
        }
        // `--trace-out` alone implies the target that produces the trace.
        if !targets.iter().any(|t| t == "tracespans") {
            targets.push("tracespans".to_string());
        }
    }

    // `--faults SPEC` alone runs the fault-sensitivity report; the
    // `faults` target without a spec uses a small default perturbation.
    if fault_plan.is_some() && targets.is_empty() && obs_json.is_none() {
        targets.push("faults".to_string());
    }
    let fault_plan = {
        let mut p = fault_plan.unwrap_or_else(|| {
            FaultPlan::parse("drop=0.01,dup=0.005,reorder=3").expect("default fault spec")
        });
        if let Some(seed) = faults_seed {
            p = p.with_seed(seed);
        }
        p
    };

    if let Some(path) = &obs_json {
        let apps = bench_suite::report::report_apps();
        if !apps.contains(&obs_app) {
            eprintln!("unknown --obs-app `{obs_app}`; one of: {}", apps.join(", "));
            return ExitCode::FAILURE;
        }
        eprintln!("running instrumented {obs_app} ({scale:?} scale)...");
        let snap = obs_report(scale, &obs_app);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} ({} metrics)", path.display(), snap.len());
        // `--obs-json` alone runs only the report.
        if targets.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if targets.is_empty() {
        targets.extend(all_targets().map(|s| s.to_string()));
    }
    // Run each target once however often it was named (`repro table5
    // table5`, or `table5 all`, or an implied push duplicating an explicit
    // one). Keep the first occurrence's position so output order follows
    // the command line.
    {
        let mut seen = std::collections::HashSet::new();
        targets.retain(|t| seen.insert(t.clone()));
    }

    // Figures 6/7 share the same trace set as the tables; generate once.
    let needs_set = targets.iter().any(|t| {
        matches!(
            t.as_str(),
            "table5"
                | "table6"
                | "table7"
                | "table8"
                | "fig6"
                | "fig7"
                | "adaptation"
                | "comparison"
                | "ablation"
                | "variants"
                | "persistence"
                | "lookahead"
                | "tournament"
                | "tracepack"
        )
    });
    let mut bench = bench_json.as_ref().map(|_| BenchTimer::new());
    let set = needs_set.then(|| {
        eprintln!("generating traces ({scale:?} scale)...");
        let t0 = Instant::now();
        let set = TraceSet::generate(scale);
        if let Some(b) = &mut bench {
            b.record("traces", t0.elapsed());
        }
        set
    });
    let set = set.as_ref();

    let mut fig67_done = false;
    for t in &targets {
        let phase_start = Instant::now();
        match t.as_str() {
            "table1" => println!("{}", tables::table1()),
            "table2" => println!("{}", tables::table2()),
            "table3" => println!("{}", tables::table3(&SystemConfig::paper())),
            "table4" => println!("{}", tables::table4()),
            "table5" => {
                let rows = tables::table5(set.unwrap());
                println!("{}", tables::render_table5(&rows));
                write_csv(&csv_dir, "table5.csv", &tables::csv_table5(&rows));
            }
            "table6" => {
                let rows = tables::table6(set.unwrap());
                println!("{}", tables::render_table6(&rows));
                write_csv(&csv_dir, "table6.csv", &tables::csv_table6(&rows));
            }
            "table7" => {
                let rows = tables::table7(set.unwrap());
                println!("{}", tables::render_table7(&rows));
                write_csv(&csv_dir, "table7.csv", &tables::csv_table7(&rows));
            }
            "table8" => {
                let rows = tables::table8_from_set(set.unwrap());
                println!("{}", tables::render_table8(&rows));
                write_csv(&csv_dir, "table8.csv", &tables::csv_table8(&rows));
            }
            "fig5" => {
                let series = figures::figure5();
                println!("{}", figures::render_figure5(&series));
                write_csv(&csv_dir, "figure5.csv", &figures::csv_figure5(&series));
            }
            "fig6" | "fig7" => {
                if !fig67_done {
                    println!("{}", figures::render_figures_6_7(set.unwrap()));
                    fig67_done = true;
                }
            }
            "fig8" => println!("{}", figures::render_figure8()),
            "sensitivity" => {
                let latencies = [40, 200, 1000];
                let rows = extras::latency_sensitivity(scale, &latencies);
                println!("{}", extras::render_latency_sensitivity(&rows, &latencies));
            }
            "adaptation" => {
                println!(
                    "{}",
                    extras::render_adaptation(&extras::adaptation(set.unwrap()))
                );
            }
            "comparison" => {
                println!(
                    "{}",
                    extras::render_comparison(&extras::comparison(set.unwrap()))
                );
            }
            "ablation" => {
                println!("{}", extras::ablation_half_migratory(scale));
                println!("{}", extras::ablation_sender(set.unwrap()));
            }
            "variants" => {
                println!("{}", extras::variants(set.unwrap()));
            }
            "persistence" => {
                println!("{}", extras::history_persistence(set.unwrap()));
            }
            "limitless" => {
                println!("{}", extras::limitless(scale));
            }
            "scaling" => {
                println!("{}", extras::scaling(scale));
            }
            "topology" => {
                println!("{}", extras::topology_sensitivity(scale));
            }
            "engines" => {
                println!("{}", extras::engines(scale));
            }
            "lookahead" => {
                println!("{}", extras::lookahead(set.unwrap()));
            }
            "seeds" => {
                println!("{}", extras::seed_robustness(scale));
            }
            "faults" => {
                eprintln!(
                    "running fault-sensitivity report ({scale:?} scale, seed {})...",
                    fault_plan.seed
                );
                let report = faults::fault_report(scale, &fault_plan);
                println!("{}", faults::render_fault_report(&report));
                write_csv(&csv_dir, "faults.csv", &faults::csv_fault_report(&report));
                write_csv(&csv_dir, "faults_obs.json", &report.export_obs().to_json());
            }
            "speedup" => {
                use bench_suite::speedup;
                eprintln!(
                    "running speculative speedup report ({scale:?} scale, seed {})...",
                    fault_plan.seed
                );
                let report = speedup::speedup_report(scale, &fault_plan);
                println!("{}", speedup::render_speedup_report(&report));
                write_csv(
                    &csv_dir,
                    "speedup.csv",
                    &speedup::csv_speedup_report(&report),
                );
                write_csv(&csv_dir, "speedup_obs.json", &report.export_obs().to_json());
            }
            "integration" => {
                let rows = bench_suite::integration::integration(scale, 2);
                println!("{}", bench_suite::integration::render_integration(&rows, 2));
            }
            "tracespans" => {
                use bench_suite::spans;
                eprintln!("running traced benchmarks ({scale:?} scale, both engines)...");
                let runs = spans::traced_runs(scale);
                let rows = spans::attribution(&runs);
                println!("{}", spans::render_attribution(&rows));
                println!("{}", spans::render_phases(&runs));
                println!("{}", spans::render_critical_paths(&runs, 5));
                write_csv(&csv_dir, "tracespans.csv", &spans::csv_attribution(&rows));
                if let Some(path) = &trace_out {
                    match spans::write_chrome_trace(&runs, path) {
                        Ok(()) => eprintln!("wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("writing {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "tournament" => {
                use bench_suite::tournament;
                eprintln!("running predictor tournament ({scale:?} scale)...");
                let cells = tournament::tournament(set.unwrap());
                let rows = tournament::frontier(&cells);
                println!("{}", tournament::render_tournament(&cells));
                println!("{}", tournament::render_frontier(&rows));
                write_csv(
                    &csv_dir,
                    "tournament.csv",
                    &tournament::csv_tournament(&cells),
                );
                write_csv(
                    &csv_dir,
                    "tournament_frontier.csv",
                    &tournament::csv_frontier(&rows),
                );
                write_csv(
                    &csv_dir,
                    "tournament_obs.json",
                    &tournament::export_obs(&cells, &rows).to_json(),
                );
            }
            "scale" => {
                use bench_suite::scale as sc;
                eprintln!("running sharded scale sweep ({scale:?} scale)...");
                let rows = sc::sweep(scale);
                println!("{}", sc::render_scale(&rows));
                write_csv(&csv_dir, "scale.csv", &sc::csv_scale(&rows));
                write_csv(
                    &csv_dir,
                    "BENCH_scale.json",
                    &sc::export_obs(&rows).to_json(),
                );
            }
            "tracepack" => {
                use bench_suite::tracepack as tp;
                eprintln!("running packed-trace pipeline report ({scale:?} scale)...");
                let report = tp::tracepack(set.unwrap(), scale);
                println!("{}", tp::render_tracepack(&report));
                write_csv(&csv_dir, "tracepack.csv", &tp::csv_tracepack(&report));
                write_csv(
                    &csv_dir,
                    "BENCH_trace.json",
                    &tp::export_obs(&report).to_json(),
                );
            }
            "simcheck" => {
                use bench_suite::modelcheck;
                eprintln!("running bounded schedule exploration ({scale:?} scale)...");
                let rows = modelcheck::simcheck_report(scale);
                println!("{}", modelcheck::render_simcheck(&rows));
                write_csv(&csv_dir, "simcheck.csv", &modelcheck::csv_simcheck(&rows));
                write_csv(
                    &csv_dir,
                    "simcheck_obs.json",
                    &modelcheck::export_obs(&rows).to_json(),
                );
                if rows.iter().any(|r| r.violation.is_some()) {
                    eprintln!("simcheck: invariant violation found");
                    return ExitCode::FAILURE;
                }
            }
            _ => unreachable!("validated above"),
        }
        if let Some(b) = &mut bench {
            b.record(t, phase_start.elapsed());
        }
    }

    if let (Some(mut b), Some(path)) = (bench, &bench_json) {
        if let Some(set) = set {
            let msgs: u64 = set
                .traces()
                .iter()
                .map(|tr| tr.records().len() as u64)
                .sum();
            b.add_messages(msgs);
            // A dedicated replay pass isolates predictor throughput from
            // table bookkeeping and collects the core probe counters.
            let t0 = Instant::now();
            for tr in set.traces() {
                let report = cosmos::eval::evaluate_cosmos(tr, 1, 0);
                b.add_core(report.core);
            }
            let dt = t0.elapsed();
            b.record("predictor_pass", dt);
            b.add_predictor_pass(msgs, dt);
        }
        let snap = b.snapshot();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} ({} metrics)", path.display(), snap.len());
    }
    ExitCode::SUCCESS
}

/// Writes one CSV artefact when `--csv DIR` was given.
fn write_csv(dir: &Option<std::path::PathBuf>, name: &str, contents: &str) {
    if let Some(dir) = dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("creating {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        match std::fs::write(&path, contents) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("writing {}: {e}", path.display()),
        }
    }
}
