#![warn(missing_docs)]

//! # bench-suite — regenerating every table and figure of the paper
//!
//! Each evaluation artefact of *Using Prediction to Accelerate Coherence
//! Protocols* has a generator here that produces both structured data and
//! a rendered table in the paper's layout:
//!
//! | Artefact | Generator |
//! |---|---|
//! | Table 1 (message vocabulary) | [`tables::table1`] |
//! | Table 3 (system parameters) | [`tables::table3`] |
//! | Table 4 (benchmarks) | [`tables::table4`] |
//! | Table 5 (accuracy vs MHR depth) | [`tables::table5`] |
//! | Table 6 (noise filters) | [`tables::table6`] |
//! | Table 7 (memory overhead) | [`tables::table7`] |
//! | Table 8 (dsmc adaptation) | [`tables::table8`] |
//! | Figure 5 (speedup model) | [`figures::figure5`] |
//! | Figures 6/7 (dominant signatures) | [`figures::render_figures_6_7`] |
//! | Figure 8 (directed trigger signatures) | [`figures::render_figure8`] |
//! | §5 latency-insensitivity claim | [`extras::latency_sensitivity`] |
//! | §6.2 time-to-adapt | [`extras::adaptation`] |
//! | §7 directed-predictor comparison | [`extras::comparison`] |
//! | Design-choice ablations | [`extras::ablation_half_migratory`], [`extras::ablation_sender`] |
//! | §4/§8 live integration | [`integration::integration`] |
//! | §5 fault-sensitivity (clean vs perturbed traces) | [`faults::fault_report`] |
//! | Schedule-exploration model check | [`modelcheck::simcheck_report`] |
//! | Predictor tournament (accuracy-vs-bits frontier) | [`tournament::tournament`] |
//! | Measured speculation speedup vs Figure 5 | [`speedup::speedup_report`] |
//! | Packed-trace codec + SimPoint sampling | [`tracepack::tracepack`] |
//!
//! The `repro` binary drives them from the command line; the [`Harness`]
//! benches under `benches/` time the underlying machinery. The
//! [`report::obs_report`] pipeline condenses one full run — machine,
//! protocol, predictor, and speculation metrics — into a single
//! machine-readable [`obs::Snapshot`] (`repro --obs-json`).

pub mod bench_report;
pub mod extras;
pub mod faults;
pub mod figures;
pub mod harness;
pub mod integration;
pub mod modelcheck;
pub mod par;
pub mod report;
pub mod scale;
pub mod spans;
pub mod speedup;
pub mod tables;
pub mod tournament;
pub mod tracepack;
pub mod traces;

pub use bench_report::BenchTimer;
pub use harness::Harness;
pub use report::obs_report;
pub use traces::{Scale, TraceSet};
