//! The predictor tournament: every family in the repo raced over the same
//! traces, with honest storage accounting — the accuracy-vs-bits frontier.
//!
//! The paper compares Cosmos against directed predictors on accuracy alone
//! (§7); Table 7 prices Cosmos's tables separately. The tournament joins
//! the two axes: each contender replays the identical trace set through
//! [`cosmos::eval::evaluate`] and reports both its accuracy *and* the
//! storage its fleet actually used, in bits, via
//! [`MessagePredictor::storage_bits`]. Nothing is normalised in the
//! predictor's favour: a TAGE table pays for every entry of its fixed
//! geometry whether occupied or not, while the map-based predictors pay
//! per resident entry — exactly the hardware-vs-software trade each design
//! makes.
//!
//! Contenders: Cosmos at MHR depths 1–4 (filterless), the §7 directed
//! baselines, TAGE-MP at three budget points, and the per-agent
//! Cosmos-vs-TAGE tournament hybrid.

use crate::par;
use crate::traces::TraceSet;
use cosmos::directed::{
    Composition, DsiPredictor, LastTuple, MigratoryPredictor, MostCommon, RmwPredictor,
};
use cosmos::eval::{evaluate, EvalOptions};
use cosmos::{CosmosPredictor, CosmosTageHybrid, MessagePredictor, TageConfig, TagePredictor};
use stache::Role;
use std::fmt::Write as _;

/// One contender family at one configuration point.
#[derive(Debug, Clone)]
enum Family {
    Cosmos(usize),
    Migratory,
    Dsi,
    Rmw,
    Composition,
    LastTuple,
    MostCommon,
    Tage(TageConfig),
    Hybrid(TageConfig),
}

impl Family {
    fn build(&self, role: Role) -> Box<dyn MessagePredictor> {
        match self {
            Family::Cosmos(depth) => Box::new(CosmosPredictor::new(*depth, 0)),
            Family::Migratory => Box::new(MigratoryPredictor::new(role)),
            Family::Dsi => Box::new(DsiPredictor::new(role)),
            Family::Rmw => Box::new(RmwPredictor::new(role)),
            Family::Composition => Box::new(Composition::new(role)),
            Family::LastTuple => Box::new(LastTuple::new()),
            Family::MostCommon => Box::new(MostCommon::new()),
            Family::Tage(config) => Box::new(TagePredictor::new(config.clone())),
            Family::Hybrid(config) => Box::new(CosmosTageHybrid::new(1, 0, config.clone())),
        }
    }
}

/// The fixed contender list, in display order.
fn contenders() -> Vec<(&'static str, Family)> {
    vec![
        ("cosmos-d1", Family::Cosmos(1)),
        ("cosmos-d2", Family::Cosmos(2)),
        ("cosmos-d3", Family::Cosmos(3)),
        ("cosmos-d4", Family::Cosmos(4)),
        ("migratory", Family::Migratory),
        ("self-inval", Family::Dsi),
        ("rmw", Family::Rmw),
        ("composition", Family::Composition),
        ("last-tuple", Family::LastTuple),
        ("most-common", Family::MostCommon),
        ("tage-small", Family::Tage(TageConfig::small())),
        ("tage-mid", Family::Tage(TageConfig::mid())),
        ("tage-large", Family::Tage(TageConfig::large())),
        ("cosmos+tage", Family::Hybrid(TageConfig::mid())),
    ]
}

/// One `(contender, benchmark)` cell of the tournament.
#[derive(Debug, Clone)]
pub struct TournamentCell {
    /// Benchmark name.
    pub app: String,
    /// Contender label (budget point included, unlike `name()`).
    pub predictor: String,
    /// Correct predictions among scored messages.
    pub hits: u64,
    /// Messages scored.
    pub total: u64,
    /// Messages for which a prediction was offered at all.
    pub offered: u64,
    /// The fleet's storage cost after the replay, in bits.
    pub storage_bits: u64,
}

impl TournamentCell {
    /// Accuracy on all messages, as a percentage.
    pub fn accuracy_pct(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.hits as f64 / self.total as f64
    }

    /// Share of messages with a prediction offered, as a percentage.
    pub fn coverage_pct(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.offered as f64 / self.total as f64
    }
}

/// One contender's aggregate row: accuracy pooled over every benchmark
/// (messages-weighted, not a mean of means) and the per-benchmark mean
/// fleet storage.
#[derive(Debug, Clone)]
pub struct FrontierRow {
    /// Contender label.
    pub predictor: String,
    /// Correct predictions pooled over all benchmarks.
    pub hits: u64,
    /// Messages scored over all benchmarks.
    pub total: u64,
    /// Mean fleet storage per benchmark, in bits (rounded to nearest).
    pub storage_bits: u64,
    /// Whether no other contender has both fewer-or-equal bits and
    /// greater-or-equal accuracy (with one strict) — the Pareto frontier.
    pub pareto: bool,
}

impl FrontierRow {
    /// Pooled accuracy as a percentage.
    pub fn accuracy_pct(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.hits as f64 / self.total as f64
    }
}

/// Races every contender over every trace of the set. Cells come back in
/// deterministic contender-major order; the sweep itself is parallel.
pub fn tournament(set: &TraceSet) -> Vec<TournamentCell> {
    let contenders = contenders();
    let traces = set.traces();
    let n = contenders.len() * traces.len();
    par::sweep(n, |i| {
        let (name, family) = &contenders[i / traces.len()];
        let trace = &traces[i % traces.len()];
        let report = evaluate(trace, &EvalOptions::default(), |_, role| family.build(role));
        TournamentCell {
            app: trace.meta().app.clone(),
            predictor: name.to_string(),
            hits: report.overall.hits,
            total: report.overall.total,
            offered: report.coverage.hits,
            storage_bits: report.storage_bits,
        }
    })
}

/// Folds the cells into one frontier row per contender and marks Pareto
/// optimality. Rows keep the contender display order.
pub fn frontier(cells: &[TournamentCell]) -> Vec<FrontierRow> {
    let mut rows: Vec<FrontierRow> = Vec::new();
    let mut bits_sum: Vec<(u64, u64)> = Vec::new(); // (Σ bits, benchmarks)
    for cell in cells {
        let idx = match rows.iter().position(|r| r.predictor == cell.predictor) {
            Some(i) => i,
            None => {
                rows.push(FrontierRow {
                    predictor: cell.predictor.clone(),
                    hits: 0,
                    total: 0,
                    storage_bits: 0,
                    pareto: false,
                });
                bits_sum.push((0, 0));
                rows.len() - 1
            }
        };
        rows[idx].hits += cell.hits;
        rows[idx].total += cell.total;
        bits_sum[idx].0 += cell.storage_bits;
        bits_sum[idx].1 += 1;
    }
    for (row, (sum, n)) in rows.iter_mut().zip(&bits_sum) {
        row.storage_bits = if *n == 0 { 0 } else { (sum + n / 2) / n };
    }
    let snapshot: Vec<(u64, f64)> = rows
        .iter()
        .map(|r| (r.storage_bits, r.accuracy_pct()))
        .collect();
    for (i, row) in rows.iter_mut().enumerate() {
        let (bits, acc) = snapshot[i];
        row.pareto = !snapshot
            .iter()
            .enumerate()
            .any(|(j, &(b, a))| j != i && b <= bits && a >= acc && (b < bits || a > acc));
    }
    rows
}

/// Renders the per-benchmark accuracy matrix.
pub fn render_tournament(cells: &[TournamentCell]) -> String {
    let mut out = String::from(
        "Tournament: overall accuracy (%) per contender and benchmark.\n\
         Every contender replays the identical traces; a message with no\n\
         prediction offered scores as a miss.\n",
    );
    let apps: Vec<&str> = {
        let mut seen = Vec::new();
        for c in cells {
            if !seen.contains(&c.app.as_str()) {
                seen.push(c.app.as_str());
            }
        }
        seen
    };
    let _ = write!(out, "{:<14}", "predictor");
    for app in &apps {
        let _ = write!(out, " {app:>12}");
    }
    let _ = writeln!(out, " {:>8}", "cov%");
    let mut preds = Vec::new();
    for c in cells {
        if !preds.contains(&c.predictor.as_str()) {
            preds.push(c.predictor.as_str());
        }
    }
    for pred in preds {
        let _ = write!(out, "{pred:<14}");
        let mine: Vec<&TournamentCell> = cells.iter().filter(|c| c.predictor == pred).collect();
        for app in &apps {
            match mine.iter().find(|c| c.app == *app) {
                Some(c) => {
                    let _ = write!(out, " {:>12.1}", c.accuracy_pct());
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let offered: u64 = mine.iter().map(|c| c.offered).sum();
        let total: u64 = mine.iter().map(|c| c.total).sum();
        let cov = if total == 0 {
            0.0
        } else {
            100.0 * offered as f64 / total as f64
        };
        let _ = writeln!(out, " {cov:>8.1}");
    }
    out
}

/// Renders the accuracy-vs-bits frontier, cheapest first.
pub fn render_frontier(rows: &[FrontierRow]) -> String {
    let mut out = String::from(
        "Frontier: pooled accuracy vs mean fleet storage (bits/benchmark).\n\
         `*` marks the Pareto frontier — no contender is both cheaper and\n\
         more accurate.\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>10} {:>7}",
        "predictor", "bits", "acc%", "pareto"
    );
    let mut sorted: Vec<&FrontierRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        a.storage_bits
            .cmp(&b.storage_bits)
            .then_with(|| a.predictor.cmp(&b.predictor))
    });
    for row in sorted {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>10.1} {:>7}",
            row.predictor,
            row.storage_bits,
            row.accuracy_pct(),
            if row.pareto { "*" } else { "" }
        );
    }
    out
}

/// Machine-readable per-cell CSV.
pub fn csv_tournament(cells: &[TournamentCell]) -> String {
    let mut out = String::from("app,predictor,hits,total,accuracy_pct,coverage_pct,storage_bits\n");
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4},{:.4},{}",
            c.app,
            c.predictor,
            c.hits,
            c.total,
            c.accuracy_pct(),
            c.coverage_pct(),
            c.storage_bits
        );
    }
    out
}

/// Machine-readable frontier CSV, in contender display order.
pub fn csv_frontier(rows: &[FrontierRow]) -> String {
    let mut out = String::from("predictor,storage_bits,accuracy_pct,pareto\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            r.predictor,
            r.storage_bits,
            r.accuracy_pct(),
            u64::from(r.pareto)
        );
    }
    out
}

/// Exports the frontier as a `tournament.*` obs snapshot.
pub fn export_obs(cells: &[TournamentCell], rows: &[FrontierRow]) -> obs::Snapshot {
    let mut snap = obs::Snapshot::new();
    snap.counter("tournament.cells", cells.len() as u64);
    snap.counter("tournament.contenders", rows.len() as u64);
    snap.counter(
        "tournament.pareto_count",
        rows.iter().filter(|r| r.pareto).count() as u64,
    );
    for r in rows {
        let key = r.predictor.replace('+', "-");
        snap.gauge(&format!("tournament.{key}.accuracy_pct"), r.accuracy_pct());
        snap.counter(&format!("tournament.{key}.storage_bits"), r.storage_bits);
        snap.counter(&format!("tournament.{key}.pareto"), u64::from(r.pareto));
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::Scale;

    fn small_cells() -> Vec<TournamentCell> {
        let set = TraceSet::generate(Scale::Small);
        tournament(&set)
    }

    #[test]
    fn covers_every_contender_and_benchmark() {
        let cells = small_cells();
        assert_eq!(cells.len(), contenders().len() * 5);
        for c in &cells {
            assert!(c.total > 0, "{}:{} scored nothing", c.app, c.predictor);
            assert!(c.hits <= c.total);
            assert!(c.offered <= c.total);
        }
        // Every contender carries a storage price on at least one
        // benchmark: 0 would mean unaccounted, which the frontier bans.
        for (name, _) in contenders() {
            let bits: u64 = cells
                .iter()
                .filter(|c| c.predictor == name)
                .map(|c| c.storage_bits)
                .sum();
            assert!(bits > 0, "{name} reports no storage");
        }
    }

    #[test]
    fn tage_fixed_geometry_dominates_its_storage() {
        let cells = small_cells();
        // A TAGE fleet's bits are at least its fixed table geometry times
        // the number of agents that saw any traffic (here: ≥ 1 agent).
        let small_bits = TageConfig::small().table_bits();
        for c in cells.iter().filter(|c| c.predictor == "tage-small") {
            assert!(
                c.storage_bits >= small_bits,
                "{}: {} < {}",
                c.app,
                c.storage_bits,
                small_bits
            );
        }
    }

    #[test]
    fn frontier_pools_and_marks_pareto() {
        let cells = small_cells();
        let rows = frontier(&cells);
        assert_eq!(rows.len(), contenders().len());
        // Totals pool: each row's total is the sum of its cells'.
        for row in &rows {
            let total: u64 = cells
                .iter()
                .filter(|c| c.predictor == row.predictor)
                .map(|c| c.total)
                .sum();
            assert_eq!(row.total, total, "{}", row.predictor);
        }
        // At least one Pareto point exists, and no Pareto point is
        // dominated by another row.
        let pareto: Vec<&FrontierRow> = rows.iter().filter(|r| r.pareto).collect();
        assert!(!pareto.is_empty());
        for p in &pareto {
            for other in &rows {
                if other.predictor == p.predictor {
                    continue;
                }
                let dominated = other.storage_bits <= p.storage_bits
                    && other.accuracy_pct() >= p.accuracy_pct()
                    && (other.storage_bits < p.storage_bits
                        || other.accuracy_pct() > p.accuracy_pct());
                assert!(
                    !dominated,
                    "{} dominated by {}",
                    p.predictor, other.predictor
                );
            }
        }
    }

    #[test]
    fn runs_are_byte_identical() {
        let set = TraceSet::generate(Scale::Small);
        let a = tournament(&set);
        let b = tournament(&set);
        assert_eq!(csv_tournament(&a), csv_tournament(&b));
        assert_eq!(csv_frontier(&frontier(&a)), csv_frontier(&frontier(&b)));
    }

    #[test]
    fn renders_and_exports() {
        let cells = small_cells();
        let rows = frontier(&cells);
        let t = render_tournament(&cells);
        assert!(t.contains("cosmos-d1") && t.contains("tage-large"));
        let f = render_frontier(&rows);
        assert!(f.contains("pareto"));
        let snap = export_obs(&cells, &rows);
        assert!(snap.names().iter().all(|n| n.starts_with("tournament.")));
        assert!(matches!(
            snap.get("tournament.cells"),
            Some(obs::MetricValue::Counter(n)) if *n == cells.len() as u64
        ));
        assert!(matches!(
            snap.get("tournament.cosmos-tage.storage_bits"),
            Some(obs::MetricValue::Counter(n)) if *n > 0
        ));
    }
}
