//! A dependency-free micro-benchmark harness.
//!
//! The `benches/` targets (all `harness = false`) time the evaluation
//! machinery without an external benchmarking crate: each case runs a few
//! warm-up iterations, then a fixed number of timed samples, and reports
//! the **median** wall-clock nanoseconds per iteration — robust to the
//! occasional slow sample on a shared machine. Results render through the
//! same [`obs::Table`] the evaluation tables use.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark group: a named collection of timed cases.
#[derive(Debug)]
pub struct Harness {
    name: String,
    warmup: u32,
    samples: u32,
    results: Vec<(String, u64)>,
}

impl Harness {
    /// A group with the default budget (3 warm-up + 15 timed samples).
    pub fn new<S: Into<String>>(name: S) -> Self {
        Harness {
            name: name.into(),
            warmup: 3,
            samples: 15,
            results: Vec::new(),
        }
    }

    /// Overrides the timed-sample count (warm-up stays proportional).
    pub fn with_samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self.warmup = (samples / 5).max(1);
        self
    }

    /// Times one case and records its median ns/iteration.
    ///
    /// The closure's result passes through [`black_box`] so the work
    /// cannot be optimised away.
    pub fn run<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> u64 {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times: Vec<u64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        self.results.push((label.to_string(), median));
        median
    }

    /// The median recorded for a case, if it ran.
    pub fn median_ns(&self, label: &str) -> Option<u64> {
        self.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, ns)| ns)
    }

    /// The results as a rendered table.
    pub fn report(&self) -> String {
        let mut t = obs::Table::new(vec!["bench", "median ns/iter"])
            .with_title(self.name.clone())
            .with_aligns(vec![obs::Align::Left, obs::Align::Right]);
        for (label, ns) in &self.results {
            t.push_row(vec![label.clone(), ns.to_string()]);
        }
        t.render()
    }

    /// Prints the report to stdout (call once at the end of `main`).
    pub fn finish(self) {
        println!("{}", self.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_recorded_and_rendered() {
        let mut h = Harness::new("unit").with_samples(5);
        let ns = h.run("spin", || (0..100u64).sum::<u64>());
        assert!(ns > 0);
        assert_eq!(h.median_ns("spin"), Some(ns));
        assert_eq!(h.median_ns("absent"), None);
        let report = h.report();
        assert!(report.contains("unit"));
        assert!(report.contains("spin"));
    }
}
