//! The fault-sensitivity report (`repro faults`).
//!
//! §5 of the paper argues Cosmos accuracy is insensitive to modest
//! perturbations of the message stream. This report tests that claim
//! directly: every benchmark runs twice on the serialized machine — once
//! on a perfect fabric and once under a seeded [`FaultPlan`] — and the
//! predictor is evaluated on both traces at MHR depths 1–4. Faults
//! perturb the *trace itself* — recovery shifts delivery timing and
//! ordering, and regrants for lost replies add receptions — while NAKs
//! and retransmission timers stay recovery-layer control traffic,
//! excluded from the vocabulary. The accuracy delta therefore measures
//! how much a lossy network degrades pattern-based prediction.
//!
//! Both runs are audited by the usual invariant checks; the perturbed
//! run's fault and recovery tallies are merged into one snapshot
//! (`simx.fault.*`, `stache.recovery.*`, and per-benchmark
//! `faults.<app>.*` gauges) so `repro --faults … --csv DIR` leaves a
//! machine-readable artefact next to the rendered table.

use cosmos::eval::evaluate_cosmos;
use simx::fault::FaultTally;
use simx::{driver, FaultPlan, Machine, SystemConfig};
use stache::{ProtocolConfig, RecoveryTally};
use trace::TraceBundle;
use workloads::{paper_suite, small_suite, Workload};

use crate::Scale;

/// MHR depths the sensitivity report evaluates.
pub const FAULT_DEPTHS: [usize; 4] = [1, 2, 3, 4];

/// One benchmark's clean-vs-perturbed comparison.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Benchmark name (Table 4 row order).
    pub app: String,
    /// Overall Cosmos accuracy (%) on the clean trace, per [`FAULT_DEPTHS`].
    pub clean_pct: [f64; 4],
    /// Overall Cosmos accuracy (%) on the perturbed trace.
    pub perturbed_pct: [f64; 4],
    /// Coherence messages in the clean trace.
    pub clean_msgs: usize,
    /// Coherence messages in the perturbed trace (retransmissions are
    /// re-recorded, so this is usually larger).
    pub perturbed_msgs: usize,
    /// Faults injected into this benchmark's run.
    pub faults: FaultTally,
    /// Recovery actions this benchmark's run needed.
    pub recovery: RecoveryTally,
}

/// The full five-benchmark sensitivity report.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The plan every perturbed run used.
    pub plan: FaultPlan,
    /// Per-benchmark rows, Table 4 order.
    pub rows: Vec<FaultRow>,
}

impl FaultReport {
    /// Fault and recovery totals across all five benchmarks.
    pub fn totals(&self) -> (FaultTally, RecoveryTally) {
        let mut faults = FaultTally::default();
        let mut recovery = RecoveryTally::new();
        for row in &self.rows {
            faults.deliveries = faults.deliveries.saturating_add(row.faults.deliveries);
            faults.drops = faults.drops.saturating_add(row.faults.drops);
            faults.dups = faults.dups.saturating_add(row.faults.dups);
            faults.jitter_events = faults
                .jitter_events
                .saturating_add(row.faults.jitter_events);
            faults.spikes = faults.spikes.saturating_add(row.faults.spikes);
            faults.extra_delay_ns.merge(&row.faults.extra_delay_ns);
            recovery.merge(&row.recovery);
        }
        (faults, recovery)
    }

    /// Exports the whole report as one snapshot: aggregate `simx.fault.*`
    /// and `stache.recovery.*` totals plus per-benchmark accuracy gauges.
    pub fn export_obs(&self) -> obs::Snapshot {
        let mut snap = obs::Snapshot::new();
        let (faults, recovery) = self.totals();
        faults.export_obs(&mut snap);
        recovery.export_obs(&mut snap);
        for row in &self.rows {
            for (i, depth) in FAULT_DEPTHS.iter().enumerate() {
                snap.gauge(
                    &format!("faults.{}.depth{depth}.clean_pct", row.app),
                    row.clean_pct[i],
                );
                snap.gauge(
                    &format!("faults.{}.depth{depth}.perturbed_pct", row.app),
                    row.perturbed_pct[i],
                );
            }
            snap.counter(
                &format!("faults.{}.clean_msgs", row.app),
                row.clean_msgs as u64,
            );
            snap.counter(
                &format!("faults.{}.perturbed_msgs", row.app),
                row.perturbed_msgs as u64,
            );
            snap.counter(&format!("faults.{}.retries", row.app), row.recovery.retries);
            snap.counter(&format!("faults.{}.naks", row.app), row.recovery.naks_sent);
        }
        snap
    }
}

fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Paper => paper_suite(),
        Scale::Small => small_suite(),
    }
}

/// Runs one workload to a trace, optionally under a fault plan, and
/// returns the trace with the run's fault and recovery tallies.
fn run_traced(
    w: &mut dyn Workload,
    plan: Option<FaultPlan>,
) -> (TraceBundle, FaultTally, RecoveryTally) {
    let mut machine = Machine::new(ProtocolConfig::paper(), SystemConfig::paper());
    machine.set_app(w.name(), w.iterations());
    if let Some(p) = plan {
        machine.set_fault_plan(p);
    }
    let name = w.name().to_string();
    for it in 0..w.iterations() {
        let plan = w.plan(it);
        driver::run_iteration(&mut machine, &plan, it)
            .unwrap_or_else(|e| panic!("{name} failed under faults: {e}"));
    }
    machine
        .verify_coherence()
        .unwrap_or_else(|e| panic!("{name} incoherent under faults: {e}"));
    let faults = machine.fault_tally().cloned().unwrap_or_default();
    let recovery = machine.recovery_tally().clone();
    (machine.into_trace(), faults, recovery)
}

/// Runs all five benchmarks clean and under `plan`, evaluating Cosmos on
/// both traces at every [`FAULT_DEPTHS`] depth.
///
/// The perturbed runs execute in parallel (one thread per benchmark, like
/// [`crate::TraceSet`]); every run is invariant-audited.
///
/// # Panics
///
/// Panics if any run fails or ends incoherent — under the recovery layer
/// that is a protocol bug, not an expected outcome.
pub fn fault_report(scale: Scale, plan: &FaultPlan) -> FaultReport {
    let pairs: Vec<(TraceBundle, TraceBundle, FaultTally, RecoveryTally)> =
        std::thread::scope(|s| {
            let handles: Vec<_> = suite(scale)
                .into_iter()
                .zip(suite(scale))
                .map(|(mut clean_w, mut fault_w)| {
                    let plan = plan.clone();
                    s.spawn(move || {
                        let (clean, _, _) = run_traced(clean_w.as_mut(), None);
                        let (perturbed, faults, recovery) =
                            run_traced(fault_w.as_mut(), Some(plan));
                        (clean, perturbed, faults, recovery)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("benchmark thread"))
                .collect()
        });

    let rows = pairs
        .into_iter()
        .map(|(clean, perturbed, faults, recovery)| {
            let accuracy = |bundle: &TraceBundle| {
                FAULT_DEPTHS.map(|d| evaluate_cosmos(bundle, d, 0).overall.percent())
            };
            FaultRow {
                app: clean.meta().app.clone(),
                clean_pct: accuracy(&clean),
                perturbed_pct: accuracy(&perturbed),
                clean_msgs: clean.len(),
                perturbed_msgs: perturbed.len(),
                faults,
                recovery,
            }
        })
        .collect();

    FaultReport {
        plan: plan.clone(),
        rows,
    }
}

/// Renders the accuracy comparison and the recovery-action summary.
pub fn render_fault_report(report: &FaultReport) -> String {
    let p = &report.plan;
    let mut acc = obs::Table::new(vec![
        "benchmark",
        "d1 clean",
        "d1 faulty",
        "d2 clean",
        "d2 faulty",
        "d3 clean",
        "d3 faulty",
        "d4 clean",
        "d4 faulty",
    ])
    .with_title(format!(
        "Cosmos accuracy (overall %), clean vs perturbed trace \
         (drop={}, dup={}, reorder={}, spike={}, seed={})",
        p.drop, p.dup, p.reorder, p.spike, p.seed
    ))
    .with_aligns(vec![
        obs::Align::Left,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
    ]);
    for row in &report.rows {
        let mut cells = vec![row.app.clone()];
        for i in 0..FAULT_DEPTHS.len() {
            cells.push(format!("{:.1}", row.clean_pct[i]));
            cells.push(format!("{:.1}", row.perturbed_pct[i]));
        }
        acc.push_row(cells);
    }

    let mut rec = obs::Table::new(vec![
        "benchmark",
        "msgs clean",
        "msgs faulty",
        "drops",
        "dups",
        "retries",
        "NAKs",
        "regrants",
    ])
    .with_title("Recovery actions under the fault plan".to_string())
    .with_aligns(vec![
        obs::Align::Left,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
        obs::Align::Right,
    ]);
    for row in &report.rows {
        rec.push_row(vec![
            row.app.clone(),
            row.clean_msgs.to_string(),
            row.perturbed_msgs.to_string(),
            row.faults.drops.to_string(),
            row.faults.dups.to_string(),
            row.recovery.retries.to_string(),
            row.recovery.naks_sent.to_string(),
            row.recovery.regrants.to_string(),
        ]);
    }

    format!("{}\n{}", acc.render(), rec.render())
}

/// The accuracy comparison as CSV (`faults.csv` under `--csv DIR`).
pub fn csv_fault_report(report: &FaultReport) -> String {
    let mut out = String::from(
        "benchmark,depth,clean_pct,perturbed_pct,clean_msgs,perturbed_msgs,\
         drops,dups,retries,naks\n",
    );
    for row in &report.rows {
        for (i, depth) in FAULT_DEPTHS.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{},{},{},{},{},{}\n",
                row.app,
                depth,
                row.clean_pct[i],
                row.perturbed_pct[i],
                row.clean_msgs,
                row.perturbed_msgs,
                row.faults.drops,
                row.faults.dups,
                row.recovery.retries,
                row.recovery.naks_sent,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue_plan() -> FaultPlan {
        FaultPlan::parse("drop=0.01,dup=0.005,reorder=3")
            .unwrap()
            .with_seed(7)
    }

    #[test]
    fn all_five_benchmarks_survive_the_issue_plan() {
        let report = fault_report(Scale::Small, &issue_plan());
        assert_eq!(
            report
                .rows
                .iter()
                .map(|r| r.app.as_str())
                .collect::<Vec<_>>(),
            vec!["appbt", "barnes", "dsmc", "moldyn", "unstructured"]
        );
        let (faults, recovery) = report.totals();
        assert!(faults.deliveries > 0, "the injector ruled on traffic");
        assert!(faults.drops > 0, "1% drop rate must hit something");
        assert!(!recovery.is_quiet(), "drops require recovery actions");
        for row in &report.rows {
            for i in 0..FAULT_DEPTHS.len() {
                assert!((0.0..=100.0).contains(&row.clean_pct[i]), "{}", row.app);
                assert!((0.0..=100.0).contains(&row.perturbed_pct[i]), "{}", row.app);
            }
            assert!(row.clean_msgs > 0 && row.perturbed_msgs > 0);
        }
        let rendered = render_fault_report(&report);
        assert!(rendered.contains("Cosmos accuracy"));
        assert!(rendered.contains("unstructured"));
        let csv = csv_fault_report(&report);
        // Header plus five benchmarks at four depths.
        assert_eq!(csv.lines().count(), 1 + 5 * FAULT_DEPTHS.len());
    }

    #[test]
    fn same_seed_exports_identical_obs_json() {
        let a = fault_report(Scale::Small, &issue_plan()).export_obs();
        let b = fault_report(Scale::Small, &issue_plan()).export_obs();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.get("stache.recovery.retries").is_some());
        assert!(a.get("simx.fault.drops").is_some());
        assert!(a.get("faults.appbt.naks").is_some());
    }
}
