//! Beyond the numbered artefacts: the paper's prose claims and the
//! design-choice ablations DESIGN.md calls out.

use crate::traces::{single_trace, Scale, TraceSet};
use cosmos::directed::{
    Composition, DsiPredictor, LastTuple, MigratoryPredictor, MostCommon, RmwPredictor,
};
use cosmos::eval::{evaluate, evaluate_cosmos, EvalOptions};
use cosmos::{CosmosPredictor, MessagePredictor, TypeOnlyCosmos};
use simx::SystemConfig;
use stache::{NodeId, ProtocolConfig, Role};
use std::fmt::Write as _;

/// §5's claim: accuracy is largely insensitive to network latency (40 ns
/// vs 1 µs "hardly changes" the rates). Returns, per benchmark, the
/// overall depth-1 accuracy at each latency.
pub fn latency_sensitivity(scale: Scale, latencies_ns: &[u64]) -> Vec<(String, Vec<f64>)> {
    let names = ["appbt", "barnes", "dsmc", "moldyn", "unstructured"];
    // One sweep cell per (benchmark, latency) — each is an independent
    // simulation, so the whole grid parallelises instead of one thread
    // crawling the 15 runs.
    let cols = latencies_ns.len();
    let cells = crate::par::sweep(names.len() * cols, |i| {
        let name = names[i / cols];
        let lat = latencies_ns[i % cols];
        let sys = SystemConfig::paper().with_network_latency(lat);
        let t = single_trace(name, scale, ProtocolConfig::paper(), sys);
        evaluate_cosmos(&t, 1, 0).overall.percent()
    });
    names
        .iter()
        .enumerate()
        .map(|(r, name)| (name.to_string(), cells[r * cols..(r + 1) * cols].to_vec()))
        .collect()
}

/// Renders the latency sweep.
pub fn render_latency_sensitivity(rows: &[(String, Vec<f64>)], latencies_ns: &[u64]) -> String {
    let mut out =
        String::from("Sensitivity: overall depth-1 accuracy (%) vs network latency (§5)\n");
    let _ = write!(out, "{:<14}", "benchmark");
    for lat in latencies_ns {
        let _ = write!(out, " {:>9}", format!("{lat} ns"));
    }
    out.push('\n');
    for (app, rates) in rows {
        let _ = write!(out, "{app:<14}");
        for r in rates {
            let _ = write!(out, " {r:>9.1}");
        }
        out.push('\n');
    }
    out
}

/// §6.2's time-to-adapt: iterations until the trailing-window accuracy
/// reaches 95% of steady state (depth 1, no filter).
pub fn adaptation(set: &TraceSet) -> Vec<(String, Option<u32>)> {
    set.traces()
        .iter()
        .map(|t| {
            let report = evaluate_cosmos(t, 1, 0);
            (t.meta().app.clone(), report.time_to_adapt(4, 0.95))
        })
        .collect()
}

/// Renders the adaptation table.
pub fn render_adaptation(rows: &[(String, Option<u32>)]) -> String {
    let mut out = String::from(
        "Time to adapt (§6.2): first iteration whose trailing window reaches\n\
         95% of steady-state accuracy (depth 1). Paper: <20 (unstructured,\n\
         barnes), ~30 (appbt, moldyn), ~300 (dsmc).\n",
    );
    for (app, at) in rows {
        let v = at.map(|i| i.to_string()).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(out, "{app:<14} {v:>6}");
    }
    out
}

/// §7's comparison: Cosmos (depths 1 and 3) against every directed
/// predictor and the baselines, overall accuracy per benchmark.
pub fn comparison(set: &TraceSet) -> Vec<(String, Vec<(String, f64)>)> {
    // Plain fn pointers (capture nothing) so the contender table is
    // `Sync` and the (benchmark × predictor) grid can fan out as one
    // sweep cell per evaluation.
    type Factory = fn(NodeId, Role) -> Box<dyn MessagePredictor>;
    let contenders: &[(&str, Factory)] = &[
        ("cosmos-d1", |_, _| Box::new(CosmosPredictor::new(1, 0))),
        ("cosmos-d3", |_, _| Box::new(CosmosPredictor::new(3, 0))),
        ("migratory", |_, role| {
            Box::new(MigratoryPredictor::new(role))
        }),
        ("self-inval", |_, role| Box::new(DsiPredictor::new(role))),
        ("rmw", |_, role| Box::new(RmwPredictor::new(role))),
        ("composition", |_, role| Box::new(Composition::new(role))),
        ("last-tuple", |_, _| Box::new(LastTuple::new())),
        ("most-common", |_, _| Box::new(MostCommon::new())),
    ];
    let cols = contenders.len();
    let traces = set.traces();
    let cells = crate::par::sweep(traces.len() * cols, |i| {
        let t = &traces[i / cols];
        let (name, factory) = contenders[i % cols];
        let r = evaluate(t, &EvalOptions::default(), |n, role| factory(n, role));
        (name.to_string(), r.overall.percent())
    });
    traces
        .iter()
        .enumerate()
        .map(|(r, t)| {
            (
                t.meta().app.clone(),
                cells[r * cols..(r + 1) * cols].to_vec(),
            )
        })
        .collect()
}

/// Renders the §7 comparison.
pub fn render_comparison(rows: &[(String, Vec<(String, f64)>)]) -> String {
    let mut out =
        String::from("Comparison (§7): overall accuracy (%), Cosmos vs directed predictors\n");
    if let Some((_, first)) = rows.first() {
        let _ = write!(out, "{:<14}", "benchmark");
        for (name, _) in first {
            let _ = write!(out, " {name:>12}");
        }
        out.push('\n');
    }
    for (app, cells) in rows {
        let _ = write!(out, "{app:<14}");
        for (_, v) in cells {
            let _ = write!(out, " {v:>12.1}");
        }
        out.push('\n');
    }
    out
}

/// Ablation: the half-migratory optimisation (§5.1). Re-runs every
/// benchmark with it disabled (DASH-style downgrades) and reports the
/// depth-1 overall accuracy and total message count next to the defaults.
pub fn ablation_half_migratory(scale: Scale) -> String {
    let on = TraceSet::generate(scale);
    let off = TraceSet::generate_with(
        scale,
        ProtocolConfig {
            half_migratory: false,
            ..ProtocolConfig::paper()
        },
        SystemConfig::paper(),
    );
    let mut out = String::from(
        "Ablation: half-migratory optimisation (§5.1). hm = enabled (Stache),\n\
         dash = disabled (read misses downgrade the owner instead)\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "acc(hm)", "acc(dash)", "msgs(hm)", "msgs(dash)"
    );
    for (a, b) in on.traces().iter().zip(off.traces()) {
        let ra = evaluate_cosmos(a, 1, 0);
        let rb = evaluate_cosmos(b, 1, 0);
        let _ = writeln!(
            out,
            "{:<14} {:>9.1}% {:>9.1}% {:>12} {:>12}",
            a.meta().app,
            ra.overall.percent(),
            rb.overall.percent(),
            a.len(),
            b.len()
        );
    }
    out
}

/// Ablation: dropping the sender from the tuple (§3.5 footnote 3). Scores
/// a sender-agnostic Cosmos on message *type* only, next to the full
/// tuple's accuracy — the gap is what a type-only predictor would gain in
/// raw accuracy but lose in actionability.
pub fn ablation_sender(set: &TraceSet) -> String {
    let mut out =
        String::from("Ablation: <sender,type> tuple vs type-only prediction (§3.5 fn 3)\n");
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12}",
        "benchmark", "full tuple", "type-only"
    );
    for t in set.traces() {
        let full = evaluate_cosmos(t, 1, 0);
        let type_only = evaluate(
            t,
            &EvalOptions {
                type_only: true,
                ..Default::default()
            },
            |_, _| Box::new(TypeOnlyCosmos::new(1, 0)),
        );
        let _ = writeln!(
            out,
            "{:<14} {:>11.1}% {:>11.1}%",
            t.meta().app,
            full.overall.percent(),
            type_only.overall.percent()
        );
    }
    out
}

/// The predictor-variant study: the extensions the paper sketches —
/// macroblock grouping (§7), confidence gating (§4.2/§4.3), and the
/// preallocated-PHT memory layout (§3.7) — against plain Cosmos at
/// depth 2, reporting accuracy, coverage, and table sizes.
pub fn variants(set: &TraceSet) -> String {
    use cosmos::{ConfidenceCosmos, MacroblockCosmos, PreallocCosmos};
    type Factory = Box<dyn Fn() -> Box<dyn MessagePredictor>>;
    let contenders: Vec<(&str, Factory)> = vec![
        ("cosmos", Box::new(|| Box::new(CosmosPredictor::new(2, 0)))),
        (
            "macro x4",
            Box::new(|| Box::new(MacroblockCosmos::new(2, 0, 2))),
        ),
        (
            "macro x16",
            Box::new(|| Box::new(MacroblockCosmos::new(2, 0, 4))),
        ),
        (
            "conf>=2",
            Box::new(|| Box::new(ConfidenceCosmos::new(2, 2))),
        ),
        (
            "prealloc",
            Box::new(|| Box::new(PreallocCosmos::paper(2, 256))),
        ),
        (
            "shared 4k",
            Box::new(|| Box::new(cosmos::SharedPhtCosmos::new(2, 1, 12))),
        ),
        (
            "hybrid 1+3",
            Box::new(|| Box::new(cosmos::HybridCosmos::new(1, 3))),
        ),
    ];
    let mut out = String::from(
        "Variants: paper-sketched predictor extensions, depth 2.\n\
         acc = accuracy on all messages; cov = messages with a prediction\n\
         offered; acc|cov = accuracy among offered; PHT = total entries\n",
    );
    let _ = write!(out, "{:<14}", "benchmark");
    for (name, _) in &contenders {
        let _ = write!(out, " | {:^27}", name);
    }
    out.push('\n');
    let _ = write!(out, "{:<14}", "");
    for _ in &contenders {
        let _ = write!(
            out,
            " | {:>4} {:>4} {:>7} {:>7}",
            "acc", "cov", "acc|cov", "PHT"
        );
    }
    out.push('\n');
    for t in set.traces() {
        let _ = write!(out, "{:<14}", t.meta().app);
        for (_, factory) in &contenders {
            let r = evaluate(t, &EvalOptions::default(), |_, _| factory());
            let offered = r.coverage.hits.max(1);
            let _ = write!(
                out,
                " | {:>3.0}% {:>3.0}% {:>6.0}% {:>7}",
                r.overall.percent(),
                r.coverage.percent(),
                100.0 * r.overall.hits as f64 / offered as f64,
                r.memory.pht_entries
            );
        }
        out.push('\n');
    }
    out.push_str(
        "(macroblock trades accuracy for a smaller MHT; confidence trades\n\
         coverage for per-answer precision; prealloc bounds memory hard)\n",
    );
    out
}

/// The §3.7 history-persistence study: accuracy of an MHT-capacity-bounded
/// Cosmos (history discarded with LRU block eviction) as the per-agent
/// capacity shrinks — what merging the predictor tables with finite cache
/// state would cost.
pub fn history_persistence(set: &TraceSet) -> String {
    use cosmos::EvictingCosmos;
    let caps = [usize::MAX, 512, 128, 32, 8];
    let mut out = String::from(
        "History persistence (§3.7): depth-2 accuracy vs per-agent MHT\n\
         capacity (LRU; evicting a block discards its learned patterns)\n",
    );
    let _ = write!(out, "{:<14}", "benchmark");
    for cap in caps {
        let label = if cap == usize::MAX {
            "unbounded".to_string()
        } else {
            cap.to_string()
        };
        let _ = write!(out, " {label:>10}");
    }
    out.push('\n');
    for t in set.traces() {
        let _ = write!(out, "{:<14}", t.meta().app);
        for cap in caps {
            let r = evaluate(t, &EvalOptions::default(), |_, _| {
                if cap == usize::MAX {
                    Box::new(CosmosPredictor::new(2, 0))
                } else {
                    Box::new(EvictingCosmos::new(2, 0, cap))
                }
            });
            let _ = write!(out, " {:>9.1}%", r.overall.percent());
        }
        out.push('\n');
    }
    out.push_str(
        "(Stache never replaces blocks, so the paper\'s runs enjoy the\n\
         unbounded column; small tables forget exactly the stable patterns\n\
         Cosmos relies on)\n",
    );
    out
}

/// The limited-pointer directory study (Dir_i B, after the LimitLESS work
/// the paper cites in §3.7): message volume, overflow count, and Cosmos
/// depth-1 accuracy as the per-entry pointer budget shrinks from the
/// paper\'s full map down to one pointer.
pub fn limitless(scale: Scale) -> String {
    let budgets: [Option<usize>; 4] = [None, Some(4), Some(2), Some(1)];
    let mut out = String::from(
        "Limited-pointer directory (Dir_i B): traffic and accuracy vs the\n\
         pointer budget. Overflowed entries broadcast invalidations to all\n\
         nodes on the next write.\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>14} {:>11} {:>9}",
        "benchmark", "config", "messages", "cosmos-d1"
    );
    for budget in budgets {
        let proto = ProtocolConfig {
            limited_pointers: budget,
            ..ProtocolConfig::paper()
        };
        let set = TraceSet::generate_with(scale, proto, SystemConfig::paper());
        let label = budget.map_or("full-map".to_string(), |i| format!("{i} pointers"));
        for t in set.traces() {
            let r = evaluate_cosmos(t, 1, 0);
            let _ = writeln!(
                out,
                "{:<14} {:>14} {:>11} {:>8.1}%",
                t.meta().app,
                label,
                t.len(),
                r.overall.percent()
            );
        }
    }
    out.push_str(
        "(the broadcast acks inflate traffic for widely-shared blocks; they\n\
         also arrive in node order, so Cosmos learns them where stable)\n",
    );
    out
}

/// Machine-size scaling: depth-1 and depth-3 accuracy as the machine
/// grows from 4 to 64 nodes. Bigger machines mean more possible senders
/// per block — the tuple space Cosmos must pick from grows, and the
/// paper\'s 12-bit processor field anticipates machines far beyond 16
/// nodes.
pub fn scaling(scale: Scale) -> String {
    use workloads::{Appbt, Barnes, Dsmc, Moldyn, Unstructured, Workload};
    let suite_with_nodes = |nodes: usize| -> Vec<Box<dyn Workload>> {
        let small = matches!(scale, Scale::Small);
        vec![
            Box::new(Appbt {
                nodes,
                ..if small {
                    Appbt::small()
                } else {
                    Appbt::default()
                }
            }),
            Box::new(Barnes {
                nodes,
                ..if small {
                    Barnes::small()
                } else {
                    Barnes::default()
                }
            }),
            Box::new(Dsmc {
                nodes,
                ..if small {
                    Dsmc::small()
                } else {
                    Dsmc::default()
                }
            }),
            Box::new(Moldyn {
                nodes,
                ..if small {
                    Moldyn::small()
                } else {
                    Moldyn::default()
                }
            }),
            Box::new(Unstructured {
                nodes,
                ..if small {
                    Unstructured::small()
                } else {
                    Unstructured::default()
                }
            }),
        ]
    };
    let mut out = String::from(
        "Scaling: overall accuracy vs machine size (appbt needs a square\n\
         processor grid, hence 4/16/64)\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>11} {:>10} {:>10}",
        "benchmark", "nodes", "messages", "d1", "d3"
    );
    // Row-major (machine size, benchmark) grid on the shared worker
    // pool; rendering below walks the cells in the same order the old
    // nested loops did, so the report is byte-identical.
    let sizes = [4usize, 16, 64];
    let cells = crate::par::sweep(sizes.len() * 5, |i| {
        let nodes = sizes[i / 5];
        let proto = ProtocolConfig {
            nodes,
            ..ProtocolConfig::paper()
        };
        let mut w = suite_with_nodes(nodes).remove(i % 5);
        let t = workloads::run_to_trace(w.as_mut(), proto, SystemConfig::paper())
            .unwrap_or_else(|e| panic!("{} at {nodes} nodes: {e}", w.name()));
        let d1 = evaluate_cosmos(&t, 1, 0);
        let d3 = evaluate_cosmos(&t, 3, 0);
        (
            w.name().to_string(),
            nodes,
            t.len(),
            d1.overall.percent(),
            d3.overall.percent(),
        )
    });
    for (name, nodes, msgs, d1, d3) in cells {
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>11} {:>9.1}% {:>9.1}%",
            name, nodes, msgs, d1, d3
        );
    }
    out
}

/// Topology sensitivity: the §5 insensitivity claim, extended from a flat
/// latency sweep to *structured* latency — crossbar, 4-column 2D mesh,
/// and ring. Per-block message orders depend on relative distances, so a
/// little reordering is possible, but accuracy should barely move.
pub fn topology_sensitivity(scale: Scale) -> String {
    use simx::Topology;
    let topologies = [
        ("crossbar", Topology::Crossbar),
        ("mesh 4x4", Topology::Mesh2D { cols: 4 }),
        ("ring", Topology::Ring),
    ];
    let mut out = String::from("Topology sensitivity: overall depth-1 accuracy (%) per network\n");
    let _ = write!(out, "{:<14}", "benchmark");
    for (name, _) in &topologies {
        let _ = write!(out, " {name:>10}");
    }
    out.push('\n');
    let names = ["appbt", "barnes", "dsmc", "moldyn", "unstructured"];
    // (benchmark, topology) grid on the shared worker pool.
    let cols = topologies.len();
    let cells = crate::par::sweep(names.len() * cols, |i| {
        let sys = SystemConfig::paper().with_topology(topologies[i % cols].1);
        let t = single_trace(names[i / cols], scale, ProtocolConfig::paper(), sys);
        evaluate_cosmos(&t, 1, 0).overall.percent()
    });
    for (r, name) in names.iter().enumerate() {
        let _ = write!(out, "{name:<14}");
        for pct in &cells[r * cols..(r + 1) * cols] {
            let _ = write!(out, " {pct:>9.1}%");
        }
        out.push('\n');
    }
    out
}

/// Serialized vs concurrent engine: the five benchmarks run on both
/// execution models; per-benchmark messages, depth-1 accuracy, and
/// execution time. The serialized engine is the calibrated default; the
/// concurrent engine overlaps independent transactions, queues requests
/// at busy blocks, and exhibits the upgrade race — this study shows how
/// much any of that moves the paper\'s numbers.
pub fn engines(scale: Scale) -> String {
    use simx::concurrent::run_workload as run_concurrent;
    let suite = || match scale {
        Scale::Paper => workloads::paper_suite(),
        Scale::Small => workloads::small_suite(),
    };
    let mut out = String::from(
        "Engines: serialized (calibrated default) vs concurrent\n\
         (message-level DES with request queueing and races)\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>12} | {:>10} {:>8} {:>12}",
        "benchmark", "ser msgs", "ser d1", "ser time", "con msgs", "con d1", "con time"
    );
    // Each (benchmark, engine) pair is an independent run: 10 sweep
    // cells, each returning (messages, depth-1 accuracy, time in us).
    let names = ["appbt", "barnes", "dsmc", "moldyn", "unstructured"];
    let cells = crate::par::sweep(names.len() * 2, |i| {
        let name = names[i / 2];
        let mut w = suite()
            .into_iter()
            .find(|w| w.name() == name)
            .expect("known");
        if i % 2 == 0 {
            let serial =
                workloads::run_to_trace(&mut *w, ProtocolConfig::paper(), SystemConfig::paper())
                    .expect("clean serialized run");
            let acc = evaluate_cosmos(&serial, 1, 0).overall.percent();
            let time = serial
                .records()
                .iter()
                .map(|r| r.time_ns)
                .max()
                .unwrap_or(0);
            (serial.len(), acc, time / 1000)
        } else {
            let iterations = w.iterations();
            let conc = run_concurrent(
                name,
                iterations,
                |it| w.plan(it),
                ProtocolConfig::paper(),
                SystemConfig::paper(),
            )
            .expect("clean concurrent run");
            let acc = evaluate_cosmos(conc.trace(), 1, 0).overall.percent();
            (conc.trace().len(), acc, conc.execution_time_ns() / 1000)
        }
    });
    for (r, name) in names.iter().enumerate() {
        let (ser_msgs, ser_acc, ser_us) = cells[r * 2];
        let (con_msgs, con_acc, con_us) = cells[r * 2 + 1];
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>7.1}% {:>10}us | {:>10} {:>7.1}% {:>10}us",
            name, ser_msgs, ser_acc, ser_us, con_msgs, con_acc, con_us,
        );
    }
    out.push_str(
        "(accuracies should roughly agree: per-block orders are what Cosmos\n\
         learns, and both engines serialize per block)\n",
    );
    out
}

/// Lookahead: how far ahead the tables can be unrolled (§4.1\'s "sequence
/// of protocol actions"). Chain step `d` is scored against the `d`-th
/// message that actually arrives next for the block.
pub fn lookahead(set: &TraceSet) -> String {
    use cosmos::evaluate_lookahead;
    let mut out = String::from(
        "Lookahead: chain-prediction accuracy vs distance (depth-2 Cosmos).\n\
         Scored among issued chains (the tables must have an opinion), so\n\
         step 1 sits above Table 5's all-message accuracy.\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "d=1", "d=2", "d=3", "d=4"
    );
    for t in set.traces() {
        let r = evaluate_lookahead(t, 2, 4);
        let _ = writeln!(
            out,
            "{:<14} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            t.meta().app,
            r.percent_at(1),
            r.percent_at(2),
            r.percent_at(3),
            r.percent_at(4)
        );
    }
    out.push_str(
        "(errors compound multiplicatively; where patterns are pure cycles\n\
         the chain survives several steps — the budget for multi-action\n\
         speculation)\n",
    );
    out
}

/// Seed robustness: the workload generators draw every stochastic choice
/// from a seed; if the reproduced shapes depended on seed luck they would
/// be worthless. Re-derives Table 5's overall column under different
/// seeds.
pub fn seed_robustness(scale: Scale) -> String {
    use workloads::{Appbt, Barnes, Dsmc, Moldyn, Unstructured, Workload};
    let suite_with_seed = |seed: u64| -> Vec<Box<dyn Workload>> {
        let small = matches!(scale, Scale::Small);
        vec![
            Box::new(Appbt {
                seed,
                ..if small {
                    Appbt::small()
                } else {
                    Appbt::default()
                }
            }),
            Box::new(Barnes {
                seed,
                ..if small {
                    Barnes::small()
                } else {
                    Barnes::default()
                }
            }),
            Box::new(Dsmc {
                seed,
                ..if small {
                    Dsmc::small()
                } else {
                    Dsmc::default()
                }
            }),
            Box::new(Moldyn {
                seed,
                ..if small {
                    Moldyn::small()
                } else {
                    Moldyn::default()
                }
            }),
            Box::new(Unstructured {
                seed,
                ..if small {
                    Unstructured::small()
                } else {
                    Unstructured::default()
                }
            }),
        ]
    };
    let seeds = [0xC05D05u64, 1, 424242];
    let mut out = String::from(
        "Seed robustness: Table 5's overall accuracy (%) at depths 1 and 3\n\
         under three unrelated workload seeds\n",
    );
    let _ = write!(out, "{:<14}", "benchmark");
    for seed in seeds {
        let _ = write!(out, " | {:^15}", format!("seed {seed:#x}"));
    }
    out.push('\n');
    let _ = write!(out, "{:<14}", "");
    for _ in seeds {
        let _ = write!(out, " | {:>6} {:>6} ", "d1", "d3");
    }
    out.push('\n');
    let names = ["appbt", "barnes", "dsmc", "moldyn", "unstructured"];
    // (benchmark, seed) grid on the shared worker pool — 15 full
    // simulations, all independent.
    let cols = seeds.len();
    let cells = crate::par::sweep(names.len() * cols, |i| {
        let (name, seed) = (names[i / cols], seeds[i % cols]);
        let mut w = suite_with_seed(seed).remove(i / cols);
        let t = workloads::run_to_trace(&mut *w, ProtocolConfig::paper(), SystemConfig::paper())
            .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        (
            evaluate_cosmos(&t, 1, 0).overall.percent(),
            evaluate_cosmos(&t, 3, 0).overall.percent(),
        )
    });
    for (r, name) in names.iter().enumerate() {
        let _ = write!(out, "{name:<14}");
        for (d1, d3) in &cells[r * cols..(r + 1) * cols] {
            let _ = write!(out, " | {d1:>5.1} {d3:>6.1} ");
        }
        out.push('\n');
    }
    out.push_str("(the shapes are structural, not seed luck)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_is_insensitive_at_small_scale() {
        let rows = latency_sensitivity(Scale::Small, &[40, 1000]);
        assert_eq!(rows.len(), 5);
        for (app, rates) in &rows {
            // "hardly changes": allow a few points of drift.
            assert!(
                (rates[0] - rates[1]).abs() < 6.0,
                "{app} drifted: {rates:?}"
            );
        }
        let s = render_latency_sensitivity(&rows, &[40, 1000]);
        assert!(s.contains("1000 ns"));
    }

    #[test]
    fn adaptation_reports_every_benchmark() {
        let set = TraceSet::generate(Scale::Small);
        let rows = adaptation(&set);
        assert_eq!(rows.len(), 5);
        assert!(render_adaptation(&rows).contains("dsmc"));
    }

    #[test]
    fn comparison_ranks_cosmos_above_baselines_overall() {
        let set = TraceSet::generate(Scale::Small);
        let rows = comparison(&set);
        let mean = |idx: usize| -> f64 {
            rows.iter().map(|(_, cells)| cells[idx].1).sum::<f64>() / rows.len() as f64
        };
        let cosmos_d3 = mean(1);
        let composition = mean(5);
        let last = mean(6);
        assert!(
            cosmos_d3 > composition,
            "cosmos {cosmos_d3} vs composition {composition}"
        );
        assert!(cosmos_d3 > last);
        assert!(render_comparison(&rows).contains("cosmos-d3"));
    }

    #[test]
    fn variants_study_renders_all_contenders() {
        let set = TraceSet::generate(Scale::Small);
        let s = variants(&set);
        for name in ["cosmos", "macro x4", "conf>=2", "prealloc"] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn sender_ablation_renders() {
        let set = TraceSet::generate(Scale::Small);
        let s = ablation_sender(&set);
        assert!(s.contains("type-only"));
    }

    #[test]
    fn half_migratory_ablation_changes_message_mix() {
        let s = ablation_half_migratory(Scale::Small);
        assert!(s.contains("dash"));
    }
}
