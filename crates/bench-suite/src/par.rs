//! Bounded parallel sweeps for table and figure generation.
//!
//! Every table evaluates many independent `(benchmark, depth, filter)`
//! cells; this module fans them out over a scoped worker pool (bounded by
//! [`std::thread::available_parallelism`], like the trace and fault
//! generators) while reassembling results in deterministic input order,
//! so rendered tables are byte-identical to the serial sweeps.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sweeps launched since process start.
static SWEEPS: AtomicU64 = AtomicU64::new(0);
/// Cells evaluated across all sweeps.
static CELLS: AtomicU64 = AtomicU64::new(0);
/// Worker threads spawned across all sweeps.
static WORKERS: AtomicU64 = AtomicU64::new(0);
/// Σ workersᵢ × cellsᵢ over all sweeps — the numerator of the
/// cells-weighted mean pool size.
static WORKER_CELLS: AtomicU64 = AtomicU64::new(0);

/// Number of worker threads a sweep over `n` items uses.
pub fn worker_count(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Maps `f` over `0..n` on a bounded scoped worker pool and returns the
/// results in index order. Workers pull the next index from a shared
/// counter, so uneven cell costs balance; output order never depends on
/// scheduling.
pub fn sweep<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    CELLS.fetch_add(n as u64, Ordering::Relaxed);
    WORKERS.fetch_add(workers as u64, Ordering::Relaxed);
    WORKER_CELLS.fetch_add(workers as u64 * n as u64, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("sweep slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Exports sweep-utilisation counters into a metrics snapshot: how many
/// sweeps ran, how many cells they covered, and the mean worker pool size
/// relative to the machine's parallelism.
///
/// `mean_workers` is **cells-weighted**: each sweep contributes its pool
/// size once per cell, not once per sweep. A per-sweep mean let a handful
/// of 1-cell sweeps (which are clamped to one worker) drag the gauge to 1
/// even when every non-trivial batch ran fully parallel — exactly the
/// misleading `bench.par.mean_workers = 1` that BENCH_repro.json used to
/// report. Weighting by cells makes the gauge answer the question the
/// scale roadmap item needs: "with how many workers was the average cell
/// processed?".
pub fn export_obs(snap: &mut obs::Snapshot) {
    let sweeps = SWEEPS.load(Ordering::Relaxed);
    let cells = CELLS.load(Ordering::Relaxed);
    let workers = WORKERS.load(Ordering::Relaxed);
    let worker_cells = WORKER_CELLS.load(Ordering::Relaxed);
    snap.counter("bench.par.sweeps", sweeps);
    snap.counter("bench.par.cells", cells);
    snap.counter("bench.par.worker_threads", workers);
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1) as f64;
    let mean_workers = if cells == 0 {
        0.0
    } else {
        worker_cells as f64 / cells as f64
    };
    snap.gauge("bench.par.mean_workers", mean_workers);
    snap.gauge("bench.par.utilisation", mean_workers / cores);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let out = sweep(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let out: Vec<u32> = sweep(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(1000) <= 1000);
    }

    #[test]
    fn utilisation_metrics_export() {
        let _ = sweep(4, |i| i);
        let mut snap = obs::Snapshot::new();
        export_obs(&mut snap);
        assert!(matches!(
            snap.get("bench.par.sweeps"),
            Some(obs::MetricValue::Counter(n)) if *n >= 1
        ));
        assert!(matches!(
            snap.get("bench.par.worker_threads"),
            Some(obs::MetricValue::Counter(n)) if *n >= 1
        ));
        assert!(matches!(
            snap.get("bench.par.utilisation"),
            Some(obs::MetricValue::Gauge(u)) if *u > 0.0 && *u <= 1.0
        ));
    }

    #[test]
    fn mean_workers_is_cells_weighted_not_sweep_weighted() {
        // Many 1-cell sweeps (pool clamped to one worker) plus one large
        // batch: the big batch dominates the cells, so it must dominate
        // the gauge. The old per-sweep mean collapsed toward 1 here.
        let parallel = worker_count(64);
        for _ in 0..8 {
            let _ = sweep(1, |i| i);
        }
        let _ = sweep(64, |i| i);
        let mut snap = obs::Snapshot::new();
        export_obs(&mut snap);
        let Some(obs::MetricValue::Gauge(mean)) = snap.get("bench.par.mean_workers") else {
            panic!("gauge missing");
        };
        // Counters are process-global, so other tests' sweeps are mixed
        // in; on any multi-core machine the weighted mean must still sit
        // strictly above the all-serial floor.
        if parallel > 1 {
            assert!(*mean > 1.0, "cells-weighted mean stuck at {mean}");
        }
    }
}
